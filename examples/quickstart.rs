//! Quickstart: build the paper's 3-level topology, publish one event in
//! the leaf group, and watch it climb to the root — with the paper's four
//! headline properties checked along the way.
//!
//! Run with: `cargo run --example quickstart`

use da_simnet::{ChannelConfig, Engine, SimConfig};
use damulticast::{ParamMap, StaticNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Sec. VII-A setting: S_T0 = 10, S_T1 = 100, S_T2 = 1000,
    // b = 3, c = 5, g = 5, a = 1, z = 3.
    let net = StaticNetwork::linear(&[10, 100, 1000], ParamMap::default(), 42)?;
    let hierarchy = std::sync::Arc::clone(net.hierarchy());
    let groups = net.groups().to_vec();
    println!("topology:\n{hierarchy}");

    // 85% channel success probability, like the paper's simulation.
    let sim = SimConfig::default()
        .with_seed(42)
        .with_channel(ChannelConfig::paper_default());
    let mut engine = Engine::new(sim, net.into_processes());

    // Publish one event in the leaf group T2.
    let publisher = groups[2].members[0];
    let event_id = engine.process_mut(publisher).publish("goal: 1-0 (87')");
    println!(
        "published {event_id} at {publisher} in group {}",
        hierarchy.path(groups[2].topic)
    );

    let rounds = engine.run_until_quiescent(64);
    println!("quiescent after {rounds} rounds\n");

    // Per-group delivery counts.
    for (level, group) in groups.iter().enumerate().rev() {
        let delivered = group
            .members
            .iter()
            .filter(|&&p| engine.process(p).has_delivered(event_id))
            .count();
        println!(
            "group T{level} ({}): {delivered}/{} delivered",
            hierarchy.path(group.topic),
            group.members.len()
        );
    }

    // The paper's headline properties.
    let counters = engine.counters();
    println!(
        "\nevent messages (intra-group): {}",
        counters.sum_prefix("da.intra.")
    );
    println!(
        "event messages (inter-group): {}",
        counters.sum_prefix("da.inter_out.")
    );
    println!(
        "parasite deliveries:          {}",
        counters.get("da.parasite")
    );
    assert_eq!(
        counters.get("da.parasite"),
        0,
        "daMulticast never delivers parasites"
    );

    let mean_memory: f64 = engine
        .processes()
        .map(|(_, p)| p.memory_entries() as f64)
        .sum::<f64>()
        / engine.population() as f64;
    println!("mean membership entries/process: {mean_memory:.1} (ln(S)+c+z bound)");
    Ok(())
}
