//! The dynamic protocol under churn — **live**. A soak of the full
//! dynamic stack (bootstrap + membership + maintenance) running as
//! actors on the `da-runtime` worker pool while the shared
//! `da_core::failure` plan continuously crashes and recovers processes:
//! the scenario the paper's Sec. III-A model assumes ("processes might
//! crash and recover") executed on real threads.
//!
//! Three-level linear hierarchy, every table discovered at runtime (no
//! static wiring): processes join through a handful of same-group
//! contacts, flood the overlay for super contacts, and keep their
//! tables fresh through maintenance — all while the failure plan churns
//! the population. Recovered processes re-enter through
//! `on_recover` (the protocol restarts `FIND_SUPER_CONTACT`).
//!
//! Run with: `cargo run --release --example live_churn`
//! (pass `--small` for a CI-sized population; `--crash <p>` /
//! `--recover <p>` to override the per-tick churn rates).
//!
//! Asserted at every churn rate: zero parasite deliveries, and exact
//! mid-flight crash accounting — every envelope ends in exactly one of
//! delivered / `rt.dropped_channel` / `rt.dropped_crashed` /
//! `rt.dropped_shutdown`.

use da_runtime::{Runtime, RuntimeConfig};
use da_simnet::{FailureModel, ProcessId};
use damulticast::{DynamicNetwork, EventId, ParamMap, TopicParams};
use std::time::Instant;

/// Parses `--flag <p>` probabilities from the argument list.
fn prob_from_args(flag: &str, default: f64) -> f64 {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == flag {
            let value = args
                .next()
                .unwrap_or_else(|| panic!("{flag} needs a probability"));
            let p: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("{flag} {value}: not a number"));
            assert!((0.0..1.0).contains(&p), "{flag} {p}: need 0 ≤ p < 1");
            return p;
        }
    }
    default
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small = std::env::args().any(|a| a == "--small");
    let crash = prob_from_args("--crash", 0.01);
    let recover = prob_from_args("--recover", 0.2);
    let sizes: &[usize] = if small { &[4, 20, 60] } else { &[10, 100, 900] };
    let population: usize = sizes.iter().sum();
    let seed = 7u64;

    // Aggressive maintenance (period 5, 2-tick ping timeout) so stale
    // tables left behind by churn are repaired within the soak, plus
    // pinned-high dissemination knobs for redundancy under failures.
    let params = ParamMap::uniform(TopicParams {
        maintenance_period: 5,
        ping_timeout: 2,
        g: 15.0,
        a: 3.0,
        ..TopicParams::paper_default()
    });
    let net = DynamicNetwork::linear(sizes, params, 3, 4, seed)?;
    let leaves = net.groups().last().expect("three levels").members.clone();

    let failure = FailureModel::Churn {
        crash_probability: crash,
        recover_probability: recover,
    };
    // The identical plan the runtime will materialise — replayed via
    // `FailurePlan::alive_at` so the soak can pick publishers that are
    // alive at their publish tick (fates are stateless `(pid, tick)`
    // draws, so this replay is exact).
    let plan = failure.materialize(population, seed);
    let alive_at = |pid: ProcessId, at_tick: u64| plan.alive_at(pid, at_tick);

    let workers = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(4);
    let config = RuntimeConfig::default()
        .with_seed(seed)
        .with_workers(workers)
        .with_failures(failure);
    let start = Instant::now();
    let mut rt = Runtime::spawn(config, net.into_processes());
    println!(
        "churn soak: {population} dynamic processes on {} workers, \
         crash {crash} / recover {recover} per tick \
         (stationary aliveness {:.0}%)",
        rt.workers(),
        recover / (crash + recover) * 100.0
    );

    // Let bootstrap + membership settle under churn, then publish one
    // story per phase from a leaf that the plan says is alive.
    rt.run_ticks(40);
    let mut tick = 40u64;
    let mut stories: Vec<EventId> = Vec::new();
    let phases = if small { 4 } else { 8 };
    for i in 0..phases {
        if let Some(&p) = leaves
            .iter()
            .skip(i * leaves.len() / phases)
            .find(|&&p| alive_at(p, tick))
        {
            stories.push(rt.with_process_mut(p, move |proc| proc.publish(format!("story {i}"))));
        }
        rt.run_ticks(10);
        tick += 10;
    }
    rt.run_ticks(30);
    let out = rt.shutdown();
    let elapsed = start.elapsed();

    let crashes = out.counters.get("rt.churn_crashes");
    let recoveries = out.counters.get("rt.churn_recoveries");
    let alive_end = out.statuses.iter().filter(|s| s.is_alive()).count();
    println!(
        "\nchurn: {crashes} crashes, {recoveries} recoveries; \
         {alive_end}/{population} alive at shutdown"
    );

    let surviving: Vec<ProcessId> = leaves
        .iter()
        .copied()
        .filter(|&p| out.statuses[p.index()].is_alive())
        .collect();
    println!(
        "\ndelivery among the {} surviving leaf processes:",
        surviving.len()
    );
    let mut total = 0.0;
    for (i, &id) in stories.iter().enumerate() {
        let got = surviving
            .iter()
            .filter(|&&p| out.processes[p.index()].has_delivered(id))
            .count();
        let ratio = got as f64 / surviving.len().max(1) as f64;
        total += ratio;
        println!("  story {i}   {got:>4}/{} ({ratio:.3})", surviving.len());
    }
    let mean = total / stories.len().max(1) as f64;

    // Exact envelope accounting and the paper's invariant, asserted at
    // any churn rate.
    let sent = out.counters.get("rt.sent");
    let delivered = out.counters.get("rt.delivered");
    let dropped_crashed = out.counters.get("rt.dropped_crashed");
    let dropped_shutdown = out.counters.get("rt.dropped_shutdown");
    let accounted = delivered
        + out.counters.get("rt.dropped_channel")
        + dropped_crashed
        + dropped_shutdown
        + out.counters.get("rt.dropped_closed");
    assert_eq!(accounted, sent, "every envelope in exactly one bucket");
    assert_eq!(out.counters.get("da.parasite"), 0, "parasite delivery");
    assert!(
        mean > 0.5,
        "mean delivery among survivors collapsed: {mean:.3}"
    );

    println!(
        "\ntransport: {sent} sent = {delivered} delivered + {dropped_crashed} to crashed \
         + {dropped_shutdown} in flight at shutdown"
    );
    println!(
        "{:.1} ms wall clock, {:.0} msg/s",
        elapsed.as_secs_f64() * 1e3,
        sent as f64 / elapsed.as_secs_f64()
    );
    println!("mean delivery ratio among survivors: {mean:.3}");
    println!("parasite deliveries: 0 — the invariant holds under churn, live");
    Ok(())
}
