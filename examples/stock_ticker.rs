//! A stock-ticker feed on the **dynamic** protocol stack: processes join
//! with a few same-group contacts, discover super contacts through the
//! overlay bootstrap (Fig. 4 of the paper), keep them fresh with the
//! maintenance task (Fig. 6), and then disseminate a stream of ticks.
//!
//! Hierarchy: `.` (all markets) ← `.tech` ← `.tech.gpu`. Market-wide
//! analysts subscribe at the root, sector analysts at `.tech`, and GPU
//! traders at `.tech.gpu`, where the ticks are published.
//!
//! Run with: `cargo run --example stock_ticker`

use da_simnet::{ChannelConfig, Engine, SimConfig};
use damulticast::{DynamicNetwork, ParamMap, TopicParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 5 market analysts (root), 15 sector analysts, 40 GPU traders.
    let sizes = [5usize, 15, 40];
    let params = ParamMap::uniform(
        TopicParams::paper_default()
            .with_g(12.0) // small groups: strengthen the inter-group links
            .with_a(3.0),
    );
    let net = DynamicNetwork::linear(&sizes, params, 3, 4, 2024)?;
    let groups = net.groups().to_vec();
    let sim = SimConfig::default()
        .with_seed(2024)
        .with_channel(ChannelConfig::default().with_success_probability(0.95));
    let mut engine = Engine::new(sim, net.into_processes());

    // Phase 1: let joins, membership gossip, and the bootstrap settle.
    engine.run_rounds(40);
    let linked = groups[2]
        .members
        .iter()
        .filter(|&&p| !engine.process(p).super_table().is_empty())
        .count();
    println!(
        "after bootstrap: {linked}/{} GPU traders hold super contacts",
        groups[2].members.len()
    );

    // Phase 2: publish a stream of ticks from rotating traders.
    let ticks = 10;
    let mut ids = Vec::new();
    for i in 0..ticks {
        let trader = groups[2].members[i * 3 % groups[2].members.len()];
        let id = engine
            .process_mut(trader)
            .publish(format!("GPUCO {:.2}", 100.0 + i as f64));
        ids.push(id);
        engine.run_rounds(6);
    }
    engine.run_rounds(30);

    // Every tick should reach (nearly) all GPU traders and climb to both
    // analyst tiers.
    let mut reached = [0usize; 3];
    for &id in &ids {
        for (level, group) in groups.iter().enumerate() {
            let got = group
                .members
                .iter()
                .filter(|&&p| engine.process(p).has_delivered(id))
                .count();
            if got * 2 > group.members.len() {
                reached[level] += 1;
            }
        }
    }
    println!(
        "ticks reaching a majority of market analysts: {}/{ticks}",
        reached[0]
    );
    println!(
        "ticks reaching a majority of sector analysts: {}/{ticks}",
        reached[1]
    );
    println!(
        "ticks reaching a majority of GPU traders:     {}/{ticks}",
        reached[2]
    );
    assert!(reached[2] >= 9, "tick stream must blanket its own group");
    assert!(reached[1] >= 7, "sector analysts follow the GPU feed");

    // Memory stays two tables per process no matter the hierarchy depth.
    let max_mem = engine
        .processes()
        .map(|(_, p)| p.memory_entries())
        .max()
        .unwrap_or(0);
    println!("max membership entries at any process: {max_mem}");
    assert_eq!(engine.counters().get("da.parasite"), 0);
    Ok(())
}
