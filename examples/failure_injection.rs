//! Failure injection: the paper's two failure regimes side by side, plus a
//! scripted mid-run crash wave, on the same topology and seed.
//!
//! * **stillborn** (Figs. 8–10): a fraction of processes never starts;
//! * **per-observer** (Fig. 11): every transmission independently sees its
//!   target as failed — reliability is much better at equal "aliveness";
//! * **crash schedule**: half the root group dies mid-run — the dynamic
//!   stack's maintenance task (Fig. 6) repairs the supertopic links.
//!
//! Run with: `cargo run --example failure_injection`

use da_harness::scenario::{run_scenario, FailureKind, ScenarioConfig};
use da_simnet::{Engine, FailureModel, Fate, ProcessId, SimConfig};
use damulticast::{DynamicNetwork, ParamMap, TopicParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== stillborn vs per-observer at equal aliveness ===");
    println!("alive  stillborn(T2/T1/T0)   per-observer(T2/T1/T0)");
    for alive in [1.0, 0.8, 0.6, 0.4] {
        let mut still = [0.0; 3];
        let mut obs = [0.0; 3];
        let trials = 10;
        for seed in 0..trials {
            let s = run_scenario(
                &ScenarioConfig::small().with_failure(FailureKind::Stillborn, alive),
                seed,
            );
            let o = run_scenario(
                &ScenarioConfig::small().with_failure(FailureKind::PerObserver, alive),
                seed,
            );
            for i in 0..3 {
                still[i] += s.delivered_fraction[i] / trials as f64;
                obs[i] += o.delivered_fraction[i] / trials as f64;
            }
        }
        println!(
            "{alive:>5.1}  {:>5.2} {:>5.2} {:>5.2}      {:>5.2} {:>5.2} {:>5.2}",
            still[2], still[1], still[0], obs[2], obs[1], obs[0],
        );
    }
    println!("(per-observer keeps reliability high: independent retries mask failures)");

    println!("\n=== scripted crash wave on the dynamic stack ===");
    let sizes = [6usize, 24];
    let params = ParamMap::uniform(TopicParams::paper_default().with_g(12.0).with_a(3.0));
    let net = DynamicNetwork::linear(&sizes, params, 3, 4, 99)?;
    // Crash half the root group at round 30.
    let fates: Vec<Fate> = (0..3)
        .map(|i| Fate {
            round: 30,
            pid: ProcessId(i),
            crash: true,
        })
        .collect();
    let sim = SimConfig::default()
        .with_seed(99)
        .with_failures(FailureModel::Schedule(fates));
    let mut engine = Engine::new(sim, net.into_processes());

    engine.run_rounds(30); // healthy warm-up
    let healthy_links = count_live_links(&engine, sizes[0], sizes[1]);
    engine.run_rounds(60); // crash happens; maintenance repairs
    let repaired_links = count_live_links(&engine, sizes[0], sizes[1]);
    println!("live supertable entries before crash: {healthy_links}");
    println!("live supertable entries after repair: {repaired_links}");

    let id = engine
        .process_mut(ProcessId(18))
        .publish("after the crash wave");
    engine.run_rounds(40);
    let surviving_roots: Vec<ProcessId> = (0..6)
        .map(ProcessId)
        .filter(|&p| engine.status(p).is_alive())
        .collect();
    let got = surviving_roots
        .iter()
        .filter(|&&p| engine.process(p).has_delivered(id))
        .count();
    println!(
        "event published after the wave reached {got}/{} surviving roots",
        surviving_roots.len()
    );
    assert!(got >= 1, "maintenance must keep at least one live uplink");
    Ok(())
}

/// Counts supertable entries of the leaf group that point at live
/// processes.
fn count_live_links(
    engine: &Engine<damulticast::DaProcess>,
    root_size: usize,
    leaf_size: usize,
) -> usize {
    (root_size..root_size + leaf_size)
        .map(ProcessId::from_index)
        .map(|p| {
            engine
                .process(p)
                .super_table()
                .entries()
                .iter()
                .filter(|e| engine.status(e.pid).is_alive())
                .count()
        })
        .sum()
}
