//! A million live processes on the worker pool — the memory-at-scale
//! soak. The [`damulticast::MetroProcess`] gossip protocol (a few
//! machine words of state, computed overlay links) runs on `da-runtime`
//! with churn active and a lossy, multi-tick-latency channel, so every
//! flat-memory structure the substrate relies on is exercised at the
//! population the paper's table-size claims are *about*:
//!
//! * the slab `ProcessStore` with its lazily-derived RNG slots (the
//!   overlay draws no per-process randomness, so RNG residency stays
//!   at zero);
//! * stateless `(edge, tick, occurrence)` channel draws — no per-edge
//!   RNG map at any population;
//! * the ring-buffer delay wheel sized from `network.max_latency()`;
//! * the cache-line-packed watermark grid.
//!
//! Asserted: the exact envelope ledger (every sent message ends in
//! exactly one terminal bucket) and a bounded peak-RSS-per-process
//! footprint, measured from `/proc/self/status`.
//!
//! Run with: `cargo run --release --example live_metropolis`
//! (pass `--small` for the CI-sized 100k soak).

use da_runtime::{Runtime, RuntimeConfig};
use da_simnet::{ChannelConfig, FailureModel, Latency};
use damulticast::metro_population;
use std::time::Instant;

/// Kilobytes for `field` (`VmRSS` / `VmHWM`) from `/proc/self/status`;
/// 0 where procfs is unavailable.
fn proc_status_kb(field: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with(field))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let population: usize = if small { 100_000 } else { 1_000_000 };
    let headlines = 64usize;
    let ttl = 24u8;
    let ticks = if small { 24 } else { 32 };
    let seed = 42u64;

    let baseline_kb = proc_status_kb("VmRSS");
    let build = Instant::now();
    let procs = metro_population(population, headlines, ttl);

    // Lossy, multi-tick-latency channel + churn: the stateless draw
    // path, the delay-wheel ring, and the lifecycle scan all on the
    // hot path at full population.
    let config = RuntimeConfig::default()
        .with_seed(seed)
        .with_workers(2)
        .with_channel(
            ChannelConfig::reliable()
                .with_success_probability(0.95)
                .with_latency(Latency::UniformRounds { min: 1, max: 3 }),
        )
        .with_failures(FailureModel::Churn {
            crash_probability: 0.0002,
            recover_probability: 0.05,
        });
    let mut rt = Runtime::spawn(config, procs);
    let spawned_kb = proc_status_kb("VmRSS");
    println!(
        "metropolis: {population} live processes on {} workers \
         ({:.1} ms to build + spawn)",
        rt.workers(),
        build.elapsed().as_secs_f64() * 1e3
    );

    let soak = Instant::now();
    rt.run_ticks(ticks);
    let out = rt.shutdown();
    let elapsed = soak.elapsed();
    let peak_kb = proc_status_kb("VmHWM");

    // ── Exact envelope ledger ────────────────────────────────────────
    let sent = out.counters.get("rt.sent");
    let delivered = out.counters.get("rt.delivered");
    let buckets = [
        ("delivered", delivered),
        ("dropped_channel", out.counters.get("rt.dropped_channel")),
        (
            "dropped_partitioned",
            out.counters.get("rt.dropped_partitioned"),
        ),
        ("dropped_crashed", out.counters.get("rt.dropped_crashed")),
        (
            "dropped_observed_failed",
            out.counters.get("rt.dropped_observed_failed"),
        ),
        ("dropped_shutdown", out.counters.get("rt.dropped_shutdown")),
        ("dropped_closed", out.counters.get("rt.dropped_closed")),
    ];
    let accounted: u64 = buckets.iter().map(|(_, v)| v).sum();
    assert_eq!(
        accounted, sent,
        "ledger must be exact: {sent} sent vs buckets {buckets:?}"
    );
    assert!(sent > 0, "the flood must produce traffic");

    let reached = out
        .processes
        .iter()
        .filter(|p| p.headlines_seen() > 0)
        .count();
    let crashes = out.counters.get("rt.churn_crashes");
    let recoveries = out.counters.get("rt.churn_recoveries");

    println!("\nledger ({ticks} ticks): {sent} sent =");
    for (name, v) in buckets {
        println!("  {v:>9}  {name}");
    }
    println!(
        "\nchurn: {crashes} crashes, {recoveries} recoveries; \
         {reached} processes reached by the {headlines} headlines"
    );

    // ── Memory at scale ──────────────────────────────────────────────
    let resident_kb = spawned_kb.saturating_sub(baseline_kb);
    let bytes_per_process = resident_kb as f64 * 1024.0 / population as f64;
    println!(
        "\nmemory: {:.1} MiB resident after spawn ({bytes_per_process:.0} B/process), \
         {:.1} MiB peak over the whole soak",
        resident_kb as f64 / 1024.0,
        peak_kb as f64 / 1024.0
    );
    println!(
        "{:.2} s soak wall clock, {:.0} process-ticks/s",
        elapsed.as_secs_f64(),
        population as f64 * ticks as f64 / elapsed.as_secs_f64()
    );

    // Bounded RSS: the slab + lazy-RNG layout budgets ~66 B/process of
    // substrate state (24 B protocol slab + 40 B RNG slot + lifecycle
    // bytes); 256 B/process leaves room for inbox/wheel slack and
    // allocator overhead while still failing loudly if a per-process
    // or per-edge map sneaks back into the hot path.
    if resident_kb > 0 {
        assert!(
            bytes_per_process < 256.0,
            "memory per process blew the budget: {bytes_per_process:.0} B"
        );
    }
    println!("exact ledger + bounded footprint: the metropolis holds");
}
