//! Multiple inheritance (Sec. VIII of the paper): a topic with **two**
//! supertopics, served by one supertopic table per inclusion edge.
//!
//! DAG:
//!
//! ```text
//!        (root)
//!        /    \
//!    sport    switzerland
//!        \    /
//!       ski-racing
//! ```
//!
//! A ski-racing event must reach sport fans *and* Switzerland watchers —
//! two different communities on two different edges — while a plain
//! football event stays inside the sport subtree.
//!
//! Run with: `cargo run --example multi_inheritance`

use da_simnet::{Engine, ProcessId, SimConfig};
use da_topics::dag::TopicDag;
use damulticast::{DagNetwork, TopicParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dag = TopicDag::new();
    let root = dag.root();
    let sport = dag.add_topic("sport", &[root])?;
    let swiss = dag.add_topic("switzerland", &[root])?;
    let ski = dag.add_topic("ski-racing", &[sport, swiss])?;

    // Communities: 5 generalists (root), 12 sport fans, 12 Switzerland
    // watchers, 20 ski-racing devotees.
    let groups = vec![
        (root, (0..5).map(ProcessId).collect::<Vec<_>>()),
        (sport, (5..17).map(ProcessId).collect()),
        (swiss, (17..29).map(ProcessId).collect()),
        (ski, (29..49).map(ProcessId).collect()),
    ];
    let params = TopicParams::paper_default().with_g(30.0).with_a(3.0);
    let net = DagNetwork::build(dag, groups, params, 11)?;

    // Memory check before running: a ski fan holds one topic table plus
    // TWO z-sized supertables (one per inclusion edge) — not one table per
    // topic in the DAG.
    let procs = net.into_processes();
    println!(
        "ski fan memory: {} entries (topic table {} + 2 edges × z {})",
        procs[30].memory_entries(),
        procs[30].topic_table().len(),
        procs[30].super_tables().total_entries(),
    );

    let mut engine = Engine::new(SimConfig::default().with_seed(11), procs);
    let gold = engine.process_mut(ProcessId(35)).publish("downhill gold!");
    let goal = engine.process_mut(ProcessId(8)).publish("football goal");
    engine.run_until_quiescent(64);

    let count = |range: std::ops::Range<u32>, id| {
        range
            .filter(|&i| engine.process(ProcessId(i)).has_delivered(id))
            .count()
    };

    println!("\nski-racing event ({gold}):");
    println!("  ski devotees          {:>2}/20", count(29..49, gold));
    println!(
        "  sport fans            {:>2}/12  (edge 1)",
        count(5..17, gold)
    );
    println!(
        "  switzerland watchers  {:>2}/12  (edge 2)",
        count(17..29, gold)
    );
    println!("  generalists           {:>2}/5", count(0..5, gold));
    assert!(count(5..17, gold) >= 10, "sport edge must carry the event");
    assert!(count(17..29, gold) >= 10, "swiss edge must carry the event");

    println!("\nfootball event ({goal}):");
    println!("  sport fans            {:>2}/12", count(5..17, goal));
    println!(
        "  switzerland watchers  {:>2}/12  (must be 0)",
        count(17..29, goal)
    );
    println!(
        "  ski devotees          {:>2}/20  (must be 0)",
        count(29..49, goal)
    );
    assert_eq!(count(17..29, goal), 0, "football is not Swiss news");
    assert_eq!(count(29..49, goal), 0, "events never flow downwards");

    assert_eq!(engine.counters().get("dag.parasite"), 0);
    println!("\nparasite deliveries: 0 — both edges respected, no leakage");
    Ok(())
}
