//! A newsroom scenario over a *branching* topic hierarchy — the workload
//! the paper's introduction motivates (NNTP-style newsgroups without the
//! central server).
//!
//! Topics:
//!
//! ```text
//! .news
//! ├── .news.sport
//! │   └── .news.sport.football
//! └── .news.politics
//! ```
//!
//! Editors subscribe high in the tree (they want everything below);
//! beat reporters publish deep. The example shows that
//!
//! * a football event reaches football fans, sport editors, and
//!   chief editors — but never the politics desk, and
//! * a politics event takes the other branch, untouched by sport.
//!
//! Run with: `cargo run --example newsroom`

use da_simnet::{Engine, ProcessId, SimConfig};
use da_topics::TopicHierarchy;
use damulticast::{GroupSpec, ParamMap, StaticNetwork, TopicParams};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut hierarchy = TopicHierarchy::new();
    let news = hierarchy.insert(".news")?;
    let sport = hierarchy.insert(".news.sport")?;
    let football = hierarchy.insert(".news.sport.football")?;
    let politics = hierarchy.insert(".news.politics")?;
    let hierarchy = Arc::new(hierarchy);

    // Desk sizes: 4 chief editors, 6 sport editors, 30 football fans,
    // 10 politics reporters. (The root "." group is empty — subscribers
    // of .news bridge straight past it, and nothing is published there.)
    let mut next = 0u32;
    let mut desk = |count: u32| -> Vec<ProcessId> {
        let members = (next..next + count).map(ProcessId).collect();
        next += count;
        members
    };
    let chiefs = desk(4);
    let sport_editors = desk(6);
    let football_fans = desk(30);
    let politics_desk = desk(10);

    let groups = vec![
        GroupSpec {
            topic: news,
            members: chiefs.clone(),
        },
        GroupSpec {
            topic: sport,
            members: sport_editors.clone(),
        },
        GroupSpec {
            topic: football,
            members: football_fans.clone(),
        },
        GroupSpec {
            topic: politics,
            members: politics_desk.clone(),
        },
    ];

    // Small groups: boost the election weight so single events cross
    // group boundaries reliably (the paper's g knob).
    let params = ParamMap::uniform(TopicParams::paper_default().with_g(10.0).with_a(3.0));
    let net = StaticNetwork::from_groups(Arc::clone(&hierarchy), groups, params, 7)?;
    let mut engine = Engine::new(SimConfig::default().with_seed(7), net.into_processes());

    // A football reporter files a story; a politics reporter files another.
    let goal = engine
        .process_mut(football_fans[0])
        .publish("goal in stoppage time");
    let vote = engine
        .process_mut(politics_desk[0])
        .publish("parliament vote passes");
    engine.run_until_quiescent(64);

    let count = |members: &[ProcessId], id| {
        members
            .iter()
            .filter(|&&p| engine.process(p).has_delivered(id))
            .count()
    };

    println!("football story ({goal}):");
    println!("  football fans   {:>2}/30", count(&football_fans, goal));
    println!("  sport editors   {:>2}/6", count(&sport_editors, goal));
    println!("  chief editors   {:>2}/4", count(&chiefs, goal));
    println!(
        "  politics desk   {:>2}/10  (must be 0)",
        count(&politics_desk, goal)
    );
    assert_eq!(
        count(&politics_desk, goal),
        0,
        "politics desk must not see sport"
    );

    println!("\npolitics story ({vote}):");
    println!("  politics desk   {:>2}/10", count(&politics_desk, vote));
    println!("  chief editors   {:>2}/4", count(&chiefs, vote));
    println!(
        "  football fans   {:>2}/30  (must be 0)",
        count(&football_fans, vote)
    );
    println!(
        "  sport editors   {:>2}/6   (must be 0)",
        count(&sport_editors, vote)
    );
    assert_eq!(count(&football_fans, vote), 0);
    assert_eq!(count(&sport_editors, vote), 0);

    assert_eq!(
        engine.counters().get("da.parasite"),
        0,
        "no desk ever receives a story it did not subscribe to"
    );
    println!("\nparasite deliveries: 0 — branches are perfectly isolated");
    Ok(())
}
