//! The paper's tuning trade-off, hands on: Sec. V-B exposes `g`, `a` and
//! `z` so applications can trade inter-group message cost for reliability,
//! and Sec. VI-E.3 / the Appendix derive the settings at which daMulticast
//! matches the baselines.
//!
//! This example sweeps `g` on a live simulation (measured cost vs measured
//! reliability) and then prints what the analytical model prescribes —
//! showing analysis and simulation agree on the shape.
//!
//! Run with: `cargo run --release --example tuning_tradeoff`

use da_analysis::complexity::GroupLevel;
use da_analysis::reliability::{damulticast_reliability, pit_derived};
use da_analysis::tuning;
use da_harness::scenario::{run_scenario, FailureKind, ScenarioConfig};

fn main() {
    println!("=== measured: sweeping the election weight g ===");
    println!("g      inter-group arrivals   root delivery");
    for g in [1.0, 2.0, 5.0, 10.0, 20.0] {
        let mut config = ScenarioConfig::small().with_failure(FailureKind::None, 1.0);
        config.params.g = g;
        let trials = 12;
        let mut arrivals = 0.0;
        let mut root = 0.0;
        for seed in 0..trials {
            let out = run_scenario(&config, seed);
            arrivals += out.inter_in.iter().sum::<f64>() / trials as f64;
            root += out.delivered_fraction[0] / trials as f64;
        }
        println!("{g:>4.0}   {arrivals:>10.2}           {root:>8.2}");
    }
    println!("(cost grows linearly in g; reliability saturates — the paper's trade-off)");

    println!("\n=== analytic: the same trade-off in closed form ===");
    println!("g      pit(T2->T1)   end-to-end reliability");
    for g in [1.0, 2.0, 5.0, 10.0, 20.0] {
        let chain = [
            GroupLevel {
                g,
                ..GroupLevel::paper_default(1000)
            },
            GroupLevel {
                g,
                ..GroupLevel::paper_default(100)
            },
            GroupLevel {
                g,
                ..GroupLevel::paper_default(10)
            },
        ];
        println!(
            "{g:>4.0}   {:>8.4}       {:>8.4}",
            pit_derived(&chain[0]),
            damulticast_reliability(&chain)
        );
    }

    println!("\n=== matching the baselines (Appendix) ===");
    let pit = 0.99;
    println!("with pit = {pit}:");
    let range = tuning::multicast_c_range(pit);
    println!(
        "  vs gossip multicast: valid c in [{:.3}, {:.3}); at c = 2 use c1 = {:.3}",
        range.lo,
        range.hi,
        tuning::c1_vs_multicast(2.0, pit).expect("2.0 is in range"),
    );
    println!(
        "  memory still wins while z <= {:.1} (paper uses z = 3)",
        tuning::z_bound_vs_multicast(3, 1000, 2.0, pit)
    );
    let range = tuning::broadcast_c_range(3, pit);
    println!(
        "  vs gossip broadcast: valid c in [{:.3}, {:.3}); at c = 1 use c1 = {:.3}",
        range.lo,
        range.hi,
        tuning::c1_vs_broadcast(1.0, 3, pit).expect("1.0 is in range"),
    );
    let range = tuning::hierarchical_c_range(3, 33, pit);
    println!(
        "  vs hierarchical (N = 33): valid c in [{:.3}, {:.3})",
        range.lo, range.hi,
    );
}
