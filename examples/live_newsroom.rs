//! The newsroom scenario — **live**. Same branching topic hierarchy as
//! `examples/newsroom.rs`, but the desks run as actors on the
//! `da-runtime` worker pool instead of inside the round simulator: over
//! a thousand threaded processes exchanging real messages, with the
//! exact same protocol code (the `ExecProtocol` impl of `DaProcess`).
//!
//! Topics (3 levels):
//!
//! ```text
//! .news                      10 chief editors
//! ├── .news.sport           100 sport editors
//! │   └── .news.sport.football  900 football fans
//! └── .news.politics        100 politics reporters
//! ```
//!
//! A football story must reach all 1,010 processes on the sport branch
//! (fans, sport editors, chiefs) and zero on the politics desk; a
//! politics story takes the other branch. The paper's invariant — zero
//! parasite deliveries — holds live exactly as it does simulated.
//!
//! Run with: `cargo run --release --example live_newsroom`
//! (pass `--small` for a CI-sized population).
//!
//! Pass `--loss <p>` to run the same stories over lossy live channels —
//! each message is dropped with probability `p` by the `FaultyRouter`
//! (the shared `da_core::channel` model). The example then reports the
//! achieved per-desk delivery ratios instead of asserting full
//! coverage; the zero-parasite invariant is asserted at every loss
//! rate, because no amount of channel noise may leak a story outside
//! its audience.

use da_runtime::{Runtime, RuntimeConfig};
use da_simnet::{ChannelConfig, ProcessId};
use da_topics::TopicHierarchy;
use damulticast::{GroupSpec, ParamMap, StaticNetwork, TopicParams};
use std::sync::Arc;
use std::time::Instant;

/// Parses `--loss <p>` (message loss probability, 0 ≤ p < 1) from the
/// argument list. Absent flag means perfect channels.
fn loss_from_args() -> f64 {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--loss" {
            let value = args
                .next()
                .expect("--loss needs a probability, e.g. --loss 0.15");
            let p: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("--loss {value}: not a number"));
            assert!((0.0..1.0).contains(&p), "--loss {p}: need 0 ≤ p < 1");
            return p;
        }
    }
    0.0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small = std::env::args().any(|a| a == "--small");
    let loss = loss_from_args();
    // Desk sizes, top-down the sport branch then politics. Full scale
    // hosts 1,110 live processes; --small is a CI-sized smoke run.
    let [n_chiefs, n_sport, n_football, n_politics] = if small {
        [4, 20, 100, 20]
    } else {
        [10, 100, 900, 100]
    };

    let mut hierarchy = TopicHierarchy::new();
    let news = hierarchy.insert(".news")?;
    let sport = hierarchy.insert(".news.sport")?;
    let football = hierarchy.insert(".news.sport.football")?;
    let politics = hierarchy.insert(".news.politics")?;
    let hierarchy = Arc::new(hierarchy);

    let mut next = 0u32;
    let mut desk = |count: usize| -> Vec<ProcessId> {
        let members = (next..next + count as u32).map(ProcessId).collect();
        next += count as u32;
        members
    };
    let chiefs = desk(n_chiefs);
    let sport_editors = desk(n_sport);
    let football_fans = desk(n_football);
    let politics_desk = desk(n_politics);
    let population = n_chiefs + n_sport + n_football + n_politics;

    let groups = vec![
        GroupSpec {
            topic: news,
            members: chiefs.clone(),
        },
        GroupSpec {
            topic: sport,
            members: sport_editors.clone(),
        },
        GroupSpec {
            topic: football,
            members: football_fans.clone(),
        },
        GroupSpec {
            topic: politics,
            members: politics_desk.clone(),
        },
    ];

    // Pin the trade-off knobs high (g, a for the inter-group hop, an
    // `ln S + 12` fanout for intra-group atomicity) so every story
    // reaches its full audience regardless of thread interleaving —
    // the live substrate is concurrent, the guarantee must not be lucky.
    let params = ParamMap::uniform(
        TopicParams::paper_default()
            .with_g(20.0)
            .with_a(3.0)
            .with_fanout(da_membership::FanoutRule::LnPlusC { c: 12.0 }),
    );
    let net = StaticNetwork::from_groups(Arc::clone(&hierarchy), groups, params, 7)?;

    // At least 4 workers even on small machines, so the run always
    // exercises true cross-thread message passing.
    let workers = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(4);
    let channel = ChannelConfig::reliable().with_success_probability(1.0 - loss);
    let start = Instant::now();
    let config = RuntimeConfig::default()
        .with_seed(7)
        .with_workers(workers)
        .with_channel(channel);
    let mut rt = Runtime::spawn(config, net.into_processes());
    println!(
        "newsroom live: {population} processes on {} workers, {:.0}% message loss",
        rt.workers(),
        loss * 100.0
    );

    // Reporters file their stories on live processes, between ticks.
    let goal = rt.with_process_mut(football_fans[0], |p| p.publish("goal in stoppage time"));
    let vote = rt.with_process_mut(politics_desk[0], |p| p.publish("parliament vote passes"));
    let ticks = rt.run_until_quiescent(128);
    let out = rt.shutdown();
    let elapsed = start.elapsed();

    let count = |members: &[ProcessId], id| {
        members
            .iter()
            .filter(|&&p| out.processes[p.index()].has_delivered(id))
            .count()
    };

    println!("\nfootball story ({goal}):");
    println!(
        "  football fans   {:>4}/{n_football}",
        count(&football_fans, goal)
    );
    println!(
        "  sport editors   {:>4}/{n_sport}",
        count(&sport_editors, goal)
    );
    println!("  chief editors   {:>4}/{n_chiefs}", count(&chiefs, goal));
    println!(
        "  politics desk   {:>4}/{n_politics}  (must be 0)",
        count(&politics_desk, goal)
    );

    println!("\npolitics story ({vote}):");
    println!(
        "  politics desk   {:>4}/{n_politics}",
        count(&politics_desk, vote)
    );
    println!("  chief editors   {:>4}/{n_chiefs}", count(&chiefs, vote));
    println!(
        "  football fans   {:>4}/{n_football}  (must be 0)",
        count(&football_fans, vote)
    );

    // The achieved delivery ratio across both stories' full audiences.
    let goal_audience = n_football + n_sport + n_chiefs;
    let vote_audience = n_politics + n_chiefs;
    let delivered = count(&football_fans, goal)
        + count(&sport_editors, goal)
        + count(&chiefs, goal)
        + count(&politics_desk, vote)
        + count(&chiefs, vote);
    let ratio = delivered as f64 / (goal_audience + vote_audience) as f64;

    // Nothing outside the audience, zero parasites — at any loss rate.
    assert_eq!(count(&politics_desk, goal), 0, "politics saw sport");
    assert_eq!(count(&football_fans, vote), 0, "fans saw politics");
    assert_eq!(count(&sport_editors, vote), 0, "sport saw politics");
    assert_eq!(out.counters.get("da.parasite"), 0);
    if loss == 0.0 {
        // Perfect channels additionally guarantee the full audience.
        assert_eq!(count(&football_fans, goal), n_football);
        assert_eq!(count(&sport_editors, goal), n_sport);
        assert_eq!(count(&chiefs, goal), n_chiefs);
        assert_eq!(count(&politics_desk, vote), n_politics);
        assert_eq!(count(&chiefs, vote), n_chiefs);
    }

    let sent = out.counters.get("rt.sent");
    let bytes = out.counters.get("rt.bytes_sent");
    let dropped = out.counters.get("rt.dropped_channel");
    println!(
        "\nquiescent after {ticks} ticks, {:.1} ms wall clock",
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "transport: {sent} messages, {bytes} bytes, {:.0} msg/s, {dropped} lost to the channel",
        sent as f64 / elapsed.as_secs_f64()
    );
    println!(
        "achieved delivery ratio: {:.4} at {:.0}% loss",
        ratio,
        loss * 100.0
    );
    println!("parasite deliveries: 0 — branches are perfectly isolated, live");
    Ok(())
}
