//! Split-brain and heal — **live**. A soak of the full dynamic stack
//! (bootstrap + membership + maintenance) running as actors on the
//! `da-runtime` worker pool while a first-class [`PartitionSchedule`]
//! cuts the network in two and later heals it: the fault the paper's
//! model rules out of scope for safety but that any deployed gossip
//! overlay must survive.
//!
//! Three-level linear hierarchy, every table discovered at runtime; the
//! tail quarter of the leaf group lives on an `"island"` node that a
//! partition severs from tick 20 to tick 45. Four stories probe the
//! cycle: one before the cut (blankets everyone), one per side during
//! the split (each stays on its side — zero cross-island deliveries of
//! the mainland's story on the island and vice versa, because the
//! severed check drops cross sends at source), and one from the island
//! after the heal, which must blanket the whole leaf group again: the
//! overlay re-merges because view entries outlive the cut (eviction age
//! exceeds its length) and maintenance re-finds super contacts.
//!
//! Run with: `cargo run --release --example live_partition`
//! (pass `--small` for a CI-sized population).
//!
//! Asserted: zero parasite deliveries through cut and heal, severed
//! sends actually accounted (`rt.dropped_partitioned > 0`), and exact
//! envelope accounting — every envelope ends in exactly one bucket.
//!
//! Set `DA_TRACE_OUT=<path>` to run with the flight recorder in full
//! capture mode and write the JSONL event stream there (CI uploads it
//! as a workflow artifact from the smoke run).

use da_runtime::{Runtime, RuntimeConfig, TraceConfig};
use da_simnet::{NodeId, Partition, PartitionSchedule, ProcessId, Topology};
use damulticast::{DynamicNetwork, ParamMap, TopicParams};
use std::path::PathBuf;
use std::time::Instant;

/// The cut opens at this tick…
const CUT_AT: u64 = 20;
/// …and heals at this one.
const HEAL_AT: u64 = 45;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small = std::env::args().any(|a| a == "--small");
    let sizes: &[usize] = if small { &[4, 20, 60] } else { &[10, 100, 900] };
    let population: usize = sizes.iter().sum();
    let seed = 7u64;

    // Aggressive maintenance (period 5, 2-tick ping timeout) so the
    // island re-finds its super contacts within a few ticks of the
    // heal, plus pinned-high dissemination knobs for redundancy.
    let params = ParamMap::uniform(TopicParams {
        maintenance_period: 5,
        ping_timeout: 2,
        g: 15.0,
        a: 3.0,
        ..TopicParams::paper_default()
    });
    let net = DynamicNetwork::linear(sizes, params, 3, 4, seed)?;
    let leaves = net.groups().last().expect("three levels").members.clone();
    let island: Vec<ProcessId> = leaves[leaves.len() - leaves.len() / 4..].to_vec();
    let mainland_leaves: Vec<ProcessId> = leaves[..leaves.len() - island.len()].to_vec();

    let mut topology = Topology::with_nodes(["mainland", "island"]);
    for &pid in &island {
        topology = topology.with_placement(pid, NodeId(1));
    }
    let partitions = PartitionSchedule::none().with_partition(
        Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], CUT_AT).heal_at(HEAL_AT),
    );

    let workers = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(4);
    // Opt-in flight recorder: full capture when DA_TRACE_OUT names a
    // JSONL destination, off (the zero-cost default) otherwise.
    let trace_out: Option<PathBuf> = std::env::var_os("DA_TRACE_OUT").map(PathBuf::from);
    let trace = if trace_out.is_some() {
        TraceConfig::full()
    } else {
        TraceConfig::off()
    };
    let config = RuntimeConfig::default()
        .with_seed(seed)
        .with_workers(workers)
        .with_topology(topology)
        .with_partitions(partitions)
        .with_trace(trace);
    let start = Instant::now();
    let mut rt = Runtime::spawn(config, net.into_processes());
    println!(
        "partition soak: {population} dynamic processes on {} workers, \
         {} leaf processes cut off from tick {CUT_AT} to {HEAL_AT}",
        rt.workers(),
        island.len()
    );

    // Let bootstrap + membership settle, then probe each phase of the
    // cut/heal cycle with one story.
    rt.run_ticks(10);
    let pre_cut = rt.with_process_mut(mainland_leaves[0], |p| p.publish("before the cut"));
    rt.run_ticks(20); // ticks 10..30: the cut opens at 20
    let cut_mainland = rt.with_process_mut(mainland_leaves[1], |p| p.publish("mainland, split"));
    let cut_island = rt.with_process_mut(island[0], |p| p.publish("island, split"));
    rt.run_ticks(25); // ticks 30..55: the heal lands at 45
    let post_heal = rt.with_process_mut(island[1], |p| p.publish("island, re-merged"));
    rt.run_ticks(45); // ticks 55..100
    let out = rt.shutdown();
    let elapsed = start.elapsed();

    let ratio_among = |cohort: &[ProcessId], id| {
        let got = cohort
            .iter()
            .filter(|&&p| out.processes[p.index()].has_delivered(id))
            .count();
        got as f64 / cohort.len().max(1) as f64
    };
    let stories = [
        ("before cut, mainland", pre_cut),
        ("during cut, mainland", cut_mainland),
        ("during cut, island", cut_island),
        ("after heal, island", post_heal),
    ];
    println!("\ndelivery per story (mainland leaves / island leaves):");
    for (label, id) in stories {
        println!(
            "  {label:<22} {:.3} / {:.3}",
            ratio_among(&mainland_leaves, id),
            ratio_among(&island, id)
        );
    }

    // The cycle's phases, asserted: the pre-cut story blankets both
    // sides; the split stories stay on their side (the severed check
    // drops every cross send at source, and infect-and-die gossip does
    // not retry after the heal); the post-heal story blankets both
    // sides again — the overlay re-merged.
    assert!(ratio_among(&leaves, pre_cut) > 0.9, "pre-cut blanket");
    assert!(
        ratio_among(&mainland_leaves, cut_mainland) > 0.9,
        "mainland side keeps working under the cut"
    );
    assert!(
        ratio_among(&island, cut_mainland) < 0.1,
        "the mainland's split story must not reach the island"
    );
    assert!(
        ratio_among(&mainland_leaves, cut_island) < 0.1,
        "the island's split story must not reach the mainland"
    );
    assert!(
        ratio_among(&leaves, post_heal) > 0.9,
        "post-heal story must blanket the re-merged overlay"
    );

    // Exact envelope accounting with the partition bucket in the
    // ledger, and the paper's invariant through cut and heal.
    let sent = out.counters.get("rt.sent");
    let delivered = out.counters.get("rt.delivered");
    let dropped_partitioned = out.counters.get("rt.dropped_partitioned");
    let accounted = delivered
        + out.counters.get("rt.dropped_channel")
        + dropped_partitioned
        + out.counters.get("rt.dropped_crashed")
        + out.counters.get("rt.dropped_shutdown")
        + out.counters.get("rt.dropped_closed");
    assert_eq!(accounted, sent, "every envelope in exactly one bucket");
    assert!(dropped_partitioned > 0, "the cut severed no send");
    assert_eq!(out.counters.get("da.parasite"), 0, "parasite delivery");

    println!(
        "\ntransport: {sent} sent = {delivered} delivered + {dropped_partitioned} severed \
         by the partition + other buckets"
    );
    println!(
        "{:.1} ms wall clock, {:.0} msg/s",
        elapsed.as_secs_f64() * 1e3,
        sent as f64 / elapsed.as_secs_f64()
    );
    println!("parasite deliveries: 0 — the invariant holds through split-brain and heal, live");

    if let Some(path) = trace_out {
        let log = out.trace.as_ref().expect("tracing was enabled");
        log.write_jsonl(&path)?;
        println!(
            "flight recorder: {} events ({} beyond capacity) -> {}",
            log.events.len(),
            log.dropped_events,
            path.display()
        );
    }
    Ok(())
}
