//! Analysis-vs-simulation cross-validation: the measured behaviour of the
//! implemented protocol must track the closed forms of Sec. VI within
//! gossip's constant-factor slack. This is the strongest evidence that
//! both the math module and the protocol implementation encode the same
//! algorithm.

use da_analysis::complexity::{self, GroupLevel};
use da_analysis::gossip_math::atomic_infection_probability;
use da_analysis::memory;
use da_analysis::reliability;
use da_harness::runner::run_trials;
use da_harness::scenario::{run_scenario, FailureKind, ScenarioConfig};
use da_membership::FanoutRule;

const SIZES: [usize; 3] = [10, 50, 250];

fn base_config() -> ScenarioConfig {
    ScenarioConfig {
        group_sizes: SIZES.to_vec(),
        p_succ: 1.0,
        failure: FailureKind::None,
        alive_fraction: 1.0,
        ..ScenarioConfig::paper_default()
    }
    .with_fanout(FanoutRule::LnPlusC { c: 5.0 })
}

fn analysis_levels(p_succ: f64) -> Vec<GroupLevel> {
    SIZES
        .iter()
        .rev()
        .map(|&s| GroupLevel {
            s,
            c: 5.0,
            g: 5.0,
            a: 1.0,
            z: 3,
            p_succ,
        })
        .collect()
}

/// Measured intra-group message totals match `Σ S·(ln S + c)` closely:
/// every infected process gossips exactly `⌊ln S + c⌋` times, so the only
/// slack is the floor and the infected fraction.
#[test]
fn intra_message_count_matches_analysis() {
    let config = base_config();
    let measured = run_trials(10, 1, |seed| {
        vec![run_scenario(&config, seed).total_event_messages]
    })[0]
        .mean;
    let predicted = complexity::damulticast_messages(&analysis_levels(1.0));
    let ratio = measured / predicted;
    assert!(
        (0.7..=1.1).contains(&ratio),
        "measured {measured} vs predicted {predicted} (ratio {ratio})"
    );
}

/// Measured inter-group crossings match `S·p_sel·p_a·z·p_succ` in
/// expectation (Sec. VI-B's nbSuperMsg), within sampling error.
#[test]
fn intergroup_count_matches_analysis() {
    let config = base_config();
    // inter_in[1] = arrivals at T1 from T2 (metric index 4 of a 3-level
    // chain: intra 0..3, inter_t1_to_t0 = 3, inter_t2_to_t1 = 4).
    let measured = run_trials(60, 2, |seed| {
        let out = run_scenario(&config, seed);
        vec![out.inter_in[1]]
    })[0]
        .mean;
    let leaf = &analysis_levels(1.0)[0];
    let predicted = complexity::intergroup_messages(leaf);
    assert!(
        (measured - predicted).abs() < predicted * 0.5 + 1.0,
        "measured {measured} vs predicted {predicted}"
    );
}

/// Measured per-process memory stays within the `ln(S) + c + z` bound of
/// Sec. VI-C (in table entries: `(b+1)ln(S)` view + `z`).
#[test]
fn memory_within_paper_bound() {
    let net =
        damulticast::StaticNetwork::linear(&SIZES, damulticast::ParamMap::default(), 3).unwrap();
    let groups = net.groups().to_vec();
    let procs = net.into_processes();
    for p in &procs {
        let group = groups.iter().find(|g| g.topic == p.topic()).unwrap();
        let view_bound = da_membership::kmg_view_size(3.0, group.members.len());
        assert!(
            p.memory_entries() <= view_bound + 3,
            "memory {} exceeds (b+1)lnS + z = {}",
            p.memory_entries(),
            view_bound + 3
        );
    }
    // And the closed form orders the algorithms correctly.
    let leaf_s = SIZES[2];
    assert!(
        memory::damulticast_memory(leaf_s, 5.0, 3)
            < memory::multicast_memory(&[(SIZES[0], 5.0), (SIZES[1], 5.0), (SIZES[2], 5.0)])
    );
}

/// Measured leaf-group delivery at full aliveness is at least the
/// `e^{-e^{-c}}` atomic-gossip probability (the analysis' lower bound for
/// *all* processes receiving).
#[test]
fn reliability_at_least_atomic_bound() {
    let config = base_config();
    let full_coverage_fraction = run_trials(40, 4, |seed| {
        let out = run_scenario(&config, seed);
        // Fraction of trials where the *entire* leaf group delivered.
        vec![f64::from(out.delivered_fraction[2] >= 1.0 - 1e-9)]
    })[0]
        .mean;
    let bound = atomic_infection_probability(5.0); // ≈ 0.9933
    assert!(
        full_coverage_fraction >= bound - 0.08,
        "full-coverage fraction {full_coverage_fraction} far below e^-e^-c = {bound}"
    );
}

/// Lossy channels: measured root delivery tracks the end-to-end
/// reliability product of eq. 1 within coarse tolerance.
#[test]
fn lossy_reliability_tracks_eq1() {
    let mut config = base_config();
    config.p_succ = 0.85;
    // 120 trials: the per-trial fraction has std ≈ 0.3, so 40 trials left
    // the mean within sampling distance of the bound on unlucky seeds.
    let measured = run_trials(120, 5, |seed| {
        let out = run_scenario(&config, seed);
        vec![out.delivered_fraction[0]]
    })[0]
        .mean;
    let predicted = reliability::damulticast_reliability(&analysis_levels(0.85));
    assert!(
        measured >= predicted - 0.15,
        "measured root delivery {measured} far below eq.1 prediction {predicted}"
    );
}

/// The no-hierarchy degenerate case: a single group behaves exactly like
/// flat gossip broadcast (the paper's "no degradation" claim, Sec. I).
#[test]
fn single_group_degenerates_to_flat_gossip() {
    let config = ScenarioConfig {
        group_sizes: vec![200],
        publish_level: 0,
        p_succ: 1.0,
        failure: FailureKind::None,
        alive_fraction: 1.0,
        ..ScenarioConfig::paper_default()
    }
    .with_fanout(FanoutRule::LnPlusC { c: 5.0 });
    let summaries = run_trials(10, 6, |seed| {
        let out = run_scenario(&config, seed);
        vec![out.total_event_messages, out.delivered_fraction[0]]
    });
    let predicted = complexity::broadcast_messages(200, 5.0);
    let ratio = summaries[0].mean / predicted;
    assert!(
        (0.8..=1.05).contains(&ratio),
        "degenerate case must cost like flat gossip (ratio {ratio})"
    );
    assert!(summaries[1].mean > 0.999, "full delivery in one group");
}
