//! Tier-1 canary: the `examples/quickstart.rs` path, programmatically.
//!
//! One small three-level topology, one publication in the leaf group, and
//! the paper's two headline invariants checked: every leaf subscriber
//! delivers, and nobody receives an event for a topic it did not
//! subscribe to (zero parasites). Fast by design — if this fails, skip
//! the slower suites and fix the basics first.

use da_simnet::{Engine, SimConfig};
use damulticast::{ParamMap, StaticNetwork, TopicParams};

#[test]
fn quickstart_small_topology_delivers_everywhere_without_parasites() {
    // Quickstart at one tenth scale, knobs pinned high like
    // `tests/e2e_dissemination.rs` so full coverage is deterministic in
    // practice (miss probability ≈ e^{-12} per group).
    let params = ParamMap::uniform(
        TopicParams::paper_default()
            .with_g(20.0)
            .with_a(3.0)
            .with_fanout(da_membership::FanoutRule::LnPlusC { c: 12.0 }),
    );
    let net = StaticNetwork::linear(&[3, 10, 30], params, 7).expect("valid 3-level chain");
    let groups = net.groups().to_vec();
    let leaf = groups[2].members[0];

    let mut engine = Engine::new(SimConfig::default().with_seed(7), net.into_processes());
    let id = engine.process_mut(leaf).publish("smoke");
    engine.run_until_quiescent(64);

    // Full delivery at every level (the leaf topic is included by all).
    for (level, group) in groups.iter().enumerate() {
        let delivered = group
            .members
            .iter()
            .filter(|&&p| engine.process(p).has_delivered(id))
            .count();
        assert_eq!(
            delivered,
            group.members.len(),
            "level {level}: {delivered}/{} delivered",
            group.members.len()
        );
    }

    // The paper's signature property: zero parasite deliveries.
    assert_eq!(engine.counters().get("da.parasite"), 0);

    // Exactly one delivery per interested process — no duplicates hidden
    // behind the per-group counts.
    let total_members: usize = groups.iter().map(|g| g.members.len()).sum();
    let total_delivered = engine
        .processes()
        .filter(|(_, p)| p.has_delivered(id))
        .count();
    assert_eq!(total_delivered, total_members);
}
