//! Property-based system invariants (DESIGN.md §7), checked over random
//! topologies, parameters, failure draws and publish patterns.

use da_simnet::{ChannelConfig, Engine, FailureModel, SimConfig};
use damulticast::{EventId, ParamMap, StaticNetwork, TopicParams};
use proptest::prelude::*;

/// A random linear topology: 2–4 levels, each group 2–20 processes.
fn arb_topology() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(2usize..20, 2..5)
}

fn arb_params() -> impl Strategy<Value = TopicParams> {
    (1.0f64..20.0, 1usize..5, 0.0f64..8.0).prop_map(|(g, z, c)| TopicParams {
        g,
        z,
        a: 1.0,
        tau: 1.min(z),
        fanout: da_membership::FanoutRule::LnPlusC { c },
        ..TopicParams::paper_default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 1: no parasite delivery — whatever the topology,
    /// parameters, loss rate, failures, and publish level.
    #[test]
    fn never_a_parasite(
        sizes in arb_topology(),
        params in arb_params(),
        publish_level_frac in 0.0f64..1.0,
        p_succ in 0.3f64..1.0,
        alive in 0.3f64..1.0,
        seed in 0u64..1_000,
    ) {
        let net = StaticNetwork::linear(&sizes, ParamMap::uniform(params), seed).unwrap();
        let groups = net.groups().to_vec();
        let sim = SimConfig::default()
            .with_seed(seed)
            .with_channel(ChannelConfig::default().with_success_probability(p_succ))
            .with_failures(FailureModel::Stillborn { alive_fraction: alive });
        let mut engine = Engine::new(sim, net.into_processes());
        let level = ((publish_level_frac * sizes.len() as f64) as usize).min(sizes.len() - 1);
        if let Some(&publisher) = groups[level].members.first() {
            if engine.status(publisher).is_alive() {
                engine.process_mut(publisher).publish("prop");
            }
        }
        engine.run_until_quiescent(96);
        prop_assert_eq!(engine.counters().get("da.parasite"), 0);
        for (pid, p) in engine.processes() {
            prop_assert_eq!(p.parasite_count(), 0, "parasite at {}", pid);
        }
    }

    /// Invariant 2: at-most-once delivery per event id per process.
    #[test]
    fn delivery_is_exactly_once(
        sizes in arb_topology(),
        seed in 0u64..1_000,
        publishes in 1usize..4,
    ) {
        let net = StaticNetwork::linear(&sizes, ParamMap::default(), seed).unwrap();
        let groups = net.groups().to_vec();
        let mut engine = Engine::new(SimConfig::default().with_seed(seed), net.into_processes());
        let leaf = groups.last().unwrap();
        for i in 0..publishes {
            let publisher = leaf.members[i % leaf.members.len()];
            engine.process_mut(publisher).publish(format!("e{i}"));
        }
        engine.run_until_quiescent(96);
        for (pid, p) in engine.processes() {
            let mut ids: Vec<EventId> = p.delivered().iter().map(|e| e.id()).collect();
            let before = ids.len();
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "duplicate delivery at {}", pid);
        }
    }

    /// Invariant 4 (memory): every topic table stays within the
    /// `(b+1)·ln(S)` capacity, every supertable within `z`, and supertable
    /// entries always reference strict-ancestor group members.
    #[test]
    fn table_bounds_and_ancestry(
        sizes in arb_topology(),
        params in arb_params(),
        seed in 0u64..1_000,
    ) {
        let net = StaticNetwork::linear(&sizes, ParamMap::uniform(params), seed).unwrap();
        let groups = net.groups().to_vec();
        let hierarchy = std::sync::Arc::clone(net.hierarchy());
        let procs = net.into_processes();
        for p in &procs {
            let my_group = groups.iter().find(|g| g.topic == p.topic()).unwrap();
            let cap = da_membership::kmg_view_size(params.b, my_group.members.len());
            prop_assert!(p.topic_table().len() <= cap.max(1));
            prop_assert!(p.super_table().len() <= params.z);
            for e in p.super_table().entries() {
                prop_assert!(
                    hierarchy.includes(e.topic, p.topic()),
                    "supertable entry topic must strictly include the owner's"
                );
                let target_group = groups.iter().find(|g| g.topic == e.topic).unwrap();
                prop_assert!(target_group.members.contains(&e.pid));
            }
        }
    }

    /// Invariant 7: crashed processes never deliver.
    #[test]
    fn crashed_processes_stay_silent(
        sizes in arb_topology(),
        alive in 0.2f64..0.9,
        seed in 0u64..1_000,
    ) {
        let net = StaticNetwork::linear(&sizes, ParamMap::default(), seed).unwrap();
        let groups = net.groups().to_vec();
        let sim = SimConfig::default()
            .with_seed(seed)
            .with_failures(FailureModel::Stillborn { alive_fraction: alive });
        let mut engine = Engine::new(sim, net.into_processes());
        let leaf = groups.last().unwrap();
        if let Some(&publisher) = leaf
            .members
            .iter()
            .find(|&&p| engine.status(p).is_alive())
        {
            engine.process_mut(publisher).publish("prop");
        }
        engine.run_until_quiescent(96);
        for (pid, p) in engine.processes() {
            if !engine.status(pid).is_alive() {
                prop_assert!(
                    p.delivered().is_empty(),
                    "{} is crashed yet delivered",
                    pid
                );
            }
        }
    }

    /// Event ordering sanity: per-publisher sequence numbers are strictly
    /// increasing in the delivered stream of every process.
    #[test]
    fn per_publisher_sequences_monotone(
        sizes in arb_topology(),
        seed in 0u64..1_000,
    ) {
        let net = StaticNetwork::linear(&sizes, ParamMap::default(), seed).unwrap();
        let groups = net.groups().to_vec();
        let mut engine = Engine::new(SimConfig::default().with_seed(seed), net.into_processes());
        let leaf = groups.last().unwrap();
        let publisher = leaf.members[0];
        for i in 0..3 {
            engine.process_mut(publisher).publish(format!("s{i}"));
            // Sequential publications: later events are published in later
            // rounds, so gossip order preserves publisher order here.
            engine.run_rounds(8);
        }
        engine.run_until_quiescent(96);
        for (_, p) in engine.processes() {
            let seqs: Vec<u64> = p
                .delivered()
                .iter()
                .filter(|e| e.id().publisher == publisher)
                .map(|e| e.id().sequence)
                .collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            prop_assert_eq!(seqs, sorted);
        }
    }
}
