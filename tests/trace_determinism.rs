//! Flight-recorder determinism: the canonicalised trace stream of the
//! live runtime is **bit-identical across worker counts and lag
//! windows** for the same seed. The recorder's canonical order sorts by
//! `(tick, verdict, from, to, payload)`, which erases worker scheduling
//! and publication interleaving — so a run on one worker with a tight
//! lag window must produce byte-for-byte the same event stream as a run
//! on four workers drifting up to `max_lag = 4` ticks apart.
//!
//! The fault draws this relies on are all keyed on `(edge, tick)` or
//! `(pid, tick)` hashes, never on a shared mutable RNG stream, so loss,
//! variable latency, and churn are all fair game here. (`PerObserver`
//! failures are the documented exception — their draws are
//! observer-local — and are deliberately absent.)

use da_harness::experiments::trace::live_probe_trace;
use da_simnet::{ChannelConfig, FailureModel, FaultConfig, Latency, TraceEvent};
use proptest::prelude::*;

/// One canonical stream for a pool shape.
fn canonical_stream(
    population: u32,
    faults: &FaultConfig,
    seed: u64,
    workers: usize,
    max_lag: u64,
) -> Vec<TraceEvent> {
    live_probe_trace(population, faults, seed, workers, max_lag).canonical_events()
}

proptest! {
    // Each case replays the same seeded probe run on five pool shapes;
    // the probe is 16 ticks over ≤ 24 processes, so 64 cases stay fast.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite requirement: canonical trace streams are bit-identical
    /// across worker counts × `max_lag ∈ {1, 4}` for the same seed,
    /// under loss, multi-tick latency, and churn all at once.
    #[test]
    fn canonical_stream_is_invariant_across_pool_shapes(
        seed in 0u64..1_000_000,
        population in 4u32..=24,
        success in prop_oneof![Just(1.0f64), Just(0.8), Just(0.5)],
        churned in prop_oneof![Just(false), Just(true)],
    ) {
        let mut faults = FaultConfig::new().with_channel(
            ChannelConfig::reliable()
                .with_success_probability(success)
                .with_latency(Latency::UniformRounds { min: 1, max: 3 }),
        );
        if churned {
            faults = faults.with_failures(FailureModel::Churn {
                crash_probability: 0.05,
                recover_probability: 0.3,
            });
        }

        let reference = canonical_stream(population, &faults, seed, 1, 1);
        prop_assert!(
            !reference.is_empty(),
            "the probe workload always sends something"
        );
        for workers in [2usize, 4, 8] {
            for max_lag in [1u64, 4] {
                let stream = canonical_stream(population, &faults, seed, workers, max_lag);
                prop_assert_eq!(
                    &reference,
                    &stream,
                    "canonical stream changed with pool shape (workers={}, max_lag={})",
                    workers,
                    max_lag
                );
            }
        }
    }
}
