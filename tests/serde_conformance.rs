//! C-SERDE conformance: every configuration / result type that plays the
//! role of a data structure implements `Serialize` and `Deserialize`, so
//! downstream users can persist experiment configs and results.
//!
//! (The approved offline dependency set has no serde data format, so these
//! are compile-time conformance checks rather than byte round-trips.)

use serde::de::DeserializeOwned;
use serde::Serialize;

fn is_serde<T: Serialize + DeserializeOwned>() {}
fn is_serialize<T: Serialize>() {}

#[test]
fn simnet_types_are_serde() {
    is_serde::<da_simnet::SimConfig>();
    is_serde::<da_simnet::ChannelConfig>();
    is_serde::<da_simnet::FailureModel>();
    is_serde::<da_simnet::Fate>();
    is_serde::<da_simnet::ProcessId>();
    is_serde::<da_simnet::RoundReport>();
    is_serde::<da_simnet::Counters>();
    is_serde::<da_simnet::Overlay>();
}

#[test]
fn fault_and_topology_types_are_serde() {
    is_serde::<da_simnet::FaultConfig>();
    is_serde::<da_simnet::NetworkModel>();
    is_serde::<da_simnet::Topology>();
    is_serde::<da_simnet::NodeId>();
    is_serde::<da_simnet::Partition>();
    is_serde::<da_simnet::PartitionSchedule>();
}

#[test]
fn trace_types_are_serde() {
    is_serde::<da_simnet::TraceConfig>();
    is_serde::<da_simnet::TraceMode>();
    is_serde::<da_simnet::TraceCategory>();
    is_serde::<da_simnet::TraceEvent>();
    is_serde::<da_simnet::TraceVerdict>();
    is_serde::<da_simnet::Histogram>();
}

#[test]
fn membership_types_are_serde() {
    is_serde::<da_membership::MembershipParams>();
    is_serde::<da_membership::FanoutRule>();
    is_serde::<da_membership::PartialView>();
    is_serde::<da_membership::MembershipMsg>();
}

#[test]
fn topic_types_are_serde() {
    is_serde::<da_topics::TopicId>();
    is_serde::<da_topics::TopicPath>();
    is_serde::<da_topics::TopicHierarchy>();
}

#[test]
fn core_types_are_serde() {
    is_serde::<damulticast::TopicParams>();
    is_serde::<damulticast::ParamMap>();
    is_serde::<damulticast::EventId>();
    is_serde::<damulticast::SuperEntry>();
    is_serde::<damulticast::SuperTable>();
    is_serde::<damulticast::BootstrapTask>();
    is_serde::<damulticast::MaintenanceTask>();
}

#[test]
fn harness_types_are_serde() {
    is_serde::<da_harness::stats::Summary>();
    is_serde::<da_harness::report::SeriesTable>();
    is_serde::<da_harness::report::KeyedTable>();
    is_serde::<da_harness::scenario::ScenarioConfig>();
    is_serde::<da_harness::scenario::FailureKind>();
    is_serialize::<da_harness::scenario::ScenarioOutcome>();
}

#[test]
fn analysis_types_are_serde() {
    is_serde::<da_analysis::complexity::GroupLevel>();
    is_serde::<da_analysis::tuning::CRange>();
}
