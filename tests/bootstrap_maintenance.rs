//! Bootstrap (Fig. 4) and maintenance (Fig. 6) behaviour on the dynamic
//! stack: scope widening past empty groups, link repair under churn, and
//! supertable tightening.

use da_simnet::{Engine, FailureModel, Fate, ProcessId, SimConfig};
use da_topics::TopicHierarchy;
use damulticast::{DynamicNetwork, GroupSpec, ParamMap, StaticNetwork, TopicParams};
use std::sync::Arc;

fn boosted_params() -> ParamMap {
    ParamMap::uniform(TopicParams::paper_default().with_g(15.0).with_a(3.0))
}

/// Every non-root process of a freshly started dynamic network finds super
/// contacts within a bounded number of rounds.
#[test]
fn bootstrap_links_whole_population() {
    let net = DynamicNetwork::linear(&[5, 15, 45], boosted_params(), 3, 4, 10).unwrap();
    let groups = net.groups().to_vec();
    let mut engine = Engine::new(SimConfig::default().with_seed(10), net.into_processes());
    engine.run_rounds(50);
    for group in &groups[1..] {
        let linked = group
            .members
            .iter()
            .filter(|&&p| !engine.process(p).super_table().is_empty())
            .count();
        assert!(
            linked * 10 >= group.members.len() * 9,
            "only {linked}/{} linked",
            group.members.len()
        );
    }
    // Root members keep empty supertables.
    for &p in &groups[0].members {
        assert!(engine.process(p).super_table().is_empty());
    }
}

/// Supertable entries always point at the direct supergroup once the
/// search has finished (the "narrowing" of Fig. 4).
#[test]
fn bootstrap_finds_direct_supergroup() {
    let net = DynamicNetwork::linear(&[5, 15, 45], boosted_params(), 3, 4, 11).unwrap();
    let groups = net.groups().to_vec();
    let hierarchy = Arc::clone(net.hierarchy());
    let mut engine = Engine::new(SimConfig::default().with_seed(11), net.into_processes());
    engine.run_rounds(60);
    let leaf_topic = groups[2].topic;
    let direct_super = hierarchy.parent(leaf_topic).unwrap();
    let mut direct = 0usize;
    let mut total = 0usize;
    for &p in &groups[2].members {
        for e in engine.process(p).super_table().entries() {
            total += 1;
            if e.topic == direct_super {
                direct += 1;
            }
        }
    }
    assert!(total > 0);
    assert!(
        direct * 10 >= total * 8,
        "most links should reach the direct supergroup ({direct}/{total})"
    );
}

/// Maintenance replaces dead supertable entries: after half the root group
/// crashes, leaf supertables recover live uplinks and a later event still
/// reaches surviving roots.
#[test]
fn maintenance_repairs_after_crash_wave() {
    let sizes = [8usize, 32];
    let net = DynamicNetwork::linear(&sizes, boosted_params(), 3, 4, 12).unwrap();
    let fates: Vec<Fate> = (0..4)
        .map(|i| Fate {
            round: 30,
            pid: ProcessId(i),
            crash: true,
        })
        .collect();
    let sim = SimConfig::default()
        .with_seed(12)
        .with_failures(FailureModel::Schedule(fates));
    let mut engine = Engine::new(sim, net.into_processes());
    engine.run_rounds(110); // warm-up, crash at 30, repair afterwards

    // Health check: most supertable entries point at live roots again.
    let mut live = 0usize;
    let mut total = 0usize;
    for i in 8..40 {
        for e in engine.process(ProcessId(i)).super_table().entries() {
            total += 1;
            if engine.status(e.pid).is_alive() {
                live += 1;
            }
        }
    }
    assert!(
        live * 3 >= total * 2,
        "after repair, at least 2/3 of links live ({live}/{total})"
    );

    let id = engine.process_mut(ProcessId(20)).publish("post-crash");
    engine.run_rounds(40);
    let got = (4..8)
        .filter(|&i| engine.process(ProcessId(i)).has_delivered(id))
        .count();
    assert!(got >= 1, "surviving roots must still receive leaf events");
}

/// An empty intermediate group: the bootstrap widens its scope (Fig. 4
/// lines 19–27) and links the leaf group directly to the root.
#[test]
fn bootstrap_widens_past_empty_group() {
    // Build a 3-level hierarchy where nobody subscribes to T1. The
    // dynamic builder only creates linear chains with non-empty groups, so
    // assemble manually from static parts + dynamic processes is overkill;
    // instead verify the equivalent static bridging plus the bootstrap
    // behaviour on a chain where the *static* network shows the link
    // target and the dynamic run reproduces it at the protocol level.
    let (h, ids) = TopicHierarchy::linear_chain(3);
    let h = Arc::new(h);
    let groups = vec![
        GroupSpec {
            topic: ids[0],
            members: (0..6).map(ProcessId).collect(),
        },
        GroupSpec {
            topic: ids[1],
            members: vec![],
        },
        GroupSpec {
            topic: ids[2],
            members: (6..26).map(ProcessId).collect(),
        },
    ];
    let net = StaticNetwork::from_groups(Arc::clone(&h), groups, boosted_params(), 13).unwrap();
    let procs = net.into_processes();
    for p in procs.iter().skip(6) {
        assert!(!p.super_table().is_empty());
        for e in p.super_table().entries() {
            assert_eq!(e.topic, ids[0], "links must bridge past the empty T1");
        }
    }
    let mut engine = Engine::new(SimConfig::default().with_seed(13), procs);
    let id = engine.process_mut(ProcessId(7)).publish("bridged");
    engine.run_until_quiescent(64);
    let roots = (0..6)
        .filter(|&i| engine.process(ProcessId(i)).has_delivered(id))
        .count();
    assert_eq!(roots, 6, "all root members reached through the bridge");
}

/// Determinized liveness probing: ping/pong round-trips mark entries
/// alive; stale entries are detected and dropped on refresh.
#[test]
fn dead_entries_eventually_dropped() {
    let sizes = [6usize, 18];
    let mut params = TopicParams::paper_default().with_g(15.0).with_a(3.0);
    params.maintenance_period = 4;
    params.ping_timeout = 2;
    let net = DynamicNetwork::linear(&sizes, ParamMap::uniform(params), 3, 4, 14).unwrap();
    let fates: Vec<Fate> = (0..3)
        .map(|i| Fate {
            round: 25,
            pid: ProcessId(i),
            crash: true,
        })
        .collect();
    let sim = SimConfig::default()
        .with_seed(14)
        .with_failures(FailureModel::Schedule(fates));
    let mut engine = Engine::new(sim, net.into_processes());
    engine.run_rounds(140);
    // No leaf supertable should still be dominated by dead entries.
    for i in 6..24 {
        let table = engine.process(ProcessId(i)).super_table();
        let dead = table
            .entries()
            .iter()
            .filter(|e| !engine.status(e.pid).is_alive())
            .count();
        assert!(
            dead <= table.len() / 2 || table.len() <= 1,
            "process {i}: {dead}/{} dead entries survived maintenance",
            table.len()
        );
    }
}
