//! End-to-end dissemination across the full crate stack: the paper's
//! topology, multiple publishers, both protocol modes.

use da_simnet::{ChannelConfig, Engine, SimConfig};
use damulticast::{DynamicNetwork, ParamMap, StaticNetwork, TopicParams};

/// The paper's topology at full scale, reliable channels: every
/// interested process delivers, nobody else does. Even on reliable
/// channels the inter-group hop is probabilistic (the p_sel election), so
/// the test pins the trade-off knobs high (g = 20, a = z) to make a missed
/// hop astronomically unlikely (< e^{-20}).
#[test]
fn paper_topology_full_coverage() {
    let params = ParamMap::uniform(TopicParams::paper_default().with_g(20.0).with_a(3.0));
    let net = StaticNetwork::linear(&[10, 100, 1000], params, 1).unwrap();
    let groups = net.groups().to_vec();
    let mut engine = Engine::new(SimConfig::default().with_seed(1), net.into_processes());
    let id = engine.process_mut(groups[2].members[0]).publish("e2e");
    engine.run_until_quiescent(64);

    for (level, group) in groups.iter().enumerate() {
        let delivered = group
            .members
            .iter()
            .filter(|&&p| engine.process(p).has_delivered(id))
            .count();
        assert!(
            delivered * 100 >= group.members.len() * 99,
            "level {level}: {delivered}/{} delivered",
            group.members.len()
        );
    }
    assert_eq!(engine.counters().get("da.parasite"), 0);
}

/// Events from different levels reach exactly their audiences. As in
/// [`paper_topology_full_coverage`], the knobs are pinned high (g, a for
/// the inter-group hop; an `ln S + 12` fanout for intra-group atomicity,
/// missing a process ≈ e^{-12}) so the exact counts below are not at the
/// mercy of one seed.
#[test]
fn concurrent_publications_have_disjoint_audiences() {
    let params = ParamMap::uniform(
        TopicParams::paper_default()
            .with_g(20.0)
            .with_a(3.0)
            .with_fanout(da_membership::FanoutRule::LnPlusC { c: 12.0 }),
    );
    let net = StaticNetwork::linear(&[5, 25, 50], params, 2).unwrap();
    let groups = net.groups().to_vec();
    let mut engine = Engine::new(SimConfig::default().with_seed(2), net.into_processes());
    let leaf_event = engine.process_mut(groups[2].members[0]).publish("leaf");
    let mid_event = engine.process_mut(groups[1].members[0]).publish("mid");
    let root_event = engine.process_mut(groups[0].members[0]).publish("root");
    engine.run_until_quiescent(64);

    // Leaf event: everyone. Mid event: mid + root. Root event: root only.
    let count = |group: usize, id| {
        groups[group]
            .members
            .iter()
            .filter(|&&p| engine.process(p).has_delivered(id))
            .count()
    };
    assert_eq!(count(2, leaf_event), 50);
    assert_eq!(count(1, leaf_event), 25);
    assert_eq!(count(0, leaf_event), 5);

    assert_eq!(count(2, mid_event), 0, "events never flow downwards");
    assert_eq!(count(1, mid_event), 25);
    assert_eq!(count(0, mid_event), 5);

    assert_eq!(count(2, root_event), 0);
    assert_eq!(count(1, root_event), 0);
    assert_eq!(count(0, root_event), 5);
}

/// Lossy channels still achieve the paper's headline reliability at full
/// aliveness.
#[test]
fn lossy_channels_high_reliability() {
    let net = StaticNetwork::linear(&[10, 100, 1000], ParamMap::default(), 3).unwrap();
    let groups = net.groups().to_vec();
    let sim = SimConfig::default()
        .with_seed(3)
        .with_channel(ChannelConfig::paper_default()); // p_succ = 0.85
    let mut engine = Engine::new(sim, net.into_processes());
    let id = engine.process_mut(groups[2].members[5]).publish("lossy");
    engine.run_until_quiescent(64);

    let leaf_fraction = groups[2]
        .members
        .iter()
        .filter(|&&p| engine.process(p).has_delivered(id))
        .count() as f64
        / 1000.0;
    assert!(
        leaf_fraction > 0.95,
        "Fig. 10 at alive = 1: near-total coverage, got {leaf_fraction}"
    );
}

/// A 5-level chain: the event climbs every hop.
#[test]
fn deep_chain_climbs_to_root() {
    let net = StaticNetwork::linear(&[4, 8, 16, 32, 64], ParamMap::default(), 4).unwrap();
    let groups = net.groups().to_vec();
    let mut engine = Engine::new(SimConfig::default().with_seed(4), net.into_processes());
    let id = engine
        .process_mut(groups[4].members[0])
        .publish("five levels up");
    engine.run_until_quiescent(128);
    for (level, group) in groups.iter().enumerate() {
        let delivered = group
            .members
            .iter()
            .filter(|&&p| engine.process(p).has_delivered(id))
            .count();
        assert!(
            delivered == group.members.len(),
            "level {level}: {delivered}/{} delivered",
            group.members.len()
        );
    }
}

/// The dynamic stack bootstraps itself and then matches the static stack's
/// delivery behaviour.
#[test]
fn dynamic_stack_end_to_end() {
    let params = ParamMap::uniform(TopicParams::paper_default().with_g(15.0).with_a(3.0));
    let net = DynamicNetwork::linear(&[6, 20, 60], params, 3, 4, 5).unwrap();
    let groups = net.groups().to_vec();
    let mut engine = Engine::new(SimConfig::default().with_seed(5), net.into_processes());
    engine.run_rounds(50); // joins + bootstrap + membership settle

    let id = engine
        .process_mut(groups[2].members[30])
        .publish("dynamic e2e");
    engine.run_rounds(40);

    let leaf = groups[2]
        .members
        .iter()
        .filter(|&&p| engine.process(p).has_delivered(id))
        .count();
    let root = groups[0]
        .members
        .iter()
        .filter(|&&p| engine.process(p).has_delivered(id))
        .count();
    assert!(leaf >= 55, "leaf coverage {leaf}/60");
    assert!(root >= 1, "event must climb to the root group");
    assert_eq!(engine.counters().get("da.parasite"), 0);
}

/// Multiple sequential publications keep working (sequence numbers, dedup
/// and membership state survive event after event).
#[test]
fn sustained_event_stream() {
    let net = StaticNetwork::linear(&[5, 20], ParamMap::default(), 6).unwrap();
    let groups = net.groups().to_vec();
    let mut engine = Engine::new(SimConfig::default().with_seed(6), net.into_processes());
    let mut ids = Vec::new();
    for i in 0..10 {
        let publisher = groups[1].members[i % 20];
        ids.push(engine.process_mut(publisher).publish(format!("evt {i}")));
        engine.run_rounds(5);
    }
    engine.run_until_quiescent(64);
    // Gossip guarantees e^{-e^{-c}} ≈ 0.95 full-coverage per event at this
    // scale, not certainty: allow one straggler per event and demand most
    // events blanket the group.
    let mut complete = 0;
    for (i, id) in ids.iter().enumerate() {
        let got = groups[1]
            .members
            .iter()
            .filter(|&&p| engine.process(p).has_delivered(*id))
            .count();
        assert!(got >= 19, "event {i} reached only {got}/20");
        if got == 20 {
            complete += 1;
        }
    }
    assert!(
        complete >= 7,
        "only {complete}/10 events achieved full coverage"
    );
    // Deliveries are at-most-once: never more than the 10 published leaf
    // events, and near-complete for every member.
    for &p in &groups[1].members {
        let n = engine.process(p).delivered().len();
        assert!((9..=10).contains(&n), "member delivered {n}/10");
    }
}
