//! Cross-substrate equivalence: the *same* protocol instances, built by
//! the same `StaticNetwork`, must deliver the same event set whether
//! driven by the deterministic round simulator (`da-simnet`) or the
//! multi-threaded live runtime (`da-runtime`).
//!
//! The live substrate is concurrent, so per-message traces differ
//! run-to-run; what must coincide is the *outcome*: every published
//! event reaches its full audience (each subscriber of the topic or a
//! supertopic), nobody outside the audience ever sees it, and no
//! parasite message is counted. As in `e2e_dissemination.rs`, the
//! trade-off knobs are pinned high (`g = 20`, `a = z`, `ln S + 12`
//! fanout) so full coverage is not at the mercy of one seed or one
//! thread interleaving (miss probability ≈ e^{-12} per event).

use da_harness::experiments::trace::describe_divergence;
use da_runtime::{Runtime, RuntimeConfig};
use da_simnet::{
    ChannelConfig, Engine, FailureModel, Latency, ProcessId, SimConfig, TraceConfig, TraceLog,
};
use damulticast::{DaProcess, EventId, ParamMap, StaticNetwork, TopicParams};
use proptest::prelude::*;

/// The paper's Sec. VII-A topology with pinned-high trade-off knobs.
const SIZES: [usize; 3] = [10, 100, 1000];

fn pinned_params() -> ParamMap {
    ParamMap::uniform(
        TopicParams::paper_default()
            .with_g(20.0)
            .with_a(3.0)
            .with_fanout(da_membership::FanoutRule::LnPlusC { c: 12.0 }),
    )
}

fn build_network(seed: u64) -> StaticNetwork {
    StaticNetwork::linear(&SIZES, pinned_params(), seed).expect("paper topology is valid")
}

/// Sorted delivered-event ids per process — the comparison key.
fn delivered_sets(procs: &[DaProcess]) -> Vec<Vec<EventId>> {
    procs
        .iter()
        .map(|p| {
            let mut ids: Vec<EventId> = p.delivered().iter().map(|e| e.id()).collect();
            ids.sort();
            ids
        })
        .collect()
}

/// Publishers: the first member of each level (leaf, mid, root events).
fn publishers(net: &StaticNetwork) -> Vec<ProcessId> {
    net.groups().iter().map(|g| g.members[0]).collect()
}

/// Runs the topology under the simulator, publishing one event per
/// level. Returns per-process delivered sets plus the parasite count.
fn run_sim(seed: u64) -> (Vec<Vec<EventId>>, u64) {
    let net = build_network(seed);
    let pubs = publishers(&net);
    let mut engine = Engine::new(SimConfig::default().with_seed(seed), net.into_processes());
    for (level, pid) in pubs.into_iter().enumerate() {
        engine.process_mut(pid).publish(format!("event-{level}"));
    }
    engine.run_until_quiescent(128);
    let parasites = engine.counters().get("da.parasite");
    (delivered_sets(&engine.into_processes()), parasites)
}

/// Runs the identical topology under the live runtime.
fn run_live(seed: u64, workers: usize) -> (Vec<Vec<EventId>>, u64) {
    let net = build_network(seed);
    let pubs = publishers(&net);
    let config = RuntimeConfig::default()
        .with_seed(seed)
        .with_workers(workers);
    let mut rt = Runtime::spawn(config, net.into_processes());
    for (level, pid) in pubs.into_iter().enumerate() {
        rt.with_process_mut(pid, move |p| p.publish(format!("event-{level}")));
    }
    rt.run_until_quiescent(128);
    let out = rt.shutdown();
    (
        delivered_sets(&out.processes),
        out.counters.get("da.parasite"),
    )
}

/// The audience of the level-`l` event: members of levels 0..=l (events
/// climb; they never flow down). With dense top-down pid allocation the
/// audience is exactly pids `0..prefix_sum(l)`.
fn audience_cutoff(level: usize) -> usize {
    SIZES[..=level].iter().sum()
}

#[test]
fn live_runtime_delivers_the_same_event_set_as_the_simulator() {
    let seed = 42;
    let (sim_sets, sim_parasites) = run_sim(seed);
    let (live_sets, live_parasites) = run_live(seed, 0);

    assert_eq!(sim_parasites, 0, "simulator run saw a parasite");
    assert_eq!(live_parasites, 0, "live run saw a parasite");
    assert_eq!(sim_sets.len(), live_sets.len());

    for (pid, (sim, live)) in sim_sets.iter().zip(&live_sets).enumerate() {
        assert_eq!(
            sim, live,
            "process {pid} delivered different event sets across substrates"
        );
    }
}

#[test]
fn both_substrates_blanket_the_full_audience() {
    let seed = 7;
    for (substrate, (sets, parasites)) in [("sim", run_sim(seed)), ("live", run_live(seed, 0))] {
        assert_eq!(parasites, 0, "{substrate}: parasite deliveries");
        let population: usize = SIZES.iter().sum();
        assert_eq!(sets.len(), population);
        // Event of level l (publisher = first member of level l) must be
        // delivered by exactly the processes of levels 0..=l.
        for (level, &size) in SIZES.iter().enumerate() {
            let cutoff = audience_cutoff(level);
            // Each level's event id is reconstructible: publisher is the
            // first member of the level, sequence 0.
            let publisher = ProcessId::from_index(cutoff - size);
            let id = EventId {
                publisher,
                sequence: 0,
            };
            for (pid, delivered) in sets.iter().enumerate() {
                let interested = pid < cutoff;
                assert_eq!(
                    delivered.binary_search(&id).is_ok(),
                    interested,
                    "{substrate}: process {pid} vs level-{level} event (audience < {cutoff})"
                );
            }
        }
    }
}

#[test]
fn live_outcome_is_stable_across_pool_shapes() {
    // The guarantee must not depend on how processes map to workers.
    let (one, p1) = run_live(3, 1);
    let (eight, p8) = run_live(3, 8);
    assert_eq!(p1, 0);
    assert_eq!(p8, 0);
    assert_eq!(one, eight, "worker count changed the delivered event sets");
}

/// A smaller chain for the property sweep below — each case runs the
/// full workload on both substrates, so the topology is kept modest.
const PROP_SIZES: [usize; 3] = [4, 10, 40];

/// One publication per level driven to quiescence on the given
/// substrate over a lossy, possibly multi-tick-latency channel.
/// Returns per-process delivered sets, the parasite count, and the
/// flight-recorder trace (captured so a parity failure can name the
/// first divergent envelope instead of just "the sets differ").
fn run_lossy(
    seed: u64,
    channel: ChannelConfig,
    live: Option<RuntimeConfig>,
) -> (Vec<Vec<EventId>>, u64, TraceLog) {
    let net = StaticNetwork::linear(&PROP_SIZES, pinned_params(), seed).expect("valid topology");
    let pubs = publishers(&net);
    match live {
        Some(config) => {
            let mut rt = Runtime::spawn(
                config
                    .with_seed(seed)
                    .with_channel(channel)
                    .with_trace(TraceConfig::full()),
                net.into_processes(),
            );
            for (level, pid) in pubs.into_iter().enumerate() {
                rt.with_process_mut(pid, move |p| p.publish(format!("event-{level}")));
            }
            rt.run_until_quiescent(192);
            let out = rt.shutdown();
            (
                delivered_sets(&out.processes),
                out.counters.get("da.parasite"),
                out.trace.expect("tracing was enabled"),
            )
        }
        None => {
            let config = SimConfig::default()
                .with_seed(seed)
                .with_channel(channel)
                .with_trace(TraceConfig::full());
            let mut engine: Engine<DaProcess> = Engine::new(config, net.into_processes());
            for (level, pid) in pubs.into_iter().enumerate() {
                engine.process_mut(pid).publish(format!("event-{level}"));
            }
            engine.run_until_quiescent(192);
            let parasites = engine.counters().get("da.parasite");
            let trace = engine.trace_log().expect("tracing was enabled");
            (delivered_sets(&engine.into_processes()), parasites, trace)
        }
    }
}

/// One publication per level over `ticks` fixed rounds/ticks (no
/// quiescence cut-off, so the churn horizon is identical on both
/// substrates) under a failure model. Returns per-process delivered
/// sets plus the parasite count.
fn run_churned(
    seed: u64,
    channel: ChannelConfig,
    failure: &FailureModel,
    ticks: u64,
    live: Option<RuntimeConfig>,
) -> (Vec<Vec<EventId>>, u64, TraceLog) {
    let net = StaticNetwork::linear(&PROP_SIZES, pinned_params(), seed).expect("valid topology");
    let pubs = publishers(&net);
    match live {
        Some(config) => {
            let mut rt = Runtime::spawn(
                config
                    .with_seed(seed)
                    .with_channel(channel)
                    .with_failures(failure.clone())
                    .with_trace(TraceConfig::full()),
                net.into_processes(),
            );
            for (level, pid) in pubs.into_iter().enumerate() {
                rt.with_process_mut(pid, move |p| p.publish(format!("event-{level}")));
            }
            rt.run_ticks(ticks);
            let out = rt.shutdown();
            (
                delivered_sets(&out.processes),
                out.counters.get("da.parasite"),
                out.trace.expect("tracing was enabled"),
            )
        }
        None => {
            let config = SimConfig::default()
                .with_seed(seed)
                .with_channel(channel)
                .with_failures(failure.clone())
                .with_trace(TraceConfig::full());
            let mut engine: Engine<DaProcess> = Engine::new(config, net.into_processes());
            for (level, pid) in pubs.into_iter().enumerate() {
                engine.process_mut(pid).publish(format!("event-{level}"));
            }
            engine.run_rounds(ticks);
            let parasites = engine.counters().get("da.parasite");
            let trace = engine.trace_log().expect("tracing was enabled");
            (delivered_sets(&engine.into_processes()), parasites, trace)
        }
    }
}

/// Which processes stay alive for the whole horizon under the (shared)
/// churn plan — computed by replaying the plan's stateless transitions
/// (`FailurePlan::step_alive`), which is exactly what both substrates
/// execute.
fn never_crashed(seed: u64, population: usize, ticks: u64, failure: &FailureModel) -> Vec<bool> {
    let plan = failure.materialize(population, seed);
    (0..population)
        .map(|i| {
            let pid = ProcessId::from_index(i);
            let mut alive = !plan.is_initially_crashed(pid);
            let mut always = alive;
            for t in 0..ticks {
                alive = plan.step_alive(pid, t, alive);
                always &= alive;
            }
            always
        })
        .collect()
}

proptest! {
    // Each case is two full multi-substrate runs; 12 cases keep the
    // sweep well under a second while covering the workers × max_lag ×
    // latency grid several times over.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite requirement: delivered-event-set parity between the
    /// barrier-free runtime and the simulator across pool widths, lag
    /// windows, and lossy channels. The channel loses 10% of sends and
    /// may hold survivors for several ticks (which is what opens a real
    /// worker-drift window at `max_lag > 1`); the pinned-high trade-off
    /// knobs make gossip effectively atomic despite the loss, so both
    /// substrates must still deliver every event to its exact audience
    /// — byte-for-byte equal delivered sets.
    #[test]
    fn barrier_free_runtime_matches_simulator_under_loss(
        seed in 1u64..100_000,
        workers in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        max_lag in prop_oneof![Just(1u64), Just(2), Just(4)],
        min_latency in 1u64..=3,
    ) {
        let channel = ChannelConfig::reliable()
            .with_success_probability(0.9)
            .with_latency(Latency::Fixed(min_latency));
        let (sim_sets, sim_parasites, sim_trace) = run_lossy(seed, channel, None);
        let live_config = RuntimeConfig::default()
            .with_workers(workers)
            .with_max_lag(max_lag);
        let (live_sets, live_parasites, live_trace) = run_lossy(seed, channel, Some(live_config));

        prop_assert_eq!(sim_parasites, 0, "simulator saw a parasite");
        prop_assert_eq!(live_parasites, 0, "live runtime saw a parasite");
        prop_assert_eq!(sim_sets.len(), live_sets.len());
        let mismatched: Vec<usize> = sim_sets
            .iter()
            .zip(&live_sets)
            .enumerate()
            .filter_map(|(pid, (sim, live))| (sim != live).then_some(pid))
            .collect();
        prop_assert!(
            mismatched.is_empty(),
            "processes {:?} delivered different event sets \
             (workers={}, max_lag={}, latency={}); {}",
            mismatched, workers, max_lag, min_latency,
            describe_divergence(&sim_trace, &live_trace)
        );
    }
}

proptest! {
    // Each case is again two full runs; 8 cases cover the churn ×
    // loss × lag grid the tentpole names while keeping the suite fast.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite requirement: delivered-set parity under **combined
    /// churn × 10% loss × `workers ∈ {1, 2, 4}` × `max_lag ∈ {1, 4}`**
    /// — the slab `ProcessStore` stripes differently at every worker
    /// count, so this sweep pins storage layout out of the delivered
    /// sets. Both substrates
    /// materialise the identical `FailurePlan` from the shared seed, so
    /// the crash/recovery schedule is the same tick-for-tick; processes
    /// that stay alive for the whole horizon must then deliver
    /// byte-for-byte equal event sets (the pinned-high knobs make gossip
    /// effectively atomic for the surviving cohort despite the loss).
    /// Processes that spent time crashed are excluded from the
    /// comparison: their receipt windows legitimately differ with the
    /// substrates' differing channel-draw sequences.
    #[test]
    fn churned_runtime_matches_simulator_for_surviving_cohort(
        seed in 1u64..100_000,
        workers in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        max_lag in prop_oneof![Just(1u64), Just(4)],
    ) {
        // 64 ticks: ample for dissemination (the quiescence budget other
        // suites use) while P(never crashed) = 0.99^64 ≈ 0.53 keeps the
        // surviving cohort large.
        const TICKS: u64 = 64;
        let channel = ChannelConfig::reliable()
            .with_success_probability(0.9)
            .with_latency(Latency::Fixed(2));
        let failure = FailureModel::Churn {
            crash_probability: 0.01,
            recover_probability: 0.3,
        };
        let (sim_sets, sim_parasites, sim_trace) = run_churned(seed, channel, &failure, TICKS, None);
        let live_config = RuntimeConfig::default()
            .with_workers(workers)
            .with_max_lag(max_lag);
        let (live_sets, live_parasites, live_trace) =
            run_churned(seed, channel, &failure, TICKS, Some(live_config));

        prop_assert_eq!(sim_parasites, 0, "simulator saw a parasite");
        prop_assert_eq!(live_parasites, 0, "live runtime saw a parasite");
        prop_assert_eq!(sim_sets.len(), live_sets.len());
        let population: usize = PROP_SIZES.iter().sum();
        let survivors = never_crashed(seed, population, TICKS, &failure);
        let surviving = survivors.iter().filter(|&&s| s).count();
        prop_assert!(surviving * 5 > population, "churn left too few survivors");
        let mismatched: Vec<usize> = sim_sets
            .iter()
            .zip(&live_sets)
            .enumerate()
            .filter_map(|(pid, (sim, live))| {
                (survivors[pid] && sim != live).then_some(pid)
            })
            .collect();
        prop_assert!(
            mismatched.is_empty(),
            "surviving processes {:?} delivered different event sets \
             (workers={}, max_lag={}); {}",
            mismatched, workers, max_lag,
            describe_divergence(&sim_trace, &live_trace)
        );
    }
}
