//! Determinism across the whole stack (DESIGN.md invariant 5): identical
//! seeds produce bit-identical metrics; different seeds diverge.

use da_baselines::{build_broadcast_network, InterestMap};
use da_membership::FanoutRule;
use da_simnet::{ChannelConfig, Engine, FailureModel, ProcessId, SimConfig};
use damulticast::{DynamicNetwork, ParamMap, StaticNetwork};

fn static_fingerprint(seed: u64) -> Vec<(String, u64)> {
    let net = StaticNetwork::linear(&[5, 20, 60], ParamMap::default(), seed).unwrap();
    let groups = net.groups().to_vec();
    let sim = SimConfig::default()
        .with_seed(seed)
        .with_channel(ChannelConfig::paper_default())
        .with_failures(FailureModel::Stillborn {
            alive_fraction: 0.8,
        });
    let mut engine = Engine::new(sim, net.into_processes());
    if let Some(&p) = groups[2]
        .members
        .iter()
        .find(|&&p| engine.status(p).is_alive())
    {
        engine.process_mut(p).publish("det");
    }
    engine.run_until_quiescent(64);
    engine
        .counters()
        .iter()
        .map(|(name, v)| (name.to_owned(), v))
        .collect()
}

#[test]
fn static_stack_deterministic() {
    assert_eq!(static_fingerprint(77), static_fingerprint(77));
}

#[test]
fn static_stack_seed_sensitive() {
    assert_ne!(static_fingerprint(77), static_fingerprint(78));
}

fn dynamic_fingerprint(seed: u64) -> Vec<(String, u64)> {
    let net = DynamicNetwork::linear(&[5, 25], ParamMap::default(), 3, 4, seed).unwrap();
    let mut engine = Engine::new(SimConfig::default().with_seed(seed), net.into_processes());
    engine.run_rounds(40);
    engine.process_mut(ProcessId(15)).publish("det");
    engine.run_rounds(20);
    engine
        .counters()
        .iter()
        .map(|(name, v)| (name.to_owned(), v))
        .collect()
}

#[test]
fn dynamic_stack_deterministic() {
    assert_eq!(dynamic_fingerprint(99), dynamic_fingerprint(99));
}

fn baseline_fingerprint(seed: u64) -> (u64, u64, u64, u64) {
    let interests = InterestMap::linear(&[4, 12, 36]);
    let procs =
        build_broadcast_network(&interests, 3.0, FanoutRule::LnPlusC { c: 5.0 }, seed).unwrap();
    let sim = SimConfig::default()
        .with_seed(seed)
        .with_channel(ChannelConfig::paper_default());
    let mut engine = Engine::new(sim, procs);
    engine.process_mut(ProcessId(0)).publish("det");
    engine.run_until_quiescent(64);
    (
        engine.counters().get("bc.sent"),
        engine.counters().get("bc.delivered"),
        engine.counters().get("bc.parasite"),
        // Aggregate counts can coincide across seeds (every process relays
        // exactly once when fully covered); channel-drop counts cannot.
        engine.counters().get("sim.dropped_channel"),
    )
}

#[test]
fn baselines_deterministic() {
    assert_eq!(baseline_fingerprint(3), baseline_fingerprint(3));
    assert_ne!(baseline_fingerprint(3), baseline_fingerprint(4));
}

/// The harness trial runner is deterministic end to end despite running
/// trials on multiple threads.
#[test]
fn harness_sweeps_deterministic() {
    use da_harness::runner::sweep;
    use da_harness::scenario::{run_scenario_metrics, FailureKind, ScenarioConfig};

    let run = || {
        sweep(&[0.5, 1.0], 6, 123, |alive, seed| {
            let config = ScenarioConfig {
                group_sizes: vec![4, 16],
                publish_level: 1,
                ..ScenarioConfig::small()
            }
            .with_failure(FailureKind::Stillborn, alive);
            run_scenario_metrics(&config, seed)
        })
    };
    let a = run();
    let b = run();
    for ((xa, sa), (xb, sb)) in a.iter().zip(b.iter()) {
        assert_eq!(xa, xb);
        for (ma, mb) in sa.iter().zip(sb.iter()) {
            assert_eq!(
                ma.mean.to_bits(),
                mb.mean.to_bits(),
                "non-deterministic mean"
            );
            assert_eq!(ma.std_dev.to_bits(), mb.std_dev.to_bits());
        }
    }
}
