//! Model-checker counterexamples committed as regression tests.
//!
//! Every counterexample the bounded checker (`da_simnet::mc`) finds is
//! an ordinary scripted `FaultConfig` — drops by `(tick, edge,
//! occurrence)`, crashes by `(round, pid)` — so it replays with zero
//! randomness on **both substrates**. This suite commits two kinds of
//! artifact:
//!
//! * hand-pinned scripted configs (the "committed counterexamples"):
//!   deterministic replays that must keep producing the violation the
//!   checker once diagnosed, on the simulator and the live runtime
//!   alike;
//! * freshly-explored counterexamples: the checker re-finds the
//!   violation today, and its `to_fault_config` replay reproduces it
//!   on both substrates — proving the whole find → script → replay
//!   pipeline, including the live router's per-tick occurrence
//!   tracking for scripted drops.
//!
//! The mutation tests double as the checker's own soundness check: the
//! shipped protocol verifies exhaustively at bounds where the
//! `Mutation::SkipDedup` variant is caught.

use da_harness::experiments::mc::{
    base_config, published_event, single_group, single_group_processes, verify_dissemination,
    FullDelivery, NoDuplicateDelivery, NoParasite,
};
use da_runtime::{Runtime, RuntimeConfig};
use da_simnet::mc::{Explorer, Invariant, McConfig, OrderingMode};
use da_simnet::{ChannelConfig, Engine, FailureModel, Fate, FaultConfig, Latency, ProcessId};
use damulticast::{DaProcess, EventId, Mutation};

/// Horizon for every replay: past quiescence of all committed branches.
const REPLAY_TICKS: u64 = 8;

fn duplicate_delivery(p: &DaProcess) -> bool {
    let mut ids: Vec<EventId> = p.delivered().iter().map(|e| e.id()).collect();
    let total = ids.len();
    ids.sort_unstable_by_key(|id| (id.publisher.0, id.sequence));
    ids.dedup();
    ids.len() != total
}

/// Replays `faults` over the single-group scenario on the simulator
/// and returns the end-state processes.
fn replay_sim(faults: &FaultConfig, mutation: Mutation) -> Vec<DaProcess> {
    let config = base_config().with_faults(faults.clone());
    let mut engine: Engine<DaProcess> = single_group(3, mutation)(config);
    engine.run_rounds(REPLAY_TICKS);
    engine.into_processes()
}

/// Replays `faults` over the identical population on the live
/// worker-pool runtime and returns the end-state processes.
fn replay_live(faults: &FaultConfig, mutation: Mutation) -> Vec<DaProcess> {
    let config = RuntimeConfig::default()
        .with_seed(7)
        .with_workers(2)
        .with_faults(faults.clone());
    let mut rt = Runtime::spawn(config, single_group_processes(3, mutation));
    rt.with_process_mut(ProcessId(0), |p| {
        p.publish("mc-probe");
    });
    rt.run_ticks(REPLAY_TICKS);
    rt.shutdown().processes
}

/// The committed crash counterexample: killing the publisher at round
/// 0 — before its start hook disseminates the pending publication —
/// strands the event forever. Diagnosed by the checker's crash-point
/// exploration against the full-delivery invariant; pinned here as a
/// plain scripted config.
fn committed_crash_faults() -> FaultConfig {
    FaultConfig::new()
        .with_channel(ChannelConfig::reliable().with_latency(Latency::Fixed(1)))
        .with_failures(FailureModel::Schedule(vec![Fate {
            round: 0,
            pid: ProcessId(0),
            crash: true,
        }]))
}

#[test]
fn committed_crash_counterexample_replays_on_both_substrates() {
    let faults = committed_crash_faults();
    let id = published_event();
    for (name, procs) in [
        ("sim", replay_sim(&faults, Mutation::None)),
        ("live", replay_live(&faults, Mutation::None)),
    ] {
        assert!(
            procs.iter().all(|p| !p.has_delivered(id)),
            "{name}: the publisher died before disseminating; nobody may deliver"
        );
        // The violated property is full delivery — safety must hold.
        assert!(procs.iter().all(|p| p.parasite_count() == 0), "{name}");
        assert!(procs.iter().all(|p| !duplicate_delivery(p)), "{name}");
    }
}

/// The checker still finds the committed crash shape today, and its
/// scripted replay reproduces on both substrates.
#[test]
fn explored_crash_counterexample_replays_on_both_substrates() {
    let report = Explorer::new(McConfig {
        max_rounds: 6,
        crash_budget: 1,
        ordering: OrderingMode::Fixed,
        ..McConfig::default()
    })
    .with_invariant(FullDelivery)
    .explore(&base_config(), single_group(3, Mutation::None));
    let ce = report
        .violation
        .expect("one crash point must break full delivery");
    assert_eq!(ce.invariant, "full-delivery");
    assert_eq!(ce.fates.len(), 1, "a single injected fate: {ce:?}");
    assert!(ce.fates[0].crash);
    assert!(ce.drops.is_empty());
    assert!(ce.fifo_replayable, "crashes do not depend on ordering");

    let faults = ce.to_fault_config(&base_config().faults);
    let crashed = ce.fates[0].pid;
    let id = published_event();
    for (name, procs) in [
        ("sim", replay_sim(&faults, Mutation::None)),
        ("live", replay_live(&faults, Mutation::None)),
    ] {
        assert!(
            !procs[crashed.index()].has_delivered(id),
            "{name}: the crashed process must miss the publication"
        );
    }
}

/// The checker's drop exploration severs a process, and the scripted
/// drops replay draw-free on both substrates — including the live
/// router's per-tick occurrence tracking.
#[test]
fn explored_drop_counterexample_replays_on_both_substrates() {
    let report = Explorer::new(McConfig {
        max_rounds: 8,
        drop_budget: 3,
        ordering: OrderingMode::Fixed,
        ..McConfig::default()
    })
    .with_invariant(FullDelivery)
    .explore(&base_config(), single_group(3, Mutation::None));
    let ce = report
        .violation
        .expect("three drops can sever one process of three");
    assert_eq!(ce.invariant, "full-delivery");
    assert!(!ce.drops.is_empty());
    assert!(ce.fates.is_empty());
    assert!(ce.fifo_replayable, "drops replay as a scripted FaultConfig");

    let faults = ce.to_fault_config(&base_config().faults);
    let id = published_event();
    let sim = replay_sim(&faults, Mutation::None);
    assert!(
        sim.iter().any(|p| !p.has_delivered(id)),
        "sim replay must reproduce the missed delivery"
    );
    let live = replay_live(&faults, Mutation::None);
    assert!(
        live.iter().any(|p| !p.has_delivered(id)),
        "live replay must reproduce the missed delivery"
    );
    // The same processes miss out on both substrates: scripted drops
    // are deterministic down to the per-edge occurrence index.
    let missed =
        |procs: &[DaProcess]| -> Vec<bool> { procs.iter().map(|p| !p.has_delivered(id)).collect() };
    assert_eq!(missed(&sim), missed(&live));
}

/// Satellite 4, cross-substrate: the shipped protocol verifies
/// exhaustively at bounds where the `SkipDedup` mutant yields a
/// counterexample, and the mutant's violation — a gossip echo needing
/// no injected faults at all — reproduces under the scripted replay on
/// both substrates.
#[test]
fn mutant_counterexample_replays_on_both_substrates() {
    let bounds = McConfig {
        max_rounds: 6,
        ordering: OrderingMode::Fixed,
        ..McConfig::default()
    };
    let clean = verify_dissemination(3, bounds, Mutation::None);
    assert!(
        clean.verified(),
        "shipped protocol must verify exhaustively at the mutant's bounds"
    );

    let mutant = verify_dissemination(3, bounds, Mutation::SkipDedup);
    let ce = mutant
        .violation
        .expect("the SkipDedup mutant must be caught within the depth bound");
    assert_eq!(ce.invariant, "no-duplicate-delivery");
    assert!(ce.fifo_replayable);
    assert!(
        ce.drops.is_empty() && ce.fates.is_empty(),
        "the echo needs no injected faults: {ce:?}"
    );
    assert!(!ce.trace.is_empty(), "the replay carries its trace stream");

    let faults = ce.to_fault_config(&base_config().faults);
    for (name, procs) in [
        ("sim", replay_sim(&faults, Mutation::SkipDedup)),
        ("live", replay_live(&faults, Mutation::SkipDedup)),
    ] {
        assert!(
            procs.iter().any(duplicate_delivery),
            "{name}: the mutant's duplicate delivery must reproduce"
        );
    }
}

/// The invariants themselves accept a healthy fault-free run end to
/// end (guards against an invariant that fails vacuously and would
/// make every exploration "find" a bug).
#[test]
fn invariants_accept_a_clean_run() {
    let mut engine = single_group(3, Mutation::None)(base_config());
    engine.run_rounds(REPLAY_TICKS);
    assert!(NoParasite.check(&engine).is_ok());
    assert!(NoDuplicateDelivery.check(&engine).is_ok());
    assert!(FullDelivery.check_quiescent(&engine).is_ok());
}
