//! Chaos testing under continuous churn: the full dynamic protocol stack
//! survives processes crashing and recovering every round, keeps its
//! invariants, and still delivers.

use da_runtime::{Runtime, RuntimeConfig};
use da_simnet::{Engine, FailureModel, ProcessId, SimConfig};
use damulticast::{DynamicNetwork, EventId, ParamMap, TopicParams};

fn churn_engine(
    crash: f64,
    recover: f64,
    seed: u64,
) -> (Engine<damulticast::DaProcess>, Vec<Vec<ProcessId>>) {
    let params = TopicParams {
        maintenance_period: 5,
        ping_timeout: 2,
        g: 15.0,
        a: 3.0,
        ..TopicParams::paper_default()
    };
    let net = DynamicNetwork::linear(&[8, 40], ParamMap::uniform(params), 3, 4, seed).unwrap();
    let members: Vec<Vec<ProcessId>> = net.groups().iter().map(|g| g.members.clone()).collect();
    let sim = SimConfig::default()
        .with_seed(seed)
        .with_failures(FailureModel::Churn {
            crash_probability: crash,
            recover_probability: recover,
        });
    (Engine::new(sim, net.into_processes()), members)
}

/// Gentle churn (1% crash, 3% recover → 75% stationary aliveness): the
/// stack keeps delivering the bulk of publications to surviving members.
#[test]
fn delivers_through_gentle_churn() {
    let (mut engine, members) = churn_engine(0.01, 0.03, 7);
    engine.run_rounds(60);
    let mut ids = Vec::new();
    for i in 0..6 {
        if let Some(&p) = members[1]
            .iter()
            .skip(i * 5)
            .find(|&&p| engine.status(p).is_alive())
        {
            ids.push(engine.process_mut(p).publish(format!("evt {i}")));
        }
        engine.run_rounds(8);
    }
    engine.run_rounds(30);

    assert!(!ids.is_empty());
    let alive_leaves: Vec<ProcessId> = members[1]
        .iter()
        .copied()
        .filter(|&p| engine.status(p).is_alive())
        .collect();
    assert!(!alive_leaves.is_empty());
    let mut total = 0.0;
    for &id in &ids {
        total += alive_leaves
            .iter()
            .filter(|&&p| engine.process(p).has_delivered(id))
            .count() as f64
            / alive_leaves.len() as f64;
    }
    let mean = total / ids.len() as f64;
    assert!(mean > 0.5, "mean delivery among survivors {mean}");
}

/// Invariants survive brutal churn (10% crash / 10% recover): no parasite
/// deliveries, no duplicates, crashed processes silent.
#[test]
fn invariants_survive_brutal_churn() {
    let (mut engine, members) = churn_engine(0.1, 0.1, 11);
    engine.run_rounds(40);
    for i in 0..8 {
        if let Some(&p) = members[1]
            .iter()
            .skip(i * 3)
            .find(|&&p| engine.status(p).is_alive())
        {
            engine.process_mut(p).publish(format!("chaos {i}"));
        }
        engine.run_rounds(5);
    }
    engine.run_rounds(40);

    assert_eq!(engine.counters().get("da.parasite"), 0);
    for (pid, p) in engine.processes() {
        assert_eq!(p.parasite_count(), 0, "{pid} parasite");
        let mut ids: Vec<EventId> = p.delivered().iter().map(|e| e.id()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "{pid} duplicate delivery");
    }
    // The simulation saw genuine churn in both directions.
    assert!(engine.counters().get("sim.churn_crashes") > 10);
    assert!(engine.counters().get("sim.churn_recoveries") > 10);
}

/// Churn runs are deterministic end to end.
#[test]
fn churn_chaos_deterministic() {
    let fingerprint = |seed: u64| {
        let (mut engine, members) = churn_engine(0.05, 0.1, seed);
        engine.run_rounds(50);
        if let Some(&p) = members[1].iter().find(|&&p| engine.status(p).is_alive()) {
            engine.process_mut(p).publish("det");
        }
        engine.run_rounds(30);
        (
            engine.counters().get("sim.sent"),
            engine.counters().get("sim.churn_crashes"),
            engine.counters().get("sim.churn_recoveries"),
            engine.alive().len(),
        )
    };
    assert_eq!(fingerprint(3), fingerprint(3));
    assert_ne!(fingerprint(3), fingerprint(4));
}

/// The same chaos scenario on the **live runtime**: the full dynamic
/// stack (bootstrap + membership + maintenance) executes on the worker
/// pool while the shared failure plan crashes and recovers processes
/// mid-flight. Invariants must hold exactly as under the simulator —
/// zero parasites, no duplicate deliveries — and mid-flight crash
/// accounting must be exact: every envelope ends in exactly one of
/// delivered / `rt.dropped_channel` / `rt.dropped_crashed` /
/// `rt.dropped_shutdown`.
#[test]
fn live_runtime_survives_churn_chaos() {
    let params = TopicParams {
        maintenance_period: 5,
        ping_timeout: 2,
        g: 15.0,
        a: 3.0,
        ..TopicParams::paper_default()
    };
    let failure = FailureModel::Churn {
        crash_probability: 0.02,
        recover_probability: 0.2,
    };
    let net = DynamicNetwork::linear(&[8, 40], ParamMap::uniform(params), 3, 4, 7).unwrap();
    let members: Vec<Vec<ProcessId>> = net.groups().iter().map(|g| g.members.clone()).collect();

    // Replay the plan's aliveness trajectory (the stateless draws the
    // runtime will make) so publishers can be picked alive at their
    // publish tick — the live analogue of checking `engine.status`.
    let plan = failure.materialize(48, 7);
    let alive_at = |pid: ProcessId, at_tick: u64| plan.alive_at(pid, at_tick);

    let config = RuntimeConfig::default()
        .with_workers(3)
        .with_seed(7)
        .with_failures(failure);
    let mut rt = Runtime::spawn(config, net.into_processes());
    rt.run_ticks(40);
    let mut ids = Vec::new();
    let mut tick = 40;
    for i in 0..6 {
        if let Some(&p) = members[1].iter().skip(i * 5).find(|&&p| alive_at(p, tick)) {
            ids.push(rt.with_process_mut(p, move |proc| proc.publish(format!("live evt {i}"))));
        }
        rt.run_ticks(8);
        tick += 8;
    }
    rt.run_ticks(30);
    let out = rt.shutdown();

    // Invariants, live: no parasite ever, no double delivery.
    assert_eq!(out.counters.get("da.parasite"), 0);
    for (pid, p) in out.processes.iter().enumerate() {
        assert_eq!(p.parasite_count(), 0, "p{pid} parasite");
        let mut got: Vec<EventId> = p.delivered().iter().map(|e| e.id()).collect();
        let before = got.len();
        got.sort();
        got.dedup();
        assert_eq!(got.len(), before, "p{pid} duplicate delivery");
    }

    // The run saw genuine churn in both directions.
    assert!(out.counters.get("rt.churn_crashes") > 10);
    assert!(out.counters.get("rt.churn_recoveries") > 10);

    // Exact mid-flight crash accounting.
    let sent = out.counters.get("rt.sent");
    let accounted = out.counters.get("rt.delivered")
        + out.counters.get("rt.dropped_channel")
        + out.counters.get("rt.dropped_crashed")
        + out.counters.get("rt.dropped_shutdown")
        + out.counters.get("rt.dropped_closed");
    assert_eq!(accounted, sent, "every envelope in exactly one bucket");
    assert!(
        out.counters.get("rt.dropped_crashed") > 0,
        "chaos must exercise the crashed-inbox drain"
    );

    // Delivery still works through the chaos: most publications blanket
    // the surviving leaves.
    assert!(!ids.is_empty());
    let alive_leaves: Vec<ProcessId> = members[1]
        .iter()
        .copied()
        .filter(|&p| out.statuses[p.index()].is_alive())
        .collect();
    assert!(!alive_leaves.is_empty());
    let mut total = 0.0;
    for &id in &ids {
        total += alive_leaves
            .iter()
            .filter(|&&p| out.processes[p.index()].has_delivered(id))
            .count() as f64
            / alive_leaves.len() as f64;
    }
    let mean = total / ids.len() as f64;
    assert!(mean > 0.5, "mean live delivery among survivors {mean}");
}

/// A process that crashes mid-dissemination and later recovers can still
/// receive *subsequent* events (its tables may be stale but maintenance
/// repairs them).
#[test]
fn recovered_processes_rejoin_the_flow() {
    let (mut engine, members) = churn_engine(0.02, 0.2, 13);
    engine.run_rounds(120); // long enough that most processes cycled
    assert!(
        engine.counters().get("sim.churn_recoveries") > 20,
        "the scenario must actually exercise recovery"
    );
    // Publish after the churn history; recovered processes are part of
    // the audience.
    let publisher = members[1]
        .iter()
        .copied()
        .find(|&p| engine.status(p).is_alive())
        .expect("someone is alive at 90% stationary aliveness");
    let id = engine.process_mut(publisher).publish("after recovery");
    engine.run_rounds(30);
    let alive: Vec<ProcessId> = members[1]
        .iter()
        .copied()
        .filter(|&p| engine.status(p).is_alive())
        .collect();
    let got = alive
        .iter()
        .filter(|&&p| engine.process(p).has_delivered(id))
        .count();
    assert!(
        got * 2 > alive.len(),
        "majority of (partly recovered) survivors deliver: {got}/{}",
        alive.len()
    );
}
