//! Cross-substrate equivalence under **network partitions**: the same
//! protocol instances, cut in two by a `PartitionSchedule` and healed
//! mid-run, must deliver the same event set on the simulator and the
//! live runtime — for the cohort that never left the mainland.
//!
//! The partition severed-check is a pure function of the endpoints'
//! node placement and the send tick (it consumes no randomness), so one
//! seed severs the identical sends on both substrates. Mainland
//! processes — everyone outside the cut-off island — keep a saturated
//! gossip overlay throughout (the pinned-high knobs make gossip
//! effectively atomic despite 10% loss and the severed cross-island
//! fraction), so their delivered sets must be byte-for-byte equal.
//! Island processes are excluded: whether the wave re-infects them
//! around a heal is timing-dependent, and the substrates' channel-draw
//! sequences legitimately differ.

use da_runtime::{Runtime, RuntimeConfig};
use da_simnet::{
    ChannelConfig, Engine, FaultConfig, Latency, NodeId, Partition, PartitionSchedule, ProcessId,
    SimConfig, Topology,
};
use damulticast::{DaProcess, EventId, ParamMap, StaticNetwork, TopicParams};
use proptest::prelude::*;

/// The smaller paper chain used by the parity property sweeps.
const PROP_SIZES: [usize; 3] = [4, 10, 40];

/// Leaf-group members carved off onto the island node.
const ISLAND: usize = 8;

/// Fixed horizon (no quiescence cut-off) so the tick-scripted cut and
/// heal land identically on both substrates.
const TICKS: u64 = 96;

fn pinned_params() -> ParamMap {
    ParamMap::uniform(
        TopicParams::paper_default()
            .with_g(20.0)
            .with_a(3.0)
            .with_fanout(da_membership::FanoutRule::LnPlusC { c: 12.0 }),
    )
}

/// The two-node fault config: the last [`ISLAND`] leaf members on node
/// `"island"`, a 10%-loss two-tick channel, and one cut/heal cycle.
fn partition_faults(net: &StaticNetwork, cut: u64, heal: u64) -> FaultConfig {
    let leaf = net.groups().last().expect("leaf group");
    let mut topology = Topology::with_nodes(["mainland", "island"]);
    for &pid in &leaf.members[leaf.members.len() - ISLAND..] {
        topology = topology.with_placement(pid, NodeId(1));
    }
    FaultConfig::new()
        .with_channel(
            ChannelConfig::reliable()
                .with_success_probability(0.9)
                .with_latency(Latency::Fixed(2)),
        )
        .with_topology(topology)
        .with_partitions(PartitionSchedule::none().with_partition(
            Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], cut).heal_at(heal),
        ))
}

/// Sorted delivered-event ids per process — the comparison key.
fn delivered_sets(procs: &[DaProcess]) -> Vec<Vec<EventId>> {
    procs
        .iter()
        .map(|p| {
            let mut ids: Vec<EventId> = p.delivered().iter().map(|e| e.id()).collect();
            ids.sort();
            ids
        })
        .collect()
}

/// One publication per level (all three publishers are mainland — the
/// island holds only the leaf group's tail) over `TICKS` fixed ticks
/// with one cut/heal cycle. Returns per-process delivered sets plus the
/// parasite count.
fn run_partitioned(
    seed: u64,
    cut: u64,
    heal: u64,
    live: Option<RuntimeConfig>,
) -> (Vec<Vec<EventId>>, u64) {
    let net = StaticNetwork::linear(&PROP_SIZES, pinned_params(), seed).expect("valid topology");
    let pubs: Vec<ProcessId> = net.groups().iter().map(|g| g.members[0]).collect();
    let faults = partition_faults(&net, cut, heal);
    match live {
        Some(config) => {
            let mut rt = Runtime::spawn(
                config.with_seed(seed).with_faults(faults),
                net.into_processes(),
            );
            for (level, pid) in pubs.into_iter().enumerate() {
                rt.with_process_mut(pid, move |p| p.publish(format!("event-{level}")));
            }
            rt.run_ticks(TICKS);
            let out = rt.shutdown();
            (
                delivered_sets(&out.processes),
                out.counters.get("da.parasite"),
            )
        }
        None => {
            let config = SimConfig::default().with_seed(seed).with_faults(faults);
            let mut engine: Engine<DaProcess> = Engine::new(config, net.into_processes());
            for (level, pid) in pubs.into_iter().enumerate() {
                engine.process_mut(pid).publish(format!("event-{level}"));
            }
            engine.run_rounds(TICKS);
            let parasites = engine.counters().get("da.parasite");
            (delivered_sets(&engine.into_processes()), parasites)
        }
    }
}

proptest! {
    // Each case is two full multi-substrate runs; 8 cases cover the
    // workers × max_lag × cut/heal grid while keeping the suite fast.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite requirement: delivered-set parity across a partition
    /// cut-and-heal cycle. The cut lands while the publication waves
    /// are in flight and heals anywhere from mid-wave to long after;
    /// whatever the cycle, the never-partitioned mainland cohort must
    /// deliver byte-for-byte equal event sets on both substrates, with
    /// zero parasites.
    #[test]
    fn partitioned_runtime_matches_simulator_for_mainland_cohort(
        seed in 1u64..100_000,
        workers in prop_oneof![Just(2usize), Just(4)],
        max_lag in prop_oneof![Just(1u64), Just(4)],
        cut in 0u64..=2,
        heal_delta in 2u64..=24,
    ) {
        let heal = cut + heal_delta;
        let (sim_sets, sim_parasites) = run_partitioned(seed, cut, heal, None);
        let live_config = RuntimeConfig::default()
            .with_workers(workers)
            .with_max_lag(max_lag);
        let (live_sets, live_parasites) =
            run_partitioned(seed, cut, heal, Some(live_config));

        prop_assert_eq!(sim_parasites, 0, "simulator saw a parasite");
        prop_assert_eq!(live_parasites, 0, "live runtime saw a parasite");
        prop_assert_eq!(sim_sets.len(), live_sets.len());
        let population: usize = PROP_SIZES.iter().sum();
        let mainland = population - ISLAND;
        for (pid, (sim, live)) in sim_sets.iter().zip(&live_sets).enumerate().take(mainland) {
            prop_assert_eq!(
                sim, live,
                "mainland process {} delivered different event sets \
                 (workers={}, max_lag={}, cut={}, heal={})",
                pid, workers, max_lag, cut, heal
            );
        }
    }
}
