//! Cross-algorithm parity: the four algorithms on one topology must agree
//! on *who should receive* an event, and differ exactly where the paper
//! says they differ (parasites, memory, message count).

use da_baselines::{
    build_broadcast_network, build_hierarchical_network, build_multicast_network, InterestMap,
};
use da_membership::FanoutRule;
use da_simnet::{Engine, ProcessId, SimConfig};
use damulticast::{ParamMap, StaticNetwork, TopicParams};

const SIZES: [usize; 3] = [4, 12, 36];
const FANOUT: FanoutRule = FanoutRule::LnPlusC { c: 5.0 };

/// Deliveries per process index for a leaf publication, per algorithm.
fn delivery_bitmaps(seed: u64) -> [Vec<bool>; 4] {
    let n: usize = SIZES.iter().sum();
    let interests = InterestMap::linear(&SIZES);
    let leaf_publisher = ProcessId::from_index(n - 1);

    // daMulticast.
    let params = ParamMap::uniform(
        TopicParams::paper_default()
            .with_fanout(FANOUT)
            .with_g(12.0)
            .with_a(3.0),
    );
    let net = StaticNetwork::linear(&SIZES, params, seed).unwrap();
    let mut engine = Engine::new(SimConfig::default().with_seed(seed), net.into_processes());
    let id = engine.process_mut(leaf_publisher).publish("parity");
    engine.run_until_quiescent(96);
    let da: Vec<bool> = (0..n)
        .map(|i| engine.process(ProcessId::from_index(i)).has_delivered(id))
        .collect();

    // Broadcast.
    let procs = build_broadcast_network(&interests, 3.0, FANOUT, seed).unwrap();
    let mut engine = Engine::new(SimConfig::default().with_seed(seed), procs);
    let id = engine.process_mut(leaf_publisher).publish("parity");
    engine.run_until_quiescent(96);
    let bc: Vec<bool> = (0..n)
        .map(|i| {
            engine
                .process(ProcessId::from_index(i))
                .log()
                .has_delivered(id)
        })
        .collect();

    // Multicast.
    let procs = build_multicast_network(&interests, 3.0, FANOUT, seed).unwrap();
    let mut engine = Engine::new(SimConfig::default().with_seed(seed), procs);
    let id = engine.process_mut(leaf_publisher).publish("parity");
    engine.run_until_quiescent(96);
    let mc: Vec<bool> = (0..n)
        .map(|i| {
            engine
                .process(ProcessId::from_index(i))
                .log()
                .has_delivered(id)
        })
        .collect();

    // Hierarchical.
    let procs = build_hierarchical_network(&interests, 4, 3.0, FANOUT, FANOUT, seed).unwrap();
    let mut engine = Engine::new(SimConfig::default().with_seed(seed), procs);
    let id = engine.process_mut(leaf_publisher).publish("parity");
    engine.run_until_quiescent(96);
    let hc: Vec<bool> = (0..n)
        .map(|i| {
            engine
                .process(ProcessId::from_index(i))
                .log()
                .has_delivered(id)
        })
        .collect();

    [da, bc, mc, hc]
}

/// A leaf event interests the whole population: on reliable channels all
/// four algorithms must blanket everyone.
#[test]
fn all_algorithms_cover_the_leaf_audience() {
    let [da, bc, mc, hc] = delivery_bitmaps(41);
    for (name, map) in [("da", &da), ("bc", &bc), ("mc", &mc), ("hc", &hc)] {
        let covered = map.iter().filter(|&&b| b).count();
        assert_eq!(covered, map.len(), "{name} left processes uncovered");
    }
}

/// A root event separates the algorithms: all deliver to the root
/// subscribers only, but broadcast/hierarchical *receive* it everywhere.
#[test]
fn root_event_parasite_profile() {
    let n: usize = SIZES.iter().sum();
    let interests = InterestMap::linear(&SIZES);
    let root_publisher = ProcessId(0);

    let run_counts = |which: &str, seed: u64| -> (u64, u64) {
        match which {
            "bc" => {
                let procs = build_broadcast_network(&interests, 3.0, FANOUT, seed).unwrap();
                let mut e = Engine::new(SimConfig::default().with_seed(seed), procs);
                e.process_mut(root_publisher).publish("root");
                e.run_until_quiescent(96);
                (
                    e.counters().get("bc.delivered"),
                    e.counters().get("bc.parasite"),
                )
            }
            "mc" => {
                let procs = build_multicast_network(&interests, 3.0, FANOUT, seed).unwrap();
                let mut e = Engine::new(SimConfig::default().with_seed(seed), procs);
                e.process_mut(root_publisher).publish("root");
                e.run_until_quiescent(96);
                (
                    e.counters().get("mc.delivered"),
                    e.counters().get("mc.parasite"),
                )
            }
            "hc" => {
                let procs =
                    build_hierarchical_network(&interests, 4, 3.0, FANOUT, FANOUT, seed).unwrap();
                let mut e = Engine::new(SimConfig::default().with_seed(seed), procs);
                e.process_mut(root_publisher).publish("root");
                e.run_until_quiescent(96);
                (
                    e.counters().get("hc.delivered"),
                    e.counters().get("hc.parasite"),
                )
            }
            _ => unreachable!(),
        }
    };

    let (bc_del, bc_par) = run_counts("bc", 42);
    let (mc_del, mc_par) = run_counts("mc", 42);
    let (hc_del, hc_par) = run_counts("hc", 42);

    assert_eq!(
        bc_del, SIZES[0] as u64,
        "broadcast delivers to subscribers only"
    );
    assert_eq!(
        bc_par as usize,
        n - SIZES[0],
        "everyone else receives a parasite"
    );
    assert_eq!(mc_del, SIZES[0] as u64);
    assert_eq!(mc_par, 0, "multicast is parasite-free");
    assert_eq!(hc_del, SIZES[0] as u64);
    assert_eq!(hc_par as usize, n - SIZES[0]);

    // daMulticast.
    let params = ParamMap::uniform(TopicParams::paper_default().with_fanout(FANOUT));
    let net = StaticNetwork::linear(&SIZES, params, 42).unwrap();
    let mut e = Engine::new(SimConfig::default().with_seed(42), net.into_processes());
    e.process_mut(root_publisher).publish("root");
    e.run_until_quiescent(96);
    assert_eq!(e.counters().get("da.parasite"), 0);
    assert_eq!(e.counters().sum_prefix("da.delivered."), SIZES[0] as u64);
}

/// Message-cost ordering for a root publication: interest-scoped
/// algorithms (daMulticast, multicast) cost a small fraction of the
/// interest-oblivious ones (broadcast, hierarchical).
#[test]
fn root_event_message_cost_ordering() {
    let interests = InterestMap::linear(&SIZES);
    let root_publisher = ProcessId(0);

    let params = ParamMap::uniform(TopicParams::paper_default().with_fanout(FANOUT));
    let net = StaticNetwork::linear(&SIZES, params, 43).unwrap();
    let mut e = Engine::new(SimConfig::default().with_seed(43), net.into_processes());
    e.process_mut(root_publisher).publish("cost");
    e.run_until_quiescent(96);
    let da_cost = e.counters().sum_prefix("da.intra.") + e.counters().sum_prefix("da.inter_out.");

    let procs = build_broadcast_network(&interests, 3.0, FANOUT, 43).unwrap();
    let mut e = Engine::new(SimConfig::default().with_seed(43), procs);
    e.process_mut(root_publisher).publish("cost");
    e.run_until_quiescent(96);
    let bc_cost = e.counters().get("bc.sent");

    assert!(
        da_cost * 4 < bc_cost,
        "daMulticast ({da_cost}) should cost a fraction of broadcast ({bc_cost})"
    );
}

/// Memory ordering across algorithms matches Sec. VI-E.2: daMulticast's
/// per-process tables stay below gossip multicast's sum and broadcast's
/// global table (for the leaf majority).
#[test]
fn memory_ordering() {
    let interests = InterestMap::linear(&SIZES);
    let n: usize = SIZES.iter().sum();

    let params = ParamMap::uniform(TopicParams::paper_default().with_fanout(FANOUT));
    let net = StaticNetwork::linear(&SIZES, params, 44).unwrap();
    let da_procs = net.into_processes();
    let da_mean: f64 = da_procs
        .iter()
        .map(|p| p.memory_entries() as f64)
        .sum::<f64>()
        / da_procs.len() as f64;

    let bc_procs = build_broadcast_network(&interests, 3.0, FANOUT, 44).unwrap();
    let bc_mean: f64 = bc_procs
        .iter()
        .map(|p| p.memory_entries() as f64)
        .sum::<f64>()
        / bc_procs.len() as f64;

    let mc_procs = build_multicast_network(&interests, 3.0, FANOUT, 44).unwrap();
    let mc_mean: f64 = mc_procs
        .iter()
        .map(|p| p.memory_entries() as f64)
        .sum::<f64>()
        / mc_procs.len() as f64;

    assert!(
        da_mean < mc_mean,
        "daMulticast mean {da_mean} vs multicast {mc_mean}"
    );
    // The broadcast table covers all n processes; daMulticast's biggest
    // table covers only the leaf group.
    let _ = n;
    assert!(
        da_mean < bc_mean + 3.0,
        "daMulticast {da_mean} should not exceed broadcast {bc_mean} by more than z"
    );
}
