//! # da-bench — shared benchmark fixtures
//!
//! Scenario presets reused by the Criterion benches under `benches/`.
//! Benchmarks run the *same code paths* as the paper-figure harness, at a
//! scale tuned so `cargo bench` completes in minutes: the benches measure
//! the cost of regenerating each figure/table, the harness binaries
//! produce the figures themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use da_harness::scenario::{FailureKind, ScenarioConfig};

/// The bench-scale topology: the paper's three-level chain at one tenth
/// of the population (1/10/100 ≈ 10/100/1000 ÷ 10).
#[must_use]
pub fn bench_sizes() -> Vec<usize> {
    vec![4, 20, 100]
}

/// A bench-scale scenario with the paper's parameters.
#[must_use]
pub fn bench_scenario(failure: FailureKind, alive: f64) -> ScenarioConfig {
    ScenarioConfig {
        group_sizes: bench_sizes(),
        ..da_harness::scenario::ScenarioConfig::paper_default()
    }
    .with_failure(failure, alive)
}
