//! Micro-benchmarks of the substrates: topic-hierarchy operations,
//! partial-view maintenance, dissemination planning, and one engine round
//! — the per-message hot paths behind every figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use da_membership::{FlatMembership, MembershipParams, PartialView};
use da_simnet::{rng_from_seed, ProcessId};
use da_topics::TopicHierarchy;
use damulticast::{plan_dissemination, SuperEntry, SuperTable, TopicParams};
use std::hint::black_box;

fn topics(c: &mut Criterion) {
    let mut group = c.benchmark_group("topics");
    let (h, ids) = TopicHierarchy::linear_chain(8);
    group.bench_function("includes_depth8", |b| {
        b.iter(|| black_box(h.includes(ids[0], ids[7])));
    });
    group.bench_function("ancestors_depth8", |b| {
        b.iter(|| black_box(h.ancestors(ids[7]).count()));
    });
    let mut big = TopicHierarchy::new();
    for i in 0..1000 {
        big.insert(&format!(".a{}.b{}.c{}", i % 10, i % 100, i))
            .unwrap();
    }
    group.bench_function("resolve_in_1000_topics", |b| {
        b.iter(|| black_box(big.resolve(".a5.b55.c555")));
    });
    group.finish();
}

fn membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership");
    let mut rng = rng_from_seed(1);
    let mut view = PartialView::new(ProcessId(0), 28);
    for i in 1..=28u32 {
        view.insert(ProcessId(i), &mut rng);
    }
    group.bench_function("view_sample_8_of_28", |b| {
        b.iter(|| black_box(view.sample(8, &mut rng)));
    });
    group.bench_function("view_insert_evict", |b| {
        let mut i = 100u32;
        b.iter(|| {
            i += 1;
            black_box(view.insert(ProcessId(i), &mut rng))
        });
    });
    let params = MembershipParams::paper_default(1000);
    let peers: Vec<ProcessId> = (1..=28).map(ProcessId).collect();
    let mut member = FlatMembership::with_static_view(ProcessId(0), params, &peers, &mut rng);
    group.bench_function("membership_gossip_round", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += params.gossip_period;
            black_box(member.on_round(round, &mut rng))
        });
    });
    group.finish();
}

fn dissemination(c: &mut Criterion) {
    let mut group = c.benchmark_group("dissemination");
    let mut rng = rng_from_seed(2);
    let params = TopicParams::paper_default();
    let table: Vec<ProcessId> = (1..=28).map(ProcessId).collect();
    let mut stable = SuperTable::new(ProcessId(0), 3);
    for i in 0..3 {
        stable.insert(
            SuperEntry {
                pid: ProcessId(1000 + i),
                topic: da_topics::TopicId::ROOT,
            },
            &mut rng,
        );
    }
    for s in [100usize, 1000, 10_000] {
        group.bench_with_input(BenchmarkId::new("plan", s), &s, |b, &s| {
            b.iter(|| black_box(plan_dissemination(&params, s, &table, &stable, &mut rng)));
        });
    }
    group.finish();
}

fn engine_round(c: &mut Criterion) {
    use da_bench::bench_scenario;
    use da_harness::scenario::{run_scenario, FailureKind};
    c.bench_function("full_scenario_124_processes", |b| {
        let config = bench_scenario(FailureKind::None, 1.0);
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(run_scenario(&config, seed).rounds)
        });
    });
}

criterion_group!(benches, topics, membership, dissemination, engine_round);
criterion_main!(benches);
