//! Criterion bench for the **Fig. 11** pipeline: delivery-fraction
//! measurement under the per-observer ("weakly consistent") failure model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use da_bench::bench_scenario;
use da_harness::scenario::{run_scenario, FailureKind};
use std::hint::black_box;

fn fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_reliability_dynamic");
    for alive in [0.4, 0.8] {
        let config = bench_scenario(FailureKind::PerObserver, alive);
        group.bench_with_input(BenchmarkId::from_parameter(alive), &config, |b, config| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let out = run_scenario(config, seed);
                black_box(out.delivered_fraction)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
