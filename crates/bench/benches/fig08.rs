//! Criterion bench for the **Fig. 8** pipeline: one full publication
//! scenario (per-group message counting) at three aliveness levels under
//! stillborn failures, at bench scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use da_bench::bench_scenario;
use da_harness::scenario::{run_scenario, FailureKind};
use std::hint::black_box;

fn fig08(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_group_messages");
    for alive in [0.5, 0.8, 1.0] {
        let config = bench_scenario(FailureKind::Stillborn, alive);
        group.bench_with_input(BenchmarkId::from_parameter(alive), &config, |b, config| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let out = run_scenario(config, seed);
                black_box(out.intra)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig08);
criterion_main!(benches);
