//! Criterion bench for the **live runtime**: the same bench-scale
//! topology the figure benches use (4/20/100), but executed on the
//! `da-runtime` worker pool instead of the simulator.
//!
//! Three kinds of rows:
//!
//! * `live_event` — the end-to-end cost of serving one publication:
//!   pool spin-up, the publication driven to quiescence, graceful
//!   shutdown, everything timed (topology construction included, as a
//!   fixed reference cost).
//! * `live_burst16` / `sim_burst16` — **sustained delivery**: a
//!   16-event burst driven to quiescence under the bounded-lag
//!   scheduler, with fixture construction (topology build, pool
//!   spin-up, publication injection) excluded from the timing via
//!   `iter_batched` on both substrates, so the row isolates the
//!   scheduler + transport + protocol hot path the perf work targets.
//!   The simulator row is the single-threaded reference on the
//!   identical workload; `live_burst16_w{1,2,4,8}` sweeps the pool
//!   width so scaling regressions show up in the committed baseline,
//!   not just absolute times (the headline `live_burst16` row runs at
//!   4 workers), and `live_burst16_best` re-emits the fastest sweep
//!   point as an alias row (`scripts/bench_gate.sh` also derives
//!   parallel efficiency from the sweep). `live_churn16` / `sim_churn16` repeat the burst with
//!   the shared churn failure plan active, so the lifecycle scan and
//!   the crashed-inbox drain stay visible in the committed baseline.
//!   `trace_overhead_off` / `trace_overhead_full` rerun the headline
//!   burst with the flight recorder disabled vs capturing every
//!   envelope verdict, so the recorder's zero-cost-when-off claim and
//!   its full-capture price are both tracked rows.
//! * `runtime_batching_*` — transport isolation: the same envelope
//!   stream pushed one SPSC lane push per envelope versus coalesced
//!   into one pooled batch per destination worker per tick (the
//!   lock-free data plane's hot path, buffer recycling included).
//!
//! `DA_BENCH_JSON=BENCH_runtime.json cargo bench -p da-bench --bench
//! runtime_throughput -- --quick` emits the machine-readable baseline
//! CI tracks from PR 2 onward (`scripts/bench_gate.sh` diffs a fresh
//! run against the committed file).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use da_bench::bench_sizes;
use da_core::channel::{ChannelConfig, Latency};
use da_core::failure::FailureModel;
use da_runtime::{lane_matrix, Envelope, FaultyRouter, Runtime, RuntimeConfig, TraceConfig};
use da_simnet::{Engine, ProcessId, SimConfig};
use damulticast::{metro_population, DaProcess, MetroProcess, ParamMap, StaticNetwork};
use std::hint::black_box;

const MAX_TICKS: u64 = 64;

/// Events per burst in the sustained-delivery rows.
const BURST: usize = 16;

/// Pool width of the headline `live_burst16` row (also part of the
/// sweep, so the baseline records it under both names).
const HEADLINE_WORKERS: usize = 4;

/// Envelopes per simulated tick in the transport pump (the coalescing
/// window the batched path flushes on).
const PUMP_TICK: usize = 64;

/// Pushes `msgs` envelopes through the lock-free lane matrix to
/// `workers` inboxes and drains them, either one `Batch::One` lane push
/// per envelope (the unbatched reference) or coalesced per destination
/// worker per tick (the pooled `FaultyRouter` path, buffer recycling
/// included). Returns the envelopes received.
///
/// Lanes are bounded, so the pump drains every coalescing window before
/// filling the next; one window always fits (`PUMP_TICK + 1` capacity).
fn transport_pump(msgs: usize, workers: usize, batched: bool) -> u64 {
    let (mut hubs, mut inboxes) = lane_matrix::<u64>(workers, PUMP_TICK + 1);
    let mut hub = hubs.remove(0); // hubs[1..] stay alive: lanes stay open
    let mut received = 0u64;
    if batched {
        let mut faulty = FaultyRouter::new(hub, ChannelConfig::reliable(), 1);
        for i in 0..msgs {
            let tick = (i / PUMP_TICK) as u64;
            faulty.send(ProcessId(0), ProcessId((i % 97) as u32), tick, i as u64);
            if i % PUMP_TICK == PUMP_TICK - 1 {
                faulty.flush();
                for inbox in &mut inboxes {
                    received += inbox.drain();
                }
            }
        }
        faulty.flush();
    } else {
        for i in 0..msgs {
            let tick = (i / PUMP_TICK) as u64;
            let env = Envelope {
                from: ProcessId(0),
                to: ProcessId((i % 97) as u32),
                sent_tick: tick,
                due_tick: tick + 1,
                msg: i as u64,
            };
            hub.send(env).expect("pump lanes stay open");
            if i % PUMP_TICK == PUMP_TICK - 1 {
                for inbox in &mut inboxes {
                    received += inbox.drain();
                }
            }
        }
    }
    for inbox in &mut inboxes {
        received += inbox.drain();
    }
    received
}

fn network(seed: u64) -> StaticNetwork {
    StaticNetwork::linear(&bench_sizes(), ParamMap::default(), seed)
        .expect("bench topology is valid")
}

/// The churn model of the `*_churn16` rows: gentle (1% crash / 20%
/// recover per tick, ≈95% stationary aliveness), enough to keep the
/// per-tick lifecycle scan and the crashed-inbox drain on the measured
/// path.
fn bench_churn() -> FailureModel {
    FailureModel::Churn {
        crash_probability: 0.01,
        recover_probability: 0.2,
    }
}

/// A live pool with `events` publications already injected from
/// distinct leaf members — the fixture of the sustained-delivery rows.
fn live_fixture(
    seed: u64,
    workers: usize,
    events: usize,
    failure: FailureModel,
    trace: TraceConfig,
) -> Runtime<DaProcess> {
    let net = network(seed);
    let leaf = net.groups().last().expect("leaf group").members.clone();
    let config = RuntimeConfig::default()
        .with_seed(seed)
        .with_workers(workers)
        .with_failures(failure)
        .with_trace(trace);
    let mut rt = Runtime::spawn(config, net.into_processes());
    for i in 0..events {
        rt.with_process_mut(leaf[i % leaf.len()], |p| p.publish("bench"));
    }
    rt
}

/// The identical fixture under the simulator.
fn sim_fixture(seed: u64, events: usize, failure: FailureModel) -> Engine<DaProcess> {
    let net = network(seed);
    let leaf = net.groups().last().expect("leaf group").members.clone();
    let config = SimConfig::default().with_seed(seed).with_failures(failure);
    let mut engine: Engine<DaProcess> = Engine::new(config, net.into_processes());
    for i in 0..events {
        engine.process_mut(leaf[i % leaf.len()]).publish("bench");
    }
    engine
}

/// Bench-scale metropolis: the `live_metropolis` example's workload
/// (flat-state gossip over computed overlay links, lossy multi-tick
/// channel, churn) at a population small enough for a tracked row —
/// the flat-memory hot path (slab store, stateless edge draws, ring
/// wheel) without the full protocol stack in front of it.
const METRO_POPULATION: usize = 16_384;
const METRO_HEADLINES: usize = 16;
const METRO_TTL: u8 = 12;

/// The soak's channel: 5% loss, 1–3 tick latency — every send takes a
/// stateless `(edge, tick, occurrence)` draw and multi-tick envelopes
/// ride the delay-wheel ring.
fn metro_channel() -> ChannelConfig {
    ChannelConfig::reliable()
        .with_success_probability(0.95)
        .with_latency(Latency::UniformRounds { min: 1, max: 3 })
}

fn live_metro_fixture(seed: u64, workers: usize) -> Runtime<MetroProcess> {
    let config = RuntimeConfig::default()
        .with_seed(seed)
        .with_workers(workers)
        .with_channel(metro_channel())
        .with_failures(bench_churn());
    Runtime::spawn(
        config,
        metro_population(METRO_POPULATION, METRO_HEADLINES, METRO_TTL),
    )
}

fn sim_metro_fixture(seed: u64) -> Engine<MetroProcess> {
    let config = SimConfig::default()
        .with_seed(seed)
        .with_channel(metro_channel())
        .with_failures(bench_churn());
    Engine::new(
        config,
        metro_population(METRO_POPULATION, METRO_HEADLINES, METRO_TTL),
    )
}

/// Publishes one event and drives it to quiescence end-to-end (spin-up
/// and shutdown included) — the `live_event` row.
fn live_event_run(seed: u64) -> u64 {
    let mut rt = live_fixture(seed, 2, 1, FailureModel::None, TraceConfig::off());
    rt.run_until_quiescent(MAX_TICKS);
    let out = rt.shutdown();
    out.counters.get("rt.delivered")
}

fn runtime_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_throughput");
    let population: usize = bench_sizes().iter().sum();

    // Pool spin-up + one event to quiescence + graceful shutdown: the
    // end-to-end cost of serving one publication live.
    group.bench_with_input(
        BenchmarkId::new("live_event", population),
        &population,
        |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(live_event_run(seed))
            });
        },
    );

    // Sustained delivery: a 16-event burst to quiescence, fixture
    // excluded. The pool (with its threads still up) is returned from
    // the routine so teardown is excluded from the timing too.
    let mut live_burst_row = |label: String,
                              workers: usize,
                              failure: fn() -> FailureModel,
                              trace: fn() -> TraceConfig|
     -> Option<(f64, u64)> {
        group.bench_with_input(BenchmarkId::new(label, population), &population, |b, _| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed = seed.wrapping_add(1);
                    live_fixture(seed, workers, BURST, failure(), trace())
                },
                |mut rt| {
                    black_box(rt.run_until_quiescent(MAX_TICKS));
                    rt
                },
                BatchSize::SmallInput,
            );
        });
        group.last_measurement()
    };
    // The ascending sweep runs first so the headline row measures the
    // warmed steady state rather than paying the suite's one-time
    // warm-up costs. The fastest sweep point is re-emitted below as the
    // `live_burst16_best` alias row — the number scaling work should
    // move, whatever pool width achieves it on this machine.
    let mut best: Option<(f64, u64)> = None;
    for workers in [1usize, 2, 4, 8] {
        let row = live_burst_row(
            format!("live_burst16_w{workers}"),
            workers,
            || FailureModel::None,
            TraceConfig::off,
        );
        if let Some((ns, iters)) = row {
            if best.is_none_or(|(b, _)| ns < b) {
                best = Some((ns, iters));
            }
        }
    }
    let _ = live_burst_row(
        "live_burst16".into(),
        HEADLINE_WORKERS,
        || FailureModel::None,
        TraceConfig::off,
    );
    // The same burst with the lifecycle controller live: per-tick churn
    // draws, crashed-inbox drains, recovery hooks all on the hot path.
    let _ = live_burst_row(
        "live_churn16".into(),
        HEADLINE_WORKERS,
        bench_churn,
        TraceConfig::off,
    );
    // Flight-recorder overhead on the headline burst: `_off` is the
    // shipped default (a `None` branch on the hot path — the baseline
    // diff against `live_burst16` tracks the "zero cost when off"
    // claim), `_full` pays per-envelope ring-buffer appends plus the
    // tick-boundary shard publishes.
    let _ = live_burst_row(
        "trace_overhead_off".into(),
        HEADLINE_WORKERS,
        || FailureModel::None,
        TraceConfig::off,
    );
    let _ = live_burst_row(
        "trace_overhead_full".into(),
        HEADLINE_WORKERS,
        || FailureModel::None,
        TraceConfig::full,
    );
    if let Some((ns, iters)) = best {
        group.report_alias(BenchmarkId::new("live_burst16_best", population), ns, iters);
    }

    // Simulator reference: the same topology and burst, single-threaded
    // deterministic rounds, fixture equally excluded.
    let mut sim_burst_row = |label: &'static str, failure: fn() -> FailureModel| {
        group.bench_with_input(BenchmarkId::new(label, population), &population, |b, _| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed = seed.wrapping_add(1);
                    sim_fixture(seed, BURST, failure())
                },
                |mut engine| {
                    black_box(engine.run_until_quiescent(MAX_TICKS));
                    engine
                },
                BatchSize::SmallInput,
            );
        });
    };
    sim_burst_row("sim_burst16", || FailureModel::None);
    sim_burst_row("sim_churn16", bench_churn);

    // Metropolis rows: the flat-memory soak workload at bench scale,
    // identical on both substrates (fixture excluded from timing).
    group.bench_with_input(
        BenchmarkId::new("live_metropolis", METRO_POPULATION),
        &METRO_POPULATION,
        |b, _| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed = seed.wrapping_add(1);
                    live_metro_fixture(seed, HEADLINE_WORKERS)
                },
                |mut rt| {
                    black_box(rt.run_until_quiescent(MAX_TICKS));
                    rt
                },
                BatchSize::SmallInput,
            );
        },
    );
    group.bench_with_input(
        BenchmarkId::new("sim_metropolis", METRO_POPULATION),
        &METRO_POPULATION,
        |b, _| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed = seed.wrapping_add(1);
                    sim_metro_fixture(seed)
                },
                |mut engine| {
                    black_box(engine.run_until_quiescent(MAX_TICKS));
                    engine
                },
                BatchSize::SmallInput,
            );
        },
    );

    // Transport isolation: the same 8192-envelope stream to a 4-worker
    // pool, per-envelope channel sends vs per-tick coalesced batches —
    // the measured win of the PR 3 Router batching.
    const PUMP_MSGS: usize = 8192;
    group.bench_with_input(
        BenchmarkId::new("runtime_batching_unbatched", PUMP_MSGS),
        &PUMP_MSGS,
        |b, &msgs| {
            b.iter(|| black_box(transport_pump(msgs, 4, false)));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("runtime_batching_batched", PUMP_MSGS),
        &PUMP_MSGS,
        |b, &msgs| {
            b.iter(|| black_box(transport_pump(msgs, 4, true)));
        },
    );

    group.finish();
}

criterion_group!(benches, runtime_throughput);
criterion_main!(benches);
