//! Criterion bench for the **live runtime**: the same bench-scale
//! topology the figure benches use (4/20/100), but executed on the
//! `da-runtime` worker pool instead of the simulator — pool spin-up,
//! a publication burst driven to quiescence, graceful shutdown. A
//! simulator reference point with the identical workload makes the
//! live-vs-sim overhead visible in one printout.
//!
//! `DA_BENCH_JSON=BENCH_runtime.json cargo bench -p da-bench --bench
//! runtime_throughput -- --quick` emits the machine-readable baseline
//! CI tracks from PR 2 onward.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use da_bench::bench_sizes;
use da_runtime::{Runtime, RuntimeConfig};
use da_simnet::{Engine, SimConfig};
use damulticast::{DaProcess, ParamMap, StaticNetwork};
use std::hint::black_box;

const MAX_TICKS: u64 = 64;

fn network(seed: u64) -> StaticNetwork {
    StaticNetwork::linear(&bench_sizes(), ParamMap::default(), seed)
        .expect("bench topology is valid")
}

/// Publishes `events` stories from distinct leaf members and returns the
/// processes driven to quiescence on the live runtime.
fn live_run(seed: u64, workers: usize, events: usize) -> u64 {
    let net = network(seed);
    let leaf = net.groups().last().expect("leaf group").members.clone();
    let config = RuntimeConfig::default()
        .with_seed(seed)
        .with_workers(workers);
    let mut rt = Runtime::spawn(config, net.into_processes());
    for i in 0..events {
        rt.with_process_mut(leaf[i % leaf.len()], |p| p.publish("bench"));
    }
    rt.run_until_quiescent(MAX_TICKS);
    let out = rt.shutdown();
    out.counters.get("rt.delivered")
}

/// The identical workload under the simulator, for the reference row.
fn sim_run(seed: u64, events: usize) -> u64 {
    let net = network(seed);
    let leaf = net.groups().last().expect("leaf group").members.clone();
    let mut engine: Engine<DaProcess> =
        Engine::new(SimConfig::default().with_seed(seed), net.into_processes());
    for i in 0..events {
        engine.process_mut(leaf[i % leaf.len()]).publish("bench");
    }
    engine.run_until_quiescent(MAX_TICKS);
    engine.counters().get("sim.delivered")
}

fn runtime_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_throughput");
    let population: usize = bench_sizes().iter().sum();

    // Pool spin-up + one event to quiescence + graceful shutdown: the
    // end-to-end cost of serving one publication live.
    group.bench_with_input(
        BenchmarkId::new("live_event", population),
        &population,
        |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(live_run(seed, 2, 1))
            });
        },
    );

    // A 16-event burst: amortises spin-up, measures sustained delivery.
    group.bench_with_input(
        BenchmarkId::new("live_burst16", population),
        &population,
        |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(live_run(seed, 2, 16))
            });
        },
    );

    // Simulator reference: the same topology and burst, single-threaded
    // deterministic rounds.
    group.bench_with_input(
        BenchmarkId::new("sim_burst16", population),
        &population,
        |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(sim_run(seed, 16))
            });
        },
    );

    group.finish();
}

criterion_group!(benches, runtime_throughput);
criterion_main!(benches);
