//! Criterion bench for the **live runtime**: the same bench-scale
//! topology the figure benches use (4/20/100), but executed on the
//! `da-runtime` worker pool instead of the simulator — pool spin-up,
//! a publication burst driven to quiescence, graceful shutdown. A
//! simulator reference point with the identical workload makes the
//! live-vs-sim overhead visible in one printout, and the
//! `runtime_batching` pair isolates the transport layer: the same
//! envelope stream pushed one channel send per envelope versus
//! coalesced into one batch per destination worker per tick (the PR 3
//! Router hot-path change).
//!
//! `DA_BENCH_JSON=BENCH_runtime.json cargo bench -p da-bench --bench
//! runtime_throughput -- --quick` emits the machine-readable baseline
//! CI tracks from PR 2 onward.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crossbeam::channel;
use da_bench::bench_sizes;
use da_core::channel::ChannelConfig;
use da_runtime::{Batch, Envelope, FaultyRouter, Router, Runtime, RuntimeConfig};
use da_simnet::{Engine, ProcessId, SimConfig};
use damulticast::{DaProcess, ParamMap, StaticNetwork};
use std::hint::black_box;

const MAX_TICKS: u64 = 64;

/// Envelopes per simulated tick in the transport pump (the coalescing
/// window the batched path flushes on).
const PUMP_TICK: usize = 64;

/// Pushes `msgs` envelopes through the in-memory transport to `workers`
/// inboxes and drains them, either one channel send per envelope (the
/// PR 2 hot path) or coalesced per destination worker per tick (the
/// batched `FaultyRouter` path). Returns the envelopes received.
fn transport_pump(msgs: usize, workers: usize, batched: bool) -> u64 {
    let mut txs = Vec::with_capacity(workers);
    let mut rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = channel::unbounded::<Batch<u64>>();
        txs.push(tx);
        rxs.push(rx);
    }
    let router = Router::new(txs);
    if batched {
        let mut faulty = FaultyRouter::new(router, ChannelConfig::reliable(), 1);
        for i in 0..msgs {
            let tick = (i / PUMP_TICK) as u64;
            faulty.send(ProcessId(0), ProcessId((i % 97) as u32), tick, i as u64);
            if i % PUMP_TICK == PUMP_TICK - 1 {
                faulty.flush();
            }
        }
        faulty.flush();
    } else {
        for i in 0..msgs {
            let tick = (i / PUMP_TICK) as u64;
            router.send(Envelope {
                from: ProcessId(0),
                to: ProcessId((i % 97) as u32),
                sent_tick: tick,
                due_tick: tick + 1,
                msg: i as u64,
            });
        }
    }
    rxs.iter()
        .map(|rx| rx.try_iter().map(|b| b.len() as u64).sum::<u64>())
        .sum()
}

fn network(seed: u64) -> StaticNetwork {
    StaticNetwork::linear(&bench_sizes(), ParamMap::default(), seed)
        .expect("bench topology is valid")
}

/// Publishes `events` stories from distinct leaf members and returns the
/// processes driven to quiescence on the live runtime.
fn live_run(seed: u64, workers: usize, events: usize) -> u64 {
    let net = network(seed);
    let leaf = net.groups().last().expect("leaf group").members.clone();
    let config = RuntimeConfig::default()
        .with_seed(seed)
        .with_workers(workers);
    let mut rt = Runtime::spawn(config, net.into_processes());
    for i in 0..events {
        rt.with_process_mut(leaf[i % leaf.len()], |p| p.publish("bench"));
    }
    rt.run_until_quiescent(MAX_TICKS);
    let out = rt.shutdown();
    out.counters.get("rt.delivered")
}

/// The identical workload under the simulator, for the reference row.
fn sim_run(seed: u64, events: usize) -> u64 {
    let net = network(seed);
    let leaf = net.groups().last().expect("leaf group").members.clone();
    let mut engine: Engine<DaProcess> =
        Engine::new(SimConfig::default().with_seed(seed), net.into_processes());
    for i in 0..events {
        engine.process_mut(leaf[i % leaf.len()]).publish("bench");
    }
    engine.run_until_quiescent(MAX_TICKS);
    engine.counters().get("sim.delivered")
}

fn runtime_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_throughput");
    let population: usize = bench_sizes().iter().sum();

    // Pool spin-up + one event to quiescence + graceful shutdown: the
    // end-to-end cost of serving one publication live.
    group.bench_with_input(
        BenchmarkId::new("live_event", population),
        &population,
        |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(live_run(seed, 2, 1))
            });
        },
    );

    // A 16-event burst: amortises spin-up, measures sustained delivery.
    group.bench_with_input(
        BenchmarkId::new("live_burst16", population),
        &population,
        |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(live_run(seed, 2, 16))
            });
        },
    );

    // Simulator reference: the same topology and burst, single-threaded
    // deterministic rounds.
    group.bench_with_input(
        BenchmarkId::new("sim_burst16", population),
        &population,
        |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(sim_run(seed, 16))
            });
        },
    );

    // Transport isolation: the same 8192-envelope stream to a 4-worker
    // pool, per-envelope channel sends vs per-tick coalesced batches —
    // the measured win of the PR 3 Router batching.
    const PUMP_MSGS: usize = 8192;
    group.bench_with_input(
        BenchmarkId::new("runtime_batching_unbatched", PUMP_MSGS),
        &PUMP_MSGS,
        |b, &msgs| {
            b.iter(|| black_box(transport_pump(msgs, 4, false)));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("runtime_batching_batched", PUMP_MSGS),
        &PUMP_MSGS,
        |b, &msgs| {
            b.iter(|| black_box(transport_pump(msgs, 4, true)));
        },
    );

    group.finish();
}

criterion_group!(benches, runtime_throughput);
criterion_main!(benches);
