//! Criterion bench for the **Fig. 10** pipeline: delivery-fraction
//! measurement under stillborn failures at bench scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use da_bench::bench_scenario;
use da_harness::scenario::{run_scenario, FailureKind};
use std::hint::black_box;

fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_reliability_stillborn");
    for alive in [0.4, 0.8] {
        let config = bench_scenario(FailureKind::Stillborn, alive);
        group.bench_with_input(BenchmarkId::from_parameter(alive), &config, |b, config| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let out = run_scenario(config, seed);
                black_box(out.delivered_fraction)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
