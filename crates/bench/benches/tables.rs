//! Criterion bench for the **Sec. VI-E tables** pipelines: one
//! publication per algorithm (complexity/parasite rows) plus the pure-math
//! tuning table.

use criterion::{criterion_group, criterion_main, Criterion};
use da_baselines::{
    build_broadcast_network, build_hierarchical_network, build_multicast_network, InterestMap,
};
use da_bench::{bench_scenario, bench_sizes};
use da_harness::experiments::tables::run_tuning_table;
use da_harness::scenario::{run_scenario, FailureKind};
use da_membership::FanoutRule;
use da_simnet::{Engine, ProcessId, SimConfig};
use std::hint::black_box;

fn table_rows(c: &mut Criterion) {
    let sizes = bench_sizes();
    let n: usize = sizes.iter().sum();
    let interests = InterestMap::linear(&sizes);
    let fanout = FanoutRule::LnPlusC { c: 5.0 };
    let publisher = ProcessId::from_index(n - 1);

    let mut group = c.benchmark_group("table_complexity_rows");

    group.bench_function("damulticast", |b| {
        let config = bench_scenario(FailureKind::None, 1.0);
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(run_scenario(&config, seed).total_event_messages)
        });
    });

    group.bench_function("broadcast", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let procs = build_broadcast_network(&interests, 3.0, fanout, seed).unwrap();
            let mut engine = Engine::new(SimConfig::default().with_seed(seed), procs);
            engine.process_mut(publisher).publish("bench");
            engine.run_until_quiescent(64);
            black_box(engine.counters().get("bc.sent"))
        });
    });

    group.bench_function("multicast", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let procs = build_multicast_network(&interests, 3.0, fanout, seed).unwrap();
            let mut engine = Engine::new(SimConfig::default().with_seed(seed), procs);
            engine.process_mut(publisher).publish("bench");
            engine.run_until_quiescent(64);
            black_box(engine.counters().get("mc.sent"))
        });
    });

    group.bench_function("hierarchical", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let procs =
                build_hierarchical_network(&interests, 8, 3.0, fanout, fanout, seed).unwrap();
            let mut engine = Engine::new(SimConfig::default().with_seed(seed), procs);
            engine.process_mut(publisher).publish("bench");
            engine.run_until_quiescent(64);
            black_box(engine.counters().get("hc.sent_intra"))
        });
    });

    group.finish();

    c.bench_function("table_tuning_analytic", |b| {
        b.iter(|| black_box(run_tuning_table(3, 1110, 1000, 33)));
    });
}

criterion_group!(benches, table_rows);
criterion_main!(benches);
