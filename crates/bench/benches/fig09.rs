//! Criterion bench for the **Fig. 9** pipeline: inter-group message
//! counting across the two boundaries of the bench-scale chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use da_bench::bench_scenario;
use da_harness::scenario::{run_scenario, FailureKind};
use std::hint::black_box;

fn fig09(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_intergroup");
    for alive in [0.5, 1.0] {
        let config = bench_scenario(FailureKind::Stillborn, alive);
        group.bench_with_input(BenchmarkId::from_parameter(alive), &config, |b, config| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let out = run_scenario(config, seed);
                black_box(out.inter_in)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig09);
criterion_main!(benches);
