//! Criterion bench for the **ablation** pipelines: the g sweep point, the
//! z sweep point, and the fanout-rule variants, at bench scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use da_bench::bench_scenario;
use da_harness::scenario::{run_scenario, FailureKind};
use da_membership::FanoutRule;
use std::hint::black_box;

fn ablation_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_g");
    for g in [1.0, 5.0, 20.0] {
        let mut config = bench_scenario(FailureKind::None, 1.0);
        config.params.g = g;
        group.bench_with_input(BenchmarkId::from_parameter(g), &config, |b, config| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(run_scenario(config, seed).inter_in.iter().sum::<f64>())
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_fanout");
    for (name, rule) in [
        ("ln", FanoutRule::LnPlusC { c: 5.0 }),
        ("log10", FanoutRule::Log10PlusC { c: 5.0 }),
        ("fixed8", FanoutRule::Fixed(8)),
    ] {
        let config = bench_scenario(FailureKind::None, 1.0).with_fanout(rule);
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(run_scenario(config, seed).total_event_messages)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_points);
criterion_main!(benches);
