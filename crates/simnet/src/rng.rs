//! Deterministic seed derivation.
//!
//! Every source of randomness in a simulation run is derived from a single
//! master seed so that runs are exactly reproducible: identical seeds and
//! configurations produce identical metrics (an invariant covered by the
//! integration test suite).

use crate::ProcessId;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Mixes `master` and a `stream` discriminator into an independent seed
/// using the splitmix64 finalizer, which diffuses single-bit differences
/// across the whole word.
#[must_use]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`SmallRng`] seeded directly from a 64-bit seed.
#[must_use]
pub fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// The RNG stream of process `pid` for a run with the given master seed.
///
/// Streams of different processes are independent, and independent of the
/// engine's own channel/failure stream.
#[must_use]
pub fn rng_for_process(master: u64, pid: ProcessId) -> SmallRng {
    // Stream 0 is reserved for the engine itself; offset by 1.
    rng_from_seed(derive_seed(master, u64::from(pid.0) + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(42, 1);
        let b = derive_seed(42, 2);
        assert_ne!(a, b);
        // Nearby masters also diverge.
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn process_rngs_are_reproducible() {
        let mut r1 = rng_for_process(99, ProcessId(5));
        let mut r2 = rng_for_process(99, ProcessId(5));
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn process_rngs_differ_between_processes() {
        let mut r1 = rng_for_process(99, ProcessId(0));
        let mut r2 = rng_for_process(99, ProcessId(1));
        let a: Vec<u64> = (0..8).map(|_| r1.gen()).collect();
        let b: Vec<u64> = (0..8).map(|_| r2.gen()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn engine_stream_zero_not_reused() {
        // Process 0 uses stream 1, never colliding with engine stream 0.
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
    }
}
