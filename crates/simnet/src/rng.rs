//! Deterministic seed derivation.
//!
//! Every source of randomness in a simulation run is derived from a single
//! master seed so that runs are exactly reproducible: identical seeds and
//! configurations produce identical metrics (an invariant covered by the
//! integration test suite). The derivation scheme — including the
//! per-process stream convention, which the live runtime shares — lives
//! in `da_core::seed`; this module re-exports it under the original
//! `da_simnet` paths.

pub use da_core::seed::{derive_seed, rng_for_process, rng_from_seed};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;
    use rand::Rng;

    #[test]
    fn process_rngs_are_reproducible() {
        let mut r1 = rng_for_process(99, ProcessId(5));
        let mut r2 = rng_for_process(99, ProcessId(5));
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn process_rngs_differ_between_processes() {
        let mut r1 = rng_for_process(99, ProcessId(0));
        let mut r2 = rng_for_process(99, ProcessId(1));
        let a: Vec<u64> = (0..8).map(|_| r1.gen()).collect();
        let b: Vec<u64> = (0..8).map(|_| r2.gen()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn engine_stream_zero_not_reused() {
        // Process 0 uses stream 1, never colliding with engine stream 0.
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
    }
}
