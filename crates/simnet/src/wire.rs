//! Wire-size accounting.
//!
//! The engine charges every sent message its encoded size so experiments
//! can report bandwidth, not just message counts. Protocol message types
//! implement [`WireSize`]; the helpers here give consistent sizes for the
//! primitives that appear in gossip messages, and [`encode_frame`] produces
//! an actual byte framing (length-prefixed tag + payload words) for tests
//! that want byte-accurate accounting.

use crate::ProcessId;
use bytes::{BufMut, Bytes, BytesMut};

/// Types that know their encoded size on the wire, in bytes.
///
/// Implementations should return the size of a reasonable binary encoding —
/// they are used for bandwidth accounting, not actual serialization.
///
/// ```
/// use da_simnet::WireSize;
/// struct Ping;
/// impl WireSize for Ping {
///     fn wire_size(&self) -> usize { 1 }
/// }
/// assert_eq!(Ping.wire_size(), 1);
/// ```
pub trait WireSize {
    /// Encoded size of `self` in bytes.
    fn wire_size(&self) -> usize;
}

impl WireSize for ProcessId {
    fn wire_size(&self) -> usize {
        4
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        // 4-byte length prefix plus elements.
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl WireSize for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSize for u32 {
    fn wire_size(&self) -> usize {
        4
    }
}

impl WireSize for u8 {
    fn wire_size(&self) -> usize {
        1
    }
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

/// Encodes a tagged frame: 1-byte tag, 4-byte payload length, then the
/// 32-bit words of the payload. Used by byte-accurate tests to check that
/// [`WireSize`] implementations match a real encoding.
#[must_use]
pub fn encode_frame(tag: u8, words: &[u32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(5 + words.len() * 4);
    buf.put_u8(tag);
    buf.put_u32(u32::try_from(words.len() * 4).expect("frame too large"));
    for w in words {
        buf.put_u32(*w);
    }
    buf.freeze()
}

/// The framing overhead added by [`encode_frame`] (tag + length prefix).
pub const FRAME_OVERHEAD: usize = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(ProcessId(1).wire_size(), 4);
        assert_eq!(7u64.wire_size(), 8);
        assert_eq!(7u32.wire_size(), 4);
        assert_eq!(7u8.wire_size(), 1);
        assert_eq!(().wire_size(), 0);
    }

    #[test]
    fn container_sizes() {
        let v = vec![ProcessId(1), ProcessId(2)];
        assert_eq!(v.wire_size(), 4 + 8);
        assert_eq!(Some(3u32).wire_size(), 5);
        assert_eq!(None::<u32>.wire_size(), 1);
        assert_eq!((ProcessId(0), 1u64).wire_size(), 12);
    }

    #[test]
    fn frame_encoding_matches_length() {
        let frame = encode_frame(9, &[1, 2, 3]);
        assert_eq!(frame.len(), FRAME_OVERHEAD + 12);
        assert_eq!(frame[0], 9);
        // Payload length is big-endian 12.
        assert_eq!(&frame[1..5], &[0, 0, 0, 12]);
    }

    #[test]
    fn empty_frame() {
        let frame = encode_frame(0, &[]);
        assert_eq!(frame.len(), FRAME_OVERHEAD);
    }
}
