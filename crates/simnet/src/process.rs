//! Process identity and liveness.
//!
//! [`ProcessId`] and [`ProcessStatus`] moved to `da_core::process` (the
//! failure models below both substrates script fates in terms of them);
//! this module re-exports them under their original `da_simnet` paths.

pub use da_core::process::{ProcessId, ProcessStatus};
