//! # da-simnet — deterministic simulation kernel
//!
//! The daMulticast paper evaluates its protocol with a simulator of
//! *synchronous gossip rounds* over unreliable best-effort channels
//! (Sec. VII-A: "Our simulator written in C# simulates synchronous gossip
//! rounds"). This crate is our Rust substitute: a deterministic,
//! seed-reproducible round-driven discrete-event kernel with
//!
//! * virtual time measured in gossip rounds,
//! * unreliable channels (per-send Bernoulli loss, configurable latency in
//!   rounds — the substrate-neutral model of `da_core::channel`,
//!   re-exported here and shared with the live runtime),
//! * process crash/recovery plus the paper's two failure models —
//!   *stillborn* (Fig. 8–10: state drawn once at simulation start) and
//!   *per-observer* (Fig. 11: a process "can appear to be failed for a
//!   process while appearing alive for another one"),
//! * per-process RNG streams derived from a master seed, and
//! * a metrics registry counting messages per protocol-defined label.
//!
//! Protocols implement the [`Protocol`] trait and are driven by an
//! [`Engine`]:
//!
//! ```
//! use da_simnet::{Ctx, Engine, Protocol, ProcessId, SimConfig, WireSize};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl WireSize for Ping {
//!     fn wire_size(&self) -> usize { 4 }
//! }
//!
//! struct Node { got: u32 }
//! impl Protocol for Node {
//!     type Msg = Ping;
//!     fn on_round(&mut self, round: u64, ctx: &mut Ctx<'_, Ping>) {
//!         if round == 0 && ctx.me() == ProcessId(0) {
//!             ctx.send(ProcessId(1), Ping(7));
//!         }
//!     }
//!     fn on_message(&mut self, _from: ProcessId, msg: Ping, _ctx: &mut Ctx<'_, Ping>) {
//!         self.got = msg.0;
//!     }
//! }
//!
//! let mut engine = Engine::new(
//!     SimConfig::default().with_seed(42),
//!     vec![Node { got: 0 }, Node { got: 0 }],
//! );
//! engine.run_rounds(3);
//! assert_eq!(engine.process(ProcessId(1)).got, 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod event;
mod failure;
pub mod mc;
mod metrics;
mod overlay;
mod process;
mod rng;
mod strategy;
mod wire;

pub use da_core::channel::{ChannelConfig, ChannelFate, Latency};
pub use da_core::fault::FaultConfig;
pub use da_core::topology::{
    DropSchedule, NetFate, NetworkModel, NodeId, Partition, PartitionSchedule, ScriptedDrop,
    Topology,
};
pub use da_core::trace::{
    canonicalize, first_divergence, TraceCategory, TraceConfig, TraceDivergence, TraceEvent,
    TraceMode, TraceRecorder, TraceVerdict,
};
pub use engine::{Ctx, Engine, Protocol, RoundReport, SimConfig};
pub use error::SimError;
pub use failure::{ChurnRates, FailureModel, FailurePlan, Fate};
pub use metrics::{CounterId, Counters, FxBuildHasher, FxHasher, Histogram, TraceLog};
pub use overlay::Overlay;
pub use process::{ProcessId, ProcessStatus};
pub use rng::{derive_seed, rng_for_process, rng_from_seed};
pub use strategy::{DueMessage, RngStrategy, Strategy};
pub use wire::{encode_frame, WireSize, FRAME_OVERHEAD};
