use serde::{Deserialize, Serialize};

/// Message latency, measured in gossip rounds.
///
/// The paper's simulation is round-synchronous: a message sent in round `n`
/// is available at the start of round `n + 1`, which is
/// [`Latency::Fixed`]`(1)`. [`Latency::UniformRounds`] models jittery links
/// where delivery may straggle by several rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Latency {
    /// Every message takes exactly this many rounds (minimum 1).
    Fixed(u64),
    /// Latency drawn uniformly from `min..=max` rounds per message.
    UniformRounds {
        /// Lower bound (inclusive, minimum 1).
        min: u64,
        /// Upper bound (inclusive).
        max: u64,
    },
}

impl Default for Latency {
    fn default() -> Self {
        Latency::Fixed(1)
    }
}

/// Configuration of the unreliable best-effort channels (Sec. III-A of the
/// paper; the simulation uses a flat success probability of 0.85,
/// Sec. VII-A).
///
/// ```
/// use da_simnet::ChannelConfig;
/// let paper = ChannelConfig::paper_default();
/// assert!((paper.success_probability - 0.85).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Probability that a sent message survives the channel
    /// (`p_succ` in the paper's analysis).
    pub success_probability: f64,
    /// Delivery latency model.
    pub latency: Latency,
}

impl ChannelConfig {
    /// Perfectly reliable channels with one-round latency.
    #[must_use]
    pub fn reliable() -> Self {
        ChannelConfig {
            success_probability: 1.0,
            latency: Latency::default(),
        }
    }

    /// The paper's simulation setting: `p_succ = 0.85`, one-round latency
    /// ("The probability for an event to be received is set to an arbitrary
    /// value of 0.85, to simulate unreliable, i.e. best effort, channels").
    #[must_use]
    pub fn paper_default() -> Self {
        ChannelConfig {
            success_probability: 0.85,
            latency: Latency::default(),
        }
    }

    /// Sets the success probability, clamping into `[0, 1]`.
    #[must_use]
    pub fn with_success_probability(mut self, p: f64) -> Self {
        self.success_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: Latency) -> Self {
        self.latency = latency;
        self
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig::reliable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ChannelConfig::default();
        assert!((c.success_probability - 1.0).abs() < f64::EPSILON);
        assert_eq!(c.latency, Latency::Fixed(1));
    }

    #[test]
    fn paper_default_is_085() {
        assert!((ChannelConfig::paper_default().success_probability - 0.85).abs() < 1e-12);
    }

    #[test]
    fn builder_clamps() {
        let c = ChannelConfig::default().with_success_probability(1.5);
        assert!((c.success_probability - 1.0).abs() < f64::EPSILON);
        let c = ChannelConfig::default().with_success_probability(-0.2);
        assert!(c.success_probability.abs() < f64::EPSILON);
    }

    #[test]
    fn latency_builder() {
        let c = ChannelConfig::default().with_latency(Latency::UniformRounds { min: 1, max: 3 });
        assert_eq!(c.latency, Latency::UniformRounds { min: 1, max: 3 });
    }
}
