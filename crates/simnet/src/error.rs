use crate::ProcessId;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the simulation kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A [`ProcessId`] was outside the engine's process table.
    UnknownProcess {
        /// The offending id.
        pid: ProcessId,
        /// Number of processes in the engine.
        population: usize,
    },
    /// A configuration value was outside its valid range.
    InvalidConfig {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownProcess { pid, population } => {
                write!(f, "process {pid} is outside the population of {population}")
            }
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid simulation configuration: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_process() {
        let e = SimError::UnknownProcess {
            pid: ProcessId(7),
            population: 3,
        };
        assert!(e.to_string().contains("p7"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
