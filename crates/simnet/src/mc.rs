//! Bounded model checking over the deterministic engine.
//!
//! Statistical sweeps sample the space of executions; this module
//! *walks* it. For small populations (3–8 processes) the explorer
//! drives [`Engine`] through every choice of
//!
//! * **message ordering** — which due message is delivered next
//!   ([`OrderingMode`]: fixed FIFO, per-destination partial-order
//!   reduction, or the full interleaving set),
//! * **per-envelope drops** — each send may be killed, up to a drop
//!   budget, and
//! * **crash/recover points** — at each round boundary any alive
//!   process may crash (and, optionally, any explorer-crashed process
//!   may recover), up to a crash budget,
//!
//! asserting a pluggable [`Invariant`] set in **every reachable
//! state**. The walk is a depth-first search over cloned engines with
//! visited-state deduplication on [`Engine::state_digest`], bounded by
//! [`McConfig::max_rounds`] and [`McConfig::max_states`].
//!
//! Everything rides the production code path: choices are injected
//! through the [`Strategy`] seam into the same `step_round_with` that
//! production simulations run, crash points go through
//! [`Engine::schedule_fate`] (the scripted-fate path), and a violation
//! is reported as a [`Counterexample`] whose drops and fates replay as
//! an ordinary scripted [`FaultConfig`] on **either substrate** — the
//! simulator or the live worker-pool runtime — with its canonical
//! trace stream attached.
//!
//! # Soundness notes
//!
//! * The base [`SimConfig`] must be *choice-free*: reliable fixed-
//!   latency channels (every link), no RNG-driven failure model, no
//!   pre-scripted drops. [`Explorer::explore`] validates this and
//!   panics otherwise — randomness left in the base model would make
//!   "all interleavings" a lie. Scripted partitions are fine (they are
//!   pure functions of the tick).
//! * Per-destination partial-order reduction
//!   ([`OrderingMode::PerDestination`]) fixes the delivery order
//!   *between* destinations (ascending pid) and enumerates orders
//!   *within* each destination. Deliveries to different processes in
//!   the same round commute: process state and RNG streams are
//!   per-process, counter updates are commutative, and — because
//!   latency is clamped ≥ 1 — nothing sent during a round is delivered
//!   in it, so the round's due set is closed before delivery starts.
//!   End-of-round states are therefore preserved up to the order of
//!   same-round queue entries, which invariants cannot observe.
//! * Invariants are checked on round boundaries (every explored
//!   `step_round_with` successor), not between individual deliveries
//!   inside a round.
//!
//! # Cost
//!
//! Exhaustive exploration is exponential in budgets and population.
//! As a yardstick, a 3-process single-group dissemination with one
//! publish, full ordering, one drop and one crash explores a few
//! thousand states in well under a second; 5 processes with the same
//! budgets is ~10⁵–10⁶ states. Use [`McConfig::max_states`] to bound
//! the walk, and check [`ExploreStats::exhausted`] to know whether the
//! result is a proof (within the bounds) or a search.

use crate::engine::{Engine, Protocol, SimConfig};
use crate::failure::{FailureModel, Fate};
use crate::metrics::FxBuildHasher;
use crate::process::ProcessId;
use crate::strategy::{DueMessage, Strategy};
use da_core::channel::ChannelFate;
use da_core::fault::FaultConfig;
use da_core::topology::{DropSchedule, NetFate, NetworkModel, ScriptedDrop};
use da_core::trace::{canonicalize, TraceConfig, TraceEvent};
use rand::rngs::SmallRng;
use std::collections::{HashMap, HashSet};
use std::hash::Hasher;

/// Deterministic structural hashing for model-checker state digests.
///
/// Unlike `std::hash::Hash`, implementors must feed the hasher a
/// *canonical* byte stream: iteration-order-sensitive containers
/// (e.g. `HashSet`) must be folded order-independently (XOR of
/// per-element hashes) or sorted first, so that behaviorally equal
/// states always produce equal digests.
pub trait McHash {
    /// Feeds this value's canonical representation into `state`.
    fn mc_hash(&self, state: &mut dyn Hasher);
}

/// A safety property checked in every reachable state.
///
/// `check` runs after every explored round; `check_quiescent` runs
/// additionally on quiescent leaves (nothing delivered, nothing sent,
/// nothing in flight) — the place for convergence-style properties
/// that only hold once the protocol has settled.
pub trait Invariant<P: Protocol> {
    /// Short name, used in reports and counterexamples.
    fn name(&self) -> &str;

    /// Checks the property; `Err(detail)` is a violation.
    fn check(&self, engine: &Engine<P>) -> Result<(), String>;

    /// Extra check at quiescent leaves. Default: nothing.
    fn check_quiescent(&self, engine: &Engine<P>) -> Result<(), String> {
        let _ = engine;
        Ok(())
    }
}

/// How much delivery-order nondeterminism the explorer enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingMode {
    /// FIFO `(round, seq)` order only — no ordering choice points.
    /// Explores drop/crash nondeterminism but a single interleaving.
    Fixed,
    /// Partial-order reduction: fixed order between destinations
    /// (ascending pid), all orders within a destination. Sound for
    /// round-boundary invariants (see the module docs) and
    /// exponentially cheaper than [`OrderingMode::Full`].
    PerDestination,
    /// Every permutation of the round's due set. The reference mode.
    #[default]
    Full,
}

/// Bounds and knobs of one exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Depth bound: rounds explored per branch.
    pub max_rounds: u64,
    /// How many sends the explorer may kill along one branch.
    pub drop_budget: u32,
    /// How many crash injections along one branch.
    pub crash_budget: u32,
    /// Whether explorer-crashed processes may also recover (each
    /// recovery is a choice point; recoveries are free of budget).
    pub allow_recover: bool,
    /// Delivery-order enumeration mode.
    pub ordering: OrderingMode,
    /// Hard cap on distinct states; hitting it sets
    /// [`ExploreStats::truncated`] and clears `exhausted`.
    pub max_states: usize,
    /// Visited-set deduplication on [`Engine::state_digest`]. Leave on;
    /// exists so tests can measure its effect.
    pub dedup: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            max_rounds: 6,
            drop_budget: 0,
            crash_budget: 0,
            allow_recover: false,
            ordering: OrderingMode::Full,
            max_states: 1_000_000,
            dedup: true,
        }
    }
}

/// Search statistics of one exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states visited (root included).
    pub states: usize,
    /// Round executions performed (edges of the state graph, including
    /// ones that landed on an already-visited state).
    pub transitions: usize,
    /// Deepest round reached along any branch.
    pub max_round: u64,
    /// Successors discarded because their digest was already visited.
    pub dedup_hits: usize,
    /// Quiescent leaves (branches that settled before the depth bound).
    pub quiescent_leaves: usize,
    /// True when the walk hit [`McConfig::max_states`] and stopped.
    pub truncated: bool,
    /// True when every branch ran to quiescence or the depth bound —
    /// i.e. the invariants are *proven* within the configured bounds.
    pub exhausted: bool,
}

/// A violation found by the explorer, replayable as a scripted
/// [`FaultConfig`] on either substrate.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Name of the violated invariant.
    pub invariant: String,
    /// The invariant's failure detail.
    pub detail: String,
    /// Round after which the violation was observed.
    pub round: u64,
    /// Crash/recover fates injected along the branch.
    pub fates: Vec<Fate>,
    /// Sends the explorer killed along the branch.
    pub drops: Vec<ScriptedDrop>,
    /// Per-round ordering decision trails (diagnostic; orderings are
    /// not expressible in a `FaultConfig`).
    pub ordering_trails: Vec<(u64, Vec<usize>)>,
    /// True when replaying `to_fault_config` under plain FIFO
    /// `step_round` reproduces a violation — i.e. the counterexample
    /// does not depend on a non-FIFO interleaving.
    pub fifo_replayable: bool,
    /// Canonical trace stream of the FIFO replay (empty when the
    /// violation is order-dependent).
    pub trace: Vec<TraceEvent>,
}

impl Counterexample {
    /// The scripted fault configuration that replays this branch's
    /// drops and crashes on top of `base` — runnable on the simulator
    /// or the live runtime, with zero randomness involved.
    #[must_use]
    pub fn to_fault_config(&self, base: &FaultConfig) -> FaultConfig {
        FaultConfig {
            network: base
                .network
                .clone()
                .with_drops(DropSchedule::none().with_drops(self.drops.iter().copied())),
            failure: FailureModel::Schedule(self.fates.clone()),
        }
    }

    /// One-paragraph human rendering (invariant, round, injected
    /// faults).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "invariant `{}` violated after round {}: {} (injected {} drop(s), {} fate(s); {})",
            self.invariant,
            self.round,
            self.detail,
            self.drops.len(),
            self.fates.len(),
            if self.fifo_replayable {
                "replays under FIFO"
            } else {
                "order-dependent"
            }
        )
    }
}

/// Outcome of one exploration: statistics plus the first violation, if
/// any.
#[derive(Debug, Clone)]
pub struct McReport {
    /// Search statistics.
    pub stats: ExploreStats,
    /// First invariant violation found, or `None` when the bounded
    /// space is clean.
    pub violation: Option<Counterexample>,
}

impl McReport {
    /// True when no violation was found *and* the walk was exhaustive
    /// within its bounds.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.violation.is_none() && self.stats.exhausted
    }
}

/// The script-following strategy that walks one enumerated branch of a
/// round. Choices already on the trail are replayed; the first
/// un-scripted choice point and everything after it greedily takes
/// option 0, extending the trail, and sibling trails are emitted for
/// the options not taken — the classic schedule-tree enumeration.
struct ScriptStrategy {
    trail: Vec<usize>,
    options_at: Vec<usize>,
    pos: usize,
    fixed: usize,
    ordering: OrderingMode,
    drops_remaining: u32,
    drops_made: Vec<ScriptedDrop>,
    occurrences: HashMap<(ProcessId, ProcessId), u32, FxBuildHasher>,
}

impl ScriptStrategy {
    fn new(trail: Vec<usize>, drops_remaining: u32, ordering: OrderingMode) -> Self {
        let fixed = trail.len();
        ScriptStrategy {
            options_at: vec![0; fixed],
            trail,
            pos: 0,
            fixed,
            ordering,
            drops_remaining,
            drops_made: Vec::new(),
            occurrences: HashMap::default(),
        }
    }

    /// Picks among `options` alternatives: replay the trail, or extend
    /// it greedily with option 0. Single-option points consume no
    /// trail.
    fn choose(&mut self, options: usize) -> usize {
        if options <= 1 {
            return 0;
        }
        let pick = if self.pos < self.trail.len() {
            self.options_at[self.pos] = options;
            self.trail[self.pos]
        } else {
            self.trail.push(0);
            self.options_at.push(options);
            0
        };
        self.pos += 1;
        pick
    }

    /// Trails for the siblings of every choice point this run extended.
    fn siblings(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for i in self.fixed..self.trail.len() {
            for k in 1..self.options_at[i] {
                let mut trail = self.trail[..i].to_vec();
                trail.push(k);
                out.push(trail);
            }
        }
        out
    }
}

impl Strategy for ScriptStrategy {
    fn fate(
        &mut self,
        network: &NetworkModel,
        from: ProcessId,
        to: ProcessId,
        tick: u64,
        _occurrence: u32,
        _rng: &mut SmallRng,
    ) -> NetFate {
        // The engine only tracks occurrences when the *network* has
        // scripted drops; the explorer needs them regardless, to
        // record replayable drops, so it keeps its own per-round count.
        let occurrence = {
            let count = self.occurrences.entry((from, to)).or_insert(0);
            let this = *count;
            *count += 1;
            this
        };
        if network.severed(from, to, tick) {
            return NetFate::Severed;
        }
        // The base model is validated choice-free: exactly one channel
        // fate, decided without randomness.
        let deliver = match network.channel_between(from, to).enumerate_fates()[..] {
            [ChannelFate::Deliver { latency }] => NetFate::Deliver { latency },
            [ChannelFate::Lost] => return NetFate::Lost,
            _ => unreachable!("explore() validated the base model as choice-free"),
        };
        if self.drops_remaining == 0 {
            return deliver;
        }
        if self.choose(2) == 1 {
            self.drops_remaining -= 1;
            self.drops_made.push(ScriptedDrop {
                tick,
                from,
                to,
                occurrence,
            });
            NetFate::Lost
        } else {
            deliver
        }
    }

    fn next_delivery(&mut self, due: &[DueMessage]) -> usize {
        match self.ordering {
            OrderingMode::Fixed => 0,
            OrderingMode::PerDestination => {
                let first = due
                    .iter()
                    .map(|m| m.to)
                    .min()
                    .expect("engine never passes an empty due set");
                let candidates: Vec<usize> = due
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.to == first)
                    .map(|(i, _)| i)
                    .collect();
                candidates[self.choose(candidates.len())]
            }
            OrderingMode::Full => self.choose(due.len()),
        }
    }

    fn wants_ordering(&self) -> bool {
        !matches!(self.ordering, OrderingMode::Fixed)
    }
}

/// One node of the search: an engine state plus the branch that
/// reached it.
struct SearchNode<P: Protocol> {
    engine: Engine<P>,
    drops_used: u32,
    crashes_used: u32,
    /// Processes the explorer crashed (recovery candidates).
    crashed_by_us: Vec<ProcessId>,
    fates: Vec<Fate>,
    drops: Vec<ScriptedDrop>,
    ordering_trails: Vec<(u64, Vec<usize>)>,
}

/// The bounded model checker: a [`McConfig`] plus an [`Invariant`]
/// set, run over engines produced by a caller-supplied factory.
pub struct Explorer<P: Protocol> {
    config: McConfig,
    invariants: Vec<Box<dyn Invariant<P>>>,
}

impl<P> Explorer<P>
where
    P: Protocol + Clone + McHash,
    P::Msg: McHash,
{
    /// An explorer with the given bounds and no invariants.
    #[must_use]
    pub fn new(config: McConfig) -> Self {
        Explorer {
            config,
            invariants: Vec::new(),
        }
    }

    /// Adds an invariant to check in every reachable state.
    #[must_use]
    pub fn with_invariant<I: Invariant<P> + 'static>(mut self, invariant: I) -> Self {
        self.invariants.push(Box::new(invariant));
        self
    }

    /// Explores every bounded execution of the system `make` builds.
    ///
    /// `base` is the choice-free starting configuration; `make` must
    /// build a fresh engine (same processes, same initial state) from
    /// whatever `SimConfig` it is given — the explorer calls it once
    /// with tracing forced off for the root, and again with scripted
    /// faults and full tracing to verify and render a counterexample.
    ///
    /// # Panics
    ///
    /// Panics when `base` still contains nondeterminism the explorer
    /// does not control: a lossy or jittery channel (default or link
    /// override), an RNG-driven failure model, or pre-scripted drops.
    pub fn explore<F>(&self, base: &SimConfig, make: F) -> McReport
    where
        F: Fn(SimConfig) -> Engine<P>,
    {
        Self::validate_base(base);
        let mut root_config = base.clone();
        root_config.trace = TraceConfig::off();
        let root = make(root_config);

        let mut stats = ExploreStats {
            states: 1,
            exhausted: true,
            ..ExploreStats::default()
        };
        let mut visited: HashSet<u64> = HashSet::new();
        visited.insert(self.budgeted_digest(&root, 0, 0));

        let mut stack: Vec<SearchNode<P>> = vec![SearchNode {
            engine: root,
            drops_used: 0,
            crashes_used: 0,
            crashed_by_us: Vec::new(),
            fates: Vec::new(),
            drops: Vec::new(),
            ordering_trails: Vec::new(),
        }];

        while let Some(node) = stack.pop() {
            if node.engine.current_round() >= self.config.max_rounds {
                continue;
            }
            for liveness in self.liveness_options(&node) {
                // Enumerate every decision trail of this round via
                // sibling generation (see ScriptStrategy).
                let mut trails = vec![Vec::new()];
                while let Some(trail) = trails.pop() {
                    let mut engine = node.engine.clone();
                    if let Some(fate) = liveness {
                        engine.schedule_fate(fate);
                    }
                    let mut strategy = ScriptStrategy::new(
                        trail,
                        self.config.drop_budget - node.drops_used,
                        self.config.ordering,
                    );
                    let report = engine.step_round_with(&mut strategy);
                    trails.extend(strategy.siblings());
                    stats.transitions += 1;
                    stats.max_round = stats.max_round.max(engine.current_round());

                    let quiescent = report.is_quiet() && engine.in_flight() == 0;
                    if let Some(violation) = self.check_state(&engine, quiescent) {
                        let (invariant, detail) = violation;
                        let mut fates = node.fates.clone();
                        fates.extend(liveness);
                        let mut drops = node.drops.clone();
                        drops.extend(strategy.drops_made.iter().copied());
                        let mut ordering_trails = node.ordering_trails.clone();
                        ordering_trails.push((report.round, strategy.trail.clone()));
                        let counterexample = self.verify_fifo_replay(
                            base,
                            &make,
                            Counterexample {
                                invariant,
                                detail,
                                round: report.round,
                                fates,
                                drops,
                                ordering_trails,
                                fifo_replayable: false,
                                trace: Vec::new(),
                            },
                        );
                        stats.exhausted = false;
                        return McReport {
                            stats,
                            violation: Some(counterexample),
                        };
                    }

                    if quiescent && liveness.is_none() {
                        stats.quiescent_leaves += 1;
                        continue;
                    }

                    let drops_used = node.drops_used + strategy.drops_made.len() as u32;
                    let crashes_used =
                        node.crashes_used + u32::from(liveness.is_some_and(|f| f.crash));
                    if self.config.dedup {
                        let digest = self.budgeted_digest(&engine, drops_used, crashes_used);
                        if !visited.insert(digest) {
                            stats.dedup_hits += 1;
                            continue;
                        }
                    }
                    stats.states += 1;
                    if stats.states >= self.config.max_states {
                        stats.truncated = true;
                        stats.exhausted = false;
                        return McReport {
                            stats,
                            violation: None,
                        };
                    }

                    let mut crashed_by_us = node.crashed_by_us.clone();
                    if let Some(fate) = liveness {
                        if fate.crash {
                            crashed_by_us.push(fate.pid);
                        } else {
                            crashed_by_us.retain(|&p| p != fate.pid);
                        }
                    }
                    let mut fates = node.fates.clone();
                    fates.extend(liveness);
                    let mut drops = node.drops.clone();
                    drops.extend(strategy.drops_made.iter().copied());
                    let mut ordering_trails = node.ordering_trails.clone();
                    if !strategy.trail.is_empty() {
                        ordering_trails.push((report.round, strategy.trail.clone()));
                    }
                    stack.push(SearchNode {
                        engine,
                        drops_used,
                        crashes_used,
                        crashed_by_us,
                        fates,
                        drops,
                        ordering_trails,
                    });
                }
            }
        }

        McReport {
            stats,
            violation: None,
        }
    }

    /// The liveness choices at a round boundary: do nothing, crash any
    /// alive process (budget permitting), or recover any process the
    /// explorer previously crashed (when enabled).
    fn liveness_options(&self, node: &SearchNode<P>) -> Vec<Option<Fate>> {
        let round = node.engine.current_round();
        let mut options: Vec<Option<Fate>> = vec![None];
        if node.crashes_used < self.config.crash_budget {
            for pid in node.engine.alive() {
                options.push(Some(Fate {
                    round,
                    pid,
                    crash: true,
                }));
            }
        }
        if self.config.allow_recover {
            for &pid in &node.crashed_by_us {
                if !node.engine.status(pid).is_alive() {
                    options.push(Some(Fate {
                        round,
                        pid,
                        crash: false,
                    }));
                }
            }
        }
        options
    }

    /// Runs every invariant (plus quiescent checks at leaves);
    /// `Some((name, detail))` on the first failure.
    fn check_state(&self, engine: &Engine<P>, quiescent: bool) -> Option<(String, String)> {
        for invariant in &self.invariants {
            if let Err(detail) = invariant.check(engine) {
                return Some((invariant.name().to_string(), detail));
            }
            if quiescent {
                if let Err(detail) = invariant.check_quiescent(engine) {
                    return Some((invariant.name().to_string(), detail));
                }
            }
        }
        None
    }

    /// Digest of the engine state *plus* the branch budgets: two equal
    /// engine states with different remaining budgets have different
    /// reachable futures and must not be merged.
    fn budgeted_digest(&self, engine: &Engine<P>, drops_used: u32, crashes_used: u32) -> u64 {
        use std::hash::Hasher as _;
        let mut h = crate::metrics::FxHasher::default();
        h.write_u64(engine.state_digest());
        h.write_u32(drops_used);
        h.write_u32(crashes_used);
        h.finish()
    }

    /// Replays the counterexample's scripted faults under plain FIFO
    /// `step_round` with full tracing: when a violation reproduces,
    /// the counterexample is marked replayable and carries the
    /// canonical trace stream of the replay.
    fn verify_fifo_replay<F>(
        &self,
        base: &SimConfig,
        make: &F,
        mut counterexample: Counterexample,
    ) -> Counterexample
    where
        F: Fn(SimConfig) -> Engine<P>,
    {
        let mut replay_config = base.clone();
        replay_config.faults = counterexample.to_fault_config(&base.faults);
        replay_config.trace = TraceConfig::full();
        let mut engine = make(replay_config);
        for _ in 0..self.config.max_rounds {
            let report = engine.step_round();
            let quiescent = report.is_quiet() && engine.in_flight() == 0;
            if self.check_state(&engine, quiescent).is_some() {
                counterexample.fifo_replayable = true;
                let mut events = engine.trace_log().map(|log| log.events).unwrap_or_default();
                canonicalize(&mut events);
                counterexample.trace = events;
                return counterexample;
            }
            if quiescent {
                break;
            }
        }
        counterexample
    }

    /// Validates that `base` contains no nondeterminism the explorer
    /// does not control.
    fn validate_base(base: &SimConfig) {
        let network = &base.faults.network;
        assert!(
            network.channel.enumerate_fates().len() == 1,
            "model checking needs a choice-free default channel \
             (reliable, fixed latency); got {:?}",
            network.channel
        );
        if let Some(topology) = &network.topology {
            for (a, b, channel) in topology.links() {
                assert!(
                    channel.enumerate_fates().len() == 1,
                    "model checking needs choice-free link overrides; \
                     link {a}->{b} is {channel:?}"
                );
            }
        }
        assert!(
            network.drops.is_empty(),
            "base model must not pre-script drops; the explorer owns them"
        );
        assert!(
            matches!(base.faults.failure, FailureModel::None),
            "model checking needs FailureModel::None in the base \
             config; crash points are explored, not sampled"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Ctx;
    use crate::wire::WireSize;

    /// A deterministic broadcast protocol: process 0 sends one `Token`
    /// to everyone at start; receivers re-broadcast the first time they
    /// see it (flood). `buggy` skips the seen-check, re-broadcasting
    /// forever — the mutation the checker must catch.
    #[derive(Clone, Debug)]
    struct Flood {
        population: u32,
        seen: bool,
        deliveries: u32,
        buggy: bool,
    }

    #[derive(Clone, Debug)]
    struct Token;

    impl WireSize for Token {
        fn wire_size(&self) -> usize {
            1
        }
    }

    impl McHash for Token {
        fn mc_hash(&self, state: &mut dyn Hasher) {
            state.write_u8(1);
        }
    }

    impl McHash for Flood {
        fn mc_hash(&self, state: &mut dyn Hasher) {
            state.write_u8(u8::from(self.seen));
            state.write_u32(self.deliveries);
        }
    }

    impl Protocol for Flood {
        type Msg = Token;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Token>) {
            if ctx.me() == ProcessId(0) {
                self.seen = true;
                for i in 1..self.population {
                    ctx.send(ProcessId(i), Token);
                }
            }
        }

        fn on_message(&mut self, _from: ProcessId, _msg: Token, ctx: &mut Ctx<'_, Token>) {
            self.deliveries += 1;
            if !self.seen || self.buggy {
                self.seen = true;
                for i in 0..self.population {
                    if ProcessId(i) != ctx.me() {
                        ctx.send(ProcessId(i), Token);
                    }
                }
            }
        }
    }

    fn flood_engine(n: u32, buggy: bool) -> impl Fn(SimConfig) -> Engine<Flood> {
        move |config| {
            Engine::new(
                config,
                (0..n)
                    .map(|_| Flood {
                        population: n,
                        seen: false,
                        deliveries: 0,
                        buggy,
                    })
                    .collect(),
            )
        }
    }

    /// No process may deliver the token more than `population` times
    /// (a correct flood delivers ≤ n-1 copies; the buggy one loops).
    struct BoundedDeliveries;

    impl Invariant<Flood> for BoundedDeliveries {
        fn name(&self) -> &str {
            "bounded-deliveries"
        }

        fn check(&self, engine: &Engine<Flood>) -> Result<(), String> {
            for (pid, p) in engine.processes() {
                if p.deliveries >= p.population {
                    return Err(format!(
                        "{pid} delivered {} times (population {})",
                        p.deliveries, p.population
                    ));
                }
            }
            Ok(())
        }
    }

    /// At quiescence with no faults injected, everyone has seen the
    /// token.
    struct EveryoneSees;

    impl Invariant<Flood> for EveryoneSees {
        fn name(&self) -> &str {
            "everyone-sees"
        }

        fn check(&self, _engine: &Engine<Flood>) -> Result<(), String> {
            Ok(())
        }

        fn check_quiescent(&self, engine: &Engine<Flood>) -> Result<(), String> {
            for (pid, p) in engine.processes() {
                if !p.seen {
                    return Err(format!("{pid} never saw the token"));
                }
            }
            Ok(())
        }
    }

    #[test]
    fn exhaustive_clean_flood_verifies() {
        let explorer = Explorer::new(McConfig {
            max_rounds: 6,
            ..McConfig::default()
        })
        .with_invariant(BoundedDeliveries)
        .with_invariant(EveryoneSees);
        let report = explorer.explore(&SimConfig::default(), flood_engine(3, false));
        assert!(report.verified(), "clean flood must verify: {report:?}");
        assert!(report.stats.states > 1);
        assert!(report.stats.quiescent_leaves > 0);
    }

    #[test]
    fn ordering_modes_agree_on_reachable_verdicts() {
        // POR and Full must agree on the verdict (POR is sound for
        // round-boundary invariants); Fixed explores a subset.
        for ordering in [
            OrderingMode::Fixed,
            OrderingMode::PerDestination,
            OrderingMode::Full,
        ] {
            let explorer = Explorer::new(McConfig {
                max_rounds: 6,
                ordering,
                ..McConfig::default()
            })
            .with_invariant(BoundedDeliveries);
            let report = explorer.explore(&SimConfig::default(), flood_engine(3, false));
            assert!(report.verified(), "{ordering:?} must verify");
        }
    }

    #[test]
    fn por_explores_no_more_than_full() {
        let states = |ordering| {
            Explorer::new(McConfig {
                max_rounds: 6,
                ordering,
                ..McConfig::default()
            })
            .with_invariant(BoundedDeliveries)
            .explore(&SimConfig::default(), flood_engine(3, false))
            .stats
        };
        let fixed = states(OrderingMode::Fixed);
        let por = states(OrderingMode::PerDestination);
        let full = states(OrderingMode::Full);
        assert!(fixed.transitions <= por.transitions);
        assert!(por.transitions <= full.transitions);
    }

    #[test]
    fn buggy_flood_yields_replayable_counterexample() {
        let explorer = Explorer::new(McConfig {
            max_rounds: 6,
            ..McConfig::default()
        })
        .with_invariant(BoundedDeliveries);
        let report = explorer.explore(&SimConfig::default(), flood_engine(3, true));
        let ce = report.violation.expect("buggy flood must be caught");
        assert_eq!(ce.invariant, "bounded-deliveries");
        assert!(
            ce.fifo_replayable,
            "the rebroadcast loop does not depend on ordering: {ce:?}"
        );
        assert!(!ce.trace.is_empty(), "replay carries its trace stream");
        // And the scripted replay is an ordinary FaultConfig.
        let faults = ce.to_fault_config(&FaultConfig::new());
        assert!(matches!(faults.failure, FailureModel::Schedule(_)));
    }

    #[test]
    fn drop_budget_finds_lost_token() {
        // With one allowed drop, some branch kills the only send to a
        // leaf before any rebroadcast reaches it... but the flood
        // re-covers it from other processes, so EveryoneSees still
        // holds. Drop budget >= population-1 can sever a process
        // completely.
        let explorer = Explorer::new(McConfig {
            max_rounds: 8,
            drop_budget: 4,
            ordering: OrderingMode::PerDestination,
            ..McConfig::default()
        })
        .with_invariant(EveryoneSees);
        let report = explorer.explore(&SimConfig::default(), flood_engine(3, false));
        let ce = report.violation.expect("enough drops isolate a process");
        assert_eq!(ce.invariant, "everyone-sees");
        assert!(!ce.drops.is_empty());
        assert!(ce.fifo_replayable, "drops replay as scripted FaultConfig");
    }

    #[test]
    fn crash_budget_explores_crash_points() {
        // Crashing process 0 before its start hook exists... fates at
        // round 0 crash it before on_start, so the token never exists
        // and quiescence arrives with nobody (but 0) having seen it.
        let explorer = Explorer::new(McConfig {
            max_rounds: 6,
            crash_budget: 1,
            ordering: OrderingMode::Fixed,
            ..McConfig::default()
        })
        .with_invariant(EveryoneSees);
        let report = explorer.explore(&SimConfig::default(), flood_engine(3, false));
        let ce = report.violation.expect("a crash must break convergence");
        assert_eq!(ce.fates.len(), 1);
        assert!(ce.fates[0].crash);
        assert!(ce.fifo_replayable);
    }

    #[test]
    fn dedup_prunes_but_preserves_verdict() {
        let run = |dedup| {
            Explorer::new(McConfig {
                max_rounds: 5,
                dedup,
                ..McConfig::default()
            })
            .with_invariant(BoundedDeliveries)
            .explore(&SimConfig::default(), flood_engine(3, false))
        };
        let with = run(true);
        let without = run(false);
        assert!(with.verified() && without.verified());
        assert!(
            with.stats.dedup_hits > 0,
            "flood reconverges; dedup must hit"
        );
        assert!(with.stats.transitions <= without.stats.transitions);
    }

    #[test]
    fn max_states_cap_truncates() {
        let report = Explorer::new(McConfig {
            max_rounds: 6,
            max_states: 3,
            ..McConfig::default()
        })
        .with_invariant(BoundedDeliveries)
        .explore(&SimConfig::default(), flood_engine(3, false));
        assert!(report.stats.truncated);
        assert!(!report.verified());
    }

    #[test]
    #[should_panic(expected = "choice-free")]
    fn lossy_base_config_is_rejected() {
        let base = SimConfig::default().with_channel(crate::ChannelConfig::paper_default());
        let _ = Explorer::new(McConfig::default())
            .with_invariant(BoundedDeliveries)
            .explore(&base, flood_engine(3, false));
    }
}
