//! Failure models.
//!
//! The model moved to `da_core::failure`, one layer below the simulator,
//! so the live runtime's `LifecycleController` can materialise and apply
//! the *identical* [`FailurePlan`] (same seed ⇒ same fates on both
//! substrates). This module re-exports the whole surface under its
//! original `da_simnet` paths; the engine consumes the shared plan
//! unchanged.

pub use da_core::failure::{ChurnRates, FailureModel, FailurePlan, Fate};
