//! Failure models.
//!
//! The paper evaluates two regimes (Sec. VII):
//!
//! * **stillborn** (Figs. 8–10): "the state of a process (alive/failed) is
//!   set at the beginning of the simulation and does not change" — a fixed
//!   fraction of processes is crashed before round 0;
//! * **per-observer** (Fig. 11): "a process can appear to be failed for a
//!   process while appearing alive for another one (to simulate a weakly
//!   consistent membership algorithm)" — aliveness is sampled
//!   independently per transmission, so failures are uncorrelated across
//!   observers.
//!
//! [`FailureModel`] is the declarative description; [`FailurePlan`] is its
//! materialisation for one seeded run.

use crate::{derive_seed, rng_from_seed, ProcessId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A scripted liveness transition used by [`FailureModel::Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fate {
    /// Round at the start of which the transition applies.
    pub round: u64,
    /// The affected process.
    pub pid: ProcessId,
    /// `true` = crash, `false` = recover.
    pub crash: bool,
}

/// Declarative failure model of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum FailureModel {
    /// All processes stay alive for the whole run.
    #[default]
    None,
    /// A uniformly random `1 - alive_fraction` of the population is crashed
    /// before round 0 and never recovers (paper Figs. 8–10).
    Stillborn {
        /// Fraction of processes that remain alive, in `[0, 1]`.
        alive_fraction: f64,
    },
    /// Every transmission independently observes its target as failed with
    /// probability `1 - alive_fraction` (paper Fig. 11). No process is
    /// globally crashed.
    PerObserver {
        /// Per-observation probability that the target appears alive.
        alive_fraction: f64,
    },
    /// Scripted crash/recovery events, applied at the start of their round.
    Schedule(Vec<Fate>),
    /// Continuous churn (the paper's model assumption: "processes might
    /// crash and recover", Sec. III-A): at the start of every round each
    /// alive process crashes with `crash_probability` and each crashed
    /// process recovers with `recover_probability`. The stationary alive
    /// fraction is `recover / (crash + recover)`.
    Churn {
        /// Per-round probability that an alive process crashes.
        crash_probability: f64,
        /// Per-round probability that a crashed process recovers.
        recover_probability: f64,
    },
}

impl FailureModel {
    /// Materialises the model for a run over `population` processes,
    /// deriving all randomness from `seed`.
    #[must_use]
    pub fn materialize(&self, population: usize, seed: u64) -> FailurePlan {
        match self {
            FailureModel::None => FailurePlan {
                initially_crashed: Vec::new(),
                observer_alive_probability: None,
                schedule: Vec::new(),
                churn: None,
                observation_seed: seed,
            },
            FailureModel::Stillborn { alive_fraction } => {
                let alive_fraction = alive_fraction.clamp(0.0, 1.0);
                let mut rng = rng_from_seed(derive_seed(seed, 0xFA11));
                let mut ids: Vec<ProcessId> = (0..population).map(ProcessId::from_index).collect();
                ids.shuffle(&mut rng);
                // Round half-up so alive_fraction=1.0 keeps everyone alive
                // and 0.0 crashes everyone.
                let crashed = population - (alive_fraction * population as f64).round() as usize;
                ids.truncate(crashed);
                FailurePlan {
                    initially_crashed: ids,
                    observer_alive_probability: None,
                    schedule: Vec::new(),
                    churn: None,
                    observation_seed: seed,
                }
            }
            FailureModel::PerObserver { alive_fraction } => FailurePlan {
                initially_crashed: Vec::new(),
                observer_alive_probability: Some(alive_fraction.clamp(0.0, 1.0)),
                schedule: Vec::new(),
                churn: None,
                observation_seed: derive_seed(seed, 0x0B5E),
            },
            FailureModel::Schedule(fates) => {
                let mut schedule = fates.clone();
                schedule.sort_by_key(|f| (f.round, f.pid));
                FailurePlan {
                    initially_crashed: Vec::new(),
                    observer_alive_probability: None,
                    schedule,
                    churn: None,
                    observation_seed: seed,
                }
            }
            FailureModel::Churn {
                crash_probability,
                recover_probability,
            } => FailurePlan {
                initially_crashed: Vec::new(),
                observer_alive_probability: None,
                schedule: Vec::new(),
                churn: Some(ChurnRates {
                    crash: crash_probability.clamp(0.0, 1.0),
                    recover: recover_probability.clamp(0.0, 1.0),
                }),
                observation_seed: seed,
            },
        }
    }
}

/// Per-round crash/recovery probabilities of the churn model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnRates {
    /// Per-round crash probability of alive processes.
    pub crash: f64,
    /// Per-round recovery probability of crashed processes.
    pub recover: f64,
}

/// A materialised failure plan for one seeded run. Produced by
/// [`FailureModel::materialize`]; consumed by the engine.
#[derive(Debug, Clone)]
pub struct FailurePlan {
    initially_crashed: Vec<ProcessId>,
    observer_alive_probability: Option<f64>,
    schedule: Vec<Fate>,
    churn: Option<ChurnRates>,
    observation_seed: u64,
}

impl FailurePlan {
    /// Processes crashed before round 0.
    #[must_use]
    pub fn initially_crashed(&self) -> &[ProcessId] {
        &self.initially_crashed
    }

    /// Per-observation aliveness probability, if the model is
    /// [`FailureModel::PerObserver`].
    #[must_use]
    pub fn observer_alive_probability(&self) -> Option<f64> {
        self.observer_alive_probability
    }

    /// The churn rates, when the model is [`FailureModel::Churn`].
    #[must_use]
    pub fn churn(&self) -> Option<ChurnRates> {
        self.churn
    }

    /// Scripted transitions applying at the start of `round`.
    pub fn fates_at(&self, round: u64) -> impl Iterator<Item = &Fate> {
        self.schedule.iter().filter(move |f| f.round == round)
    }

    /// Samples whether one particular transmission observes its target as
    /// alive. Deterministic in `(seed, sequence)` so replays agree.
    #[must_use]
    pub fn observes_alive<R: Rng>(&self, rng: &mut R) -> bool {
        match self.observer_alive_probability {
            None => true,
            Some(p) => rng.gen_bool(p),
        }
    }

    /// Seed reserved for observation sampling.
    #[must_use]
    pub fn observation_seed(&self) -> u64 {
        self.observation_seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_crashes_nobody() {
        let plan = FailureModel::None.materialize(100, 1);
        assert!(plan.initially_crashed().is_empty());
        assert_eq!(plan.observer_alive_probability(), None);
    }

    #[test]
    fn stillborn_crashes_expected_count() {
        let plan = FailureModel::Stillborn {
            alive_fraction: 0.7,
        }
        .materialize(1000, 1);
        assert_eq!(plan.initially_crashed().len(), 300);
    }

    #[test]
    fn stillborn_extremes() {
        let all_alive = FailureModel::Stillborn {
            alive_fraction: 1.0,
        }
        .materialize(50, 9);
        assert!(all_alive.initially_crashed().is_empty());
        let all_dead = FailureModel::Stillborn {
            alive_fraction: 0.0,
        }
        .materialize(50, 9);
        assert_eq!(all_dead.initially_crashed().len(), 50);
    }

    #[test]
    fn stillborn_is_seed_deterministic() {
        let m = FailureModel::Stillborn {
            alive_fraction: 0.5,
        };
        let a = m.materialize(100, 7);
        let b = m.materialize(100, 7);
        assert_eq!(a.initially_crashed(), b.initially_crashed());
        let c = m.materialize(100, 8);
        assert_ne!(a.initially_crashed(), c.initially_crashed());
    }

    #[test]
    fn per_observer_samples_with_probability() {
        let plan = FailureModel::PerObserver {
            alive_fraction: 0.5,
        }
        .materialize(10, 3);
        let mut rng = rng_from_seed(plan.observation_seed());
        let alive = (0..10_000)
            .filter(|_| plan.observes_alive(&mut rng))
            .count();
        assert!((4_500..5_500).contains(&alive), "got {alive}");
    }

    #[test]
    fn per_observer_one_always_observes_alive() {
        let plan = FailureModel::PerObserver {
            alive_fraction: 1.0,
        }
        .materialize(10, 3);
        let mut rng = rng_from_seed(0);
        assert!((0..100).all(|_| plan.observes_alive(&mut rng)));
    }

    #[test]
    fn schedule_sorted_and_filtered() {
        let plan = FailureModel::Schedule(vec![
            Fate {
                round: 5,
                pid: ProcessId(1),
                crash: true,
            },
            Fate {
                round: 2,
                pid: ProcessId(0),
                crash: true,
            },
            Fate {
                round: 5,
                pid: ProcessId(0),
                crash: false,
            },
        ])
        .materialize(10, 0);
        assert_eq!(plan.fates_at(2).count(), 1);
        assert_eq!(plan.fates_at(5).count(), 2);
        assert_eq!(plan.fates_at(9).count(), 0);
    }

    #[test]
    fn clamps_out_of_range_fractions() {
        let plan = FailureModel::Stillborn {
            alive_fraction: 2.0,
        }
        .materialize(10, 0);
        assert!(plan.initially_crashed().is_empty());
        let plan = FailureModel::PerObserver {
            alive_fraction: -1.0,
        }
        .materialize(10, 0);
        assert_eq!(plan.observer_alive_probability(), Some(0.0));
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;

    #[test]
    fn churn_materialises_rates() {
        let plan = FailureModel::Churn {
            crash_probability: 0.1,
            recover_probability: 0.4,
        }
        .materialize(10, 1);
        let rates = plan.churn().expect("churn rates present");
        assert!((rates.crash - 0.1).abs() < 1e-12);
        assert!((rates.recover - 0.4).abs() < 1e-12);
        assert!(plan.initially_crashed().is_empty());
    }

    #[test]
    fn churn_rates_clamped() {
        let plan = FailureModel::Churn {
            crash_probability: 2.0,
            recover_probability: -1.0,
        }
        .materialize(10, 1);
        let rates = plan.churn().unwrap();
        assert_eq!(rates.crash, 1.0);
        assert_eq!(rates.recover, 0.0);
    }

    #[test]
    fn non_churn_models_have_no_rates() {
        assert!(FailureModel::None.materialize(5, 0).churn().is_none());
        assert!(FailureModel::Stillborn {
            alive_fraction: 0.5
        }
        .materialize(5, 0)
        .churn()
        .is_none());
    }
}
