//! The round-driven simulation engine.

use crate::event::{InFlight, MessageQueue};
use crate::failure::{FailureModel, FailurePlan, Fate};
use crate::metrics::{CounterId, Counters, FxBuildHasher, Histogram, TraceLog};
use crate::process::{ProcessId, ProcessStatus};
use crate::rng::{derive_seed, rng_from_seed};
use crate::strategy::{DueMessage, RngStrategy, Strategy};
use crate::wire::WireSize;
use da_core::channel::ChannelConfig;
use da_core::fault::FaultConfig;
use da_core::store::ProcessStore;
use da_core::topology::{NetFate, NetworkModel, PartitionSchedule, Topology};
use da_core::trace::{TraceConfig, TraceEvent, TraceRecorder, TraceVerdict};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A protocol running at every simulated process.
///
/// The engine drives one instance per process: [`Protocol::on_start`] once
/// before round 0, [`Protocol::on_message`] for each delivered message, and
/// [`Protocol::on_round`] once per round while the process is alive.
/// Messages sent from within the hooks travel through the unreliable
/// channel and arrive in a later round.
pub trait Protocol {
    /// The protocol's message type.
    type Msg: Clone + std::fmt::Debug + WireSize;

    /// Called once before round 0. Default: no-op.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message addressed to this process survives the channel
    /// and the process is alive.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called once per round for alive processes, after all deliveries due
    /// that round. Default: no-op.
    fn on_round(&mut self, round: u64, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = (round, ctx);
    }

    /// Called when the failure plan recovers this process (a scripted
    /// [`crate::Fate`] or a churn draw), at the start of the recovery
    /// round and before any delivery — the protocol's chance to re-enter
    /// via its bootstrap path. Not invoked by the manual
    /// [`Engine::recover`] escape hatch. Default: no-op.
    fn on_recover(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }
}

/// Configuration of one simulation run.
///
/// The derived `Default` (seed 0, faultless [`FaultConfig`]: reliable
/// channels, no topology, no partitions, no failures) is the single
/// source of truth; [`SimConfig::new`] delegates to it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed from which every RNG stream is derived.
    pub seed: u64,
    /// The unified fault surface: network model (channel + topology +
    /// partitions) and process failure model — the same
    /// `da_core::fault::FaultConfig` the live runtime's config embeds.
    pub faults: FaultConfig,
    /// Flight-recorder configuration (default: off — the engine holds no
    /// recorder and the hot path pays one branch on a `None`).
    pub trace: TraceConfig,
}

impl SimConfig {
    /// Configuration with reliable channels, no failures, seed 0.
    #[must_use]
    pub fn new() -> Self {
        SimConfig::default()
    }

    /// Replaces the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the whole fault surface in one step.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the default channel configuration.
    #[must_use]
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.faults.network.channel = channel;
        self
    }

    /// Replaces the failure model (named to match
    /// `RuntimeConfig::with_failures`).
    #[must_use]
    pub fn with_failures(mut self, failure: FailureModel) -> Self {
        self.faults.failure = failure;
        self
    }

    /// Installs a topology (placement + per-link channel overrides).
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.faults.network.topology = Some(topology);
        self
    }

    /// Installs a partition schedule.
    #[must_use]
    pub fn with_partitions(mut self, partitions: PartitionSchedule) -> Self {
        self.faults.network.partitions = partitions;
        self
    }

    /// Replaces the flight-recorder configuration (same shape as
    /// `RuntimeConfig::with_trace`).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// The network model's default channel.
    #[must_use]
    pub fn channel(&self) -> ChannelConfig {
        self.faults.network.channel
    }

    /// The process failure model.
    #[must_use]
    pub fn failure(&self) -> &FailureModel {
        &self.faults.failure
    }
}

/// Per-callback execution context handed to [`Protocol`] hooks.
///
/// Provides the process identity, the current round, a deterministic
/// per-process RNG, the shared metrics registry, and the outbox.
pub struct Ctx<'a, M> {
    me: ProcessId,
    round: u64,
    rng: &'a mut SmallRng,
    counters: &'a mut Counters,
    outbox: &'a mut Vec<(ProcessId, M)>,
}

impl<M> Ctx<'_, M> {
    /// The process this callback runs at.
    #[must_use]
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The current round (virtual time).
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Queues a best-effort message to `to`. The message is subject to
    /// channel loss, latency, and the failure model.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// The deterministic RNG stream of this process.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// The shared metrics registry.
    pub fn counters(&mut self) -> &mut Counters {
        self.counters
    }
}

/// Summary of one executed round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundReport {
    /// The round that was executed.
    pub round: u64,
    /// Messages handed to `on_message` this round.
    pub delivered: u64,
    /// Messages queued for sending during this round.
    pub sent: u64,
}

impl RoundReport {
    /// True when the round neither delivered nor produced messages —
    /// the usual quiescence criterion.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.delivered == 0 && self.sent == 0
    }
}

/// Pre-registered ids for the counters the engine hot path touches on
/// every send and delivery, so simulating a message costs array
/// increments instead of string-keyed map probes — the same fast path
/// the live runtime's transport uses.
#[derive(Debug, Clone, Copy)]
struct SimHotIds {
    sent: CounterId,
    bytes_sent: CounterId,
    delivered: CounterId,
    dropped_channel: CounterId,
    dropped_partitioned: CounterId,
    dropped_dead: CounterId,
    dropped_observed_failed: CounterId,
    churn_crashes: CounterId,
    churn_recoveries: CounterId,
}

impl SimHotIds {
    fn register(counters: &mut Counters) -> Self {
        SimHotIds {
            sent: counters.register("sim.sent"),
            bytes_sent: counters.register("sim.bytes_sent"),
            delivered: counters.register("sim.delivered"),
            dropped_channel: counters.register("sim.dropped_channel"),
            dropped_partitioned: counters.register("sim.dropped_partitioned"),
            dropped_dead: counters.register("sim.dropped_dead"),
            dropped_observed_failed: counters.register("sim.dropped_observed_failed"),
            churn_crashes: counters.register("sim.churn_crashes"),
            churn_recoveries: counters.register("sim.churn_recoveries"),
        }
    }
}

/// The engine's flight-recorder state when tracing is enabled: the
/// event recorder plus the sim-side trace histograms.
#[derive(Debug, Clone)]
struct SimTrace {
    recorder: TraceRecorder,
    /// Delivery round minus send round, per delivered message.
    delivery_latency: Histogram,
    /// In-flight queue length sampled at the end of every round — the
    /// simulator's analogue of the runtime's delay-wheel occupancy.
    queue_depth: Histogram,
}

impl SimTrace {
    fn new(config: &TraceConfig) -> Option<Self> {
        TraceRecorder::new(config).map(|recorder| SimTrace {
            recorder,
            delivery_latency: Histogram::new(),
            queue_depth: Histogram::new(),
        })
    }
}

/// The round-driven simulation engine.
///
/// Owns one [`Protocol`] instance per process (`ProcessId` = index), the
/// in-flight message queue, the failure plan, and the metrics registry.
/// See the crate-level docs for an end-to-end example.
///
/// `Engine` is `Clone` when the protocol is: a clone is an independent
/// parallel universe (every RNG stream, queued message, and counter
/// duplicated) that steps identically until driven differently. The
/// bounded model checker forks universes this way at each choice point.
#[derive(Clone)]
pub struct Engine<P: Protocol> {
    store: ProcessStore<P>,
    status: Vec<ProcessStatus>,
    queue: MessageQueue<P::Msg>,
    counters: Counters,
    hot: SimHotIds,
    network: NetworkModel,
    plan: FailurePlan,
    engine_rng: SmallRng,
    observer_rng: SmallRng,
    trace: Option<SimTrace>,
    round: u64,
    started: bool,
    /// Per-round `(from, to)` send counts, maintained only when the
    /// network has scripted drops (`track_occurrences`); feeds the
    /// occurrence argument of [`Strategy::fate`].
    occurrences: HashMap<(ProcessId, ProcessId), u32, FxBuildHasher>,
    track_occurrences: bool,
}

impl<P: Protocol> Engine<P> {
    /// Builds an engine over `processes` (process `i` gets `ProcessId(i)`).
    ///
    /// The failure model is materialised immediately: stillborn processes
    /// are crashed before round 0.
    #[must_use]
    pub fn new(config: SimConfig, processes: Vec<P>) -> Self {
        let population = processes.len();
        let plan = config.faults.failure.materialize(population, config.seed);
        let mut status = vec![ProcessStatus::Alive; population];
        for pid in plan.initially_crashed() {
            status[pid.index()] = ProcessStatus::Crashed;
        }
        let mut store = ProcessStore::with_capacity(config.seed, population);
        for p in processes {
            store.push(p);
        }
        let mut counters = Counters::new();
        let hot = SimHotIds::register(&mut counters);
        let track_occurrences = !config.faults.network.drops.is_empty();
        Engine {
            store,
            status,
            queue: MessageQueue::new(),
            counters,
            hot,
            network: config.faults.network,
            observer_rng: rng_from_seed(plan.observation_seed()),
            plan,
            engine_rng: rng_from_seed(derive_seed(config.seed, 0)),
            trace: SimTrace::new(&config.trace),
            round: 0,
            started: false,
            occurrences: HashMap::default(),
            track_occurrences,
        }
    }

    /// Number of simulated processes.
    #[must_use]
    pub fn population(&self) -> usize {
        self.store.len()
    }

    /// The protocol instance at `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn process(&self, pid: ProcessId) -> &P {
        self.store.get(pid.index())
    }

    /// Mutable access to the protocol instance at `pid` (e.g. to inject a
    /// publication before running).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn process_mut(&mut self, pid: ProcessId) -> &mut P {
        self.store.get_mut(pid.index())
    }

    /// Iterates over `(pid, protocol)` pairs.
    pub fn processes(&self) -> impl Iterator<Item = (ProcessId, &P)> {
        self.store
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcessId::from_index(i), p))
    }

    /// Consumes the engine, returning the protocol instances.
    #[must_use]
    pub fn into_processes(self) -> Vec<P> {
        self.store.into_processes()
    }

    /// Liveness of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn status(&self, pid: ProcessId) -> ProcessStatus {
        self.status[pid.index()]
    }

    /// Ids of currently alive processes.
    #[must_use]
    pub fn alive(&self) -> Vec<ProcessId> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_alive())
            .map(|(i, _)| ProcessId::from_index(i))
            .collect()
    }

    /// Crashes `pid` immediately: it stops executing and receiving.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn crash(&mut self, pid: ProcessId) {
        self.status[pid.index()] = ProcessStatus::Crashed;
    }

    /// Recovers `pid` immediately: it resumes at the next round.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn recover(&mut self, pid: ProcessId) {
        self.status[pid.index()] = ProcessStatus::Alive;
    }

    /// The shared metrics registry.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// A snapshot of the flight recorder's output so far — events in
    /// capture order, per-verdict totals, and the sim-side histograms
    /// (`delivery_latency_ticks`, `queue_depth`) — or `None` when the
    /// [`SimConfig::trace`] mode is off.
    #[must_use]
    pub fn trace_log(&self) -> Option<TraceLog> {
        self.trace.as_ref().map(|t| {
            let mut log = TraceLog::new();
            log.events = t.recorder.events().to_vec();
            log.dropped_events = t.recorder.dropped();
            log.verdict_counts = *t.recorder.counts();
            log.add_histogram("delivery_latency_ticks", &t.delivery_latency);
            log.add_histogram("queue_depth", &t.queue_depth);
            log
        })
    }

    /// The next round to execute.
    #[must_use]
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// Number of messages currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Earliest delivery round among in-flight messages, or `None` when
    /// nothing is queued — lets drivers skip provably quiet rounds.
    #[must_use]
    pub fn next_delivery_round(&self) -> Option<u64> {
        self.queue.next_round()
    }

    /// Schedules a crash/recover [`Fate`] for a future round through
    /// the failure plan — the exact path a replayed
    /// [`FailureModel::Schedule`] takes, including trace lifecycle
    /// events and [`Protocol::on_recover`] hooks. The model checker
    /// injects explored crash points here, so a counterexample's fates
    /// replay verbatim as an ordinary scripted failure model.
    ///
    /// # Panics
    ///
    /// Panics if `fate.pid` is out of the population or `fate.round`
    /// has already executed (the plan is consulted at the start of
    /// each round).
    pub fn schedule_fate(&mut self, fate: Fate) {
        assert!(
            fate.pid.index() < self.store.len(),
            "fate pid {} out of population {}",
            fate.pid,
            self.store.len()
        );
        assert!(
            fate.round >= self.round,
            "fate round {} already executed (next round is {})",
            fate.round,
            self.round
        );
        self.plan.push_fate(fate);
    }

    /// Runs one round: applies scheduled fates and churn draws (invoking
    /// [`Protocol::on_recover`] for plan-driven recoveries), calls
    /// `on_start` hooks (first round only), delivers all messages due,
    /// then runs `on_round` for every alive process in pid order.
    pub fn step_round(&mut self) -> RoundReport {
        self.step_round_with(&mut RngStrategy)
    }

    /// [`step_round`](Self::step_round) with an explicit [`Strategy`]
    /// deciding send fates and delivery order. `step_round` is exactly
    /// `step_round_with(&mut RngStrategy)`; the model checker passes a
    /// script-following strategy to walk one enumerated branch instead.
    pub fn step_round_with<S: Strategy>(&mut self, strategy: &mut S) -> RoundReport {
        let round = self.round;
        if self.track_occurrences {
            self.occurrences.clear();
        }
        let mut report = RoundReport {
            round,
            ..RoundReport::default()
        };

        // Scripted fates apply at the start of the round.
        let fates: Vec<_> = self.plan.fates_at(round).copied().collect();
        let mut recovered: Vec<usize> = Vec::new();
        for fate in fates {
            let i = fate.pid.index();
            let was_alive = self.status[i].is_alive();
            if fate.crash {
                self.status[i] = ProcessStatus::Crashed;
                if was_alive {
                    if let Some(t) = self.trace.as_mut() {
                        t.recorder.record(TraceEvent::lifecycle(
                            round,
                            fate.pid,
                            TraceVerdict::Crashed,
                        ));
                    }
                }
            } else {
                if !was_alive {
                    recovered.push(i);
                    if let Some(t) = self.trace.as_mut() {
                        t.recorder.record(TraceEvent::lifecycle(
                            round,
                            fate.pid,
                            TraceVerdict::Recovered,
                        ));
                    }
                }
                self.status[i] = ProcessStatus::Alive;
            }
        }

        // Continuous churn: stateless per-(pid, round) draws from the
        // shared plan — the exact fates the live runtime reproduces.
        if self.plan.churn().is_some() {
            for i in 0..self.status.len() {
                let alive = self.status[i].is_alive();
                if self
                    .plan
                    .churn_flips(ProcessId::from_index(i), round, alive)
                {
                    if alive {
                        self.status[i] = ProcessStatus::Crashed;
                        self.counters.add(self.hot.churn_crashes, 1);
                        if let Some(t) = self.trace.as_mut() {
                            t.recorder.record(TraceEvent::lifecycle(
                                round,
                                ProcessId::from_index(i),
                                TraceVerdict::Crashed,
                            ));
                        }
                    } else {
                        self.status[i] = ProcessStatus::Alive;
                        self.counters.add(self.hot.churn_recoveries, 1);
                        recovered.push(i);
                        if let Some(t) = self.trace.as_mut() {
                            t.recorder.record(TraceEvent::lifecycle(
                                round,
                                ProcessId::from_index(i),
                                TraceVerdict::Recovered,
                            ));
                        }
                    }
                }
            }
        }

        let mut outbox: Vec<(ProcessId, P::Msg)> = Vec::new();

        // Recovery re-entry, before any delivery of the round: processes
        // the plan just brought back run their `on_recover` hook (the
        // protocol's bootstrap re-entry path), in pid order.
        recovered.sort_unstable();
        recovered.dedup();
        for i in recovered {
            if !self.status[i].is_alive() {
                continue; // re-crashed in the same round
            }
            let me = ProcessId::from_index(i);
            let (proc_state, rng) = self.store.pair_mut(i, me);
            let mut ctx = Ctx {
                me,
                round,
                rng,
                counters: &mut self.counters,
                outbox: &mut outbox,
            };
            proc_state.on_recover(&mut ctx);
            report.sent += Self::flush_outbox(
                &mut outbox,
                me,
                round,
                &self.network,
                &self.hot,
                &mut self.engine_rng,
                &mut self.queue,
                &mut self.counters,
                &mut self.trace,
                strategy,
                &mut self.occurrences,
                self.track_occurrences,
            );
        }

        if !self.started {
            self.started = true;
            for i in 0..self.store.len() {
                if !self.status[i].is_alive() {
                    continue;
                }
                let me = ProcessId::from_index(i);
                let (proc_state, rng) = self.store.pair_mut(i, me);
                let mut ctx = Ctx {
                    me,
                    round,
                    rng,
                    counters: &mut self.counters,
                    outbox: &mut outbox,
                };
                proc_state.on_start(&mut ctx);
                let sent = Self::flush_outbox(
                    &mut outbox,
                    me,
                    round,
                    &self.network,
                    &self.hot,
                    &mut self.engine_rng,
                    &mut self.queue,
                    &mut self.counters,
                    &mut self.trace,
                    strategy,
                    &mut self.occurrences,
                    self.track_occurrences,
                );
                report.sent += sent;
            }
        }

        // Deliver everything due this round (including stragglers from
        // earlier rounds when a latency model produced them). Latency is
        // clamped ≥ 1, so nothing sent while delivering can become due
        // in the same round: the due set is closed before delivery
        // starts, which is what lets an ordering strategy see it whole.
        if strategy.wants_ordering() {
            let mut due: Vec<InFlight<P::Msg>> = Vec::new();
            while let Some(m) = self.queue.pop_due(round) {
                due.push(m);
            }
            let mut meta: Vec<DueMessage> = due
                .iter()
                .map(|m| DueMessage {
                    sent: m.sent,
                    from: m.from,
                    to: m.to,
                })
                .collect();
            while !due.is_empty() {
                let idx = strategy.next_delivery(&meta).min(due.len() - 1);
                meta.remove(idx);
                let m = due.remove(idx);
                self.deliver_one(m, round, &mut outbox, &mut report, strategy);
            }
        } else {
            // FIFO (round, seq) pops — the historical hot path, no
            // per-round allocation.
            while let Some(m) = self.queue.pop_due(round) {
                self.deliver_one(m, round, &mut outbox, &mut report, strategy);
            }
        }

        // Round hooks for alive processes, in pid order.
        for i in 0..self.store.len() {
            if !self.status[i].is_alive() {
                continue;
            }
            let me = ProcessId::from_index(i);
            let (proc_state, rng) = self.store.pair_mut(i, me);
            let mut ctx = Ctx {
                me,
                round,
                rng,
                counters: &mut self.counters,
                outbox: &mut outbox,
            };
            proc_state.on_round(round, &mut ctx);
            let sent = Self::flush_outbox(
                &mut outbox,
                me,
                round,
                &self.network,
                &self.hot,
                &mut self.engine_rng,
                &mut self.queue,
                &mut self.counters,
                &mut self.trace,
                strategy,
                &mut self.occurrences,
                self.track_occurrences,
            );
            report.sent += sent;
        }

        if let Some(t) = self.trace.as_mut() {
            t.queue_depth.record(self.queue.len() as u64);
        }
        self.round += 1;
        report
    }

    /// Runs exactly `rounds` rounds and returns their reports.
    pub fn run_rounds(&mut self, rounds: u64) -> Vec<RoundReport> {
        (0..rounds).map(|_| self.step_round()).collect()
    }

    /// Runs until a round is quiet (nothing delivered, nothing sent, and no
    /// messages left in flight) or `max_rounds` have executed. Returns the
    /// number of rounds executed.
    pub fn run_until_quiescent(&mut self, max_rounds: u64) -> u64 {
        for executed in 0..max_rounds {
            let report = self.step_round();
            if report.is_quiet() && self.queue.is_empty() {
                return executed + 1;
            }
        }
        max_rounds
    }

    /// Delivers one due message: dead/observed checks, counters and
    /// trace, the `on_message` hook, and the flush of whatever it sent.
    fn deliver_one<S: Strategy>(
        &mut self,
        m: InFlight<P::Msg>,
        round: u64,
        outbox: &mut Vec<(ProcessId, P::Msg)>,
        report: &mut RoundReport,
        strategy: &mut S,
    ) {
        let to = m.to;
        if !self.status[to.index()].is_alive() {
            self.counters.add(self.hot.dropped_dead, 1);
            if let Some(t) = self.trace.as_mut() {
                t.recorder.record(TraceEvent {
                    tick: round,
                    from: m.from,
                    to,
                    payload: m.msg.wire_size() as u64,
                    verdict: TraceVerdict::DroppedCrashed,
                });
            }
            return;
        }
        // Per-observer failure model: the target appears failed for
        // this particular transmission.
        if !self.plan.observes_alive(&mut self.observer_rng) {
            self.counters.add(self.hot.dropped_observed_failed, 1);
            if let Some(t) = self.trace.as_mut() {
                t.recorder.record(TraceEvent {
                    tick: round,
                    from: m.from,
                    to,
                    payload: m.msg.wire_size() as u64,
                    verdict: TraceVerdict::DroppedObserved,
                });
            }
            return;
        }
        report.delivered += 1;
        self.counters.add(self.hot.delivered, 1);
        if let Some(t) = self.trace.as_mut() {
            t.recorder.record(TraceEvent {
                tick: round,
                from: m.from,
                to,
                payload: m.msg.wire_size() as u64,
                verdict: TraceVerdict::Delivered,
            });
            t.delivery_latency.record(round - m.sent);
        }
        let (proc_state, rng) = self.store.pair_mut(to.index(), to);
        let mut ctx = Ctx {
            me: to,
            round,
            rng,
            counters: &mut self.counters,
            outbox,
        };
        proc_state.on_message(m.from, m.msg, &mut ctx);
        report.sent += Self::flush_outbox(
            outbox,
            to,
            round,
            &self.network,
            &self.hot,
            &mut self.engine_rng,
            &mut self.queue,
            &mut self.counters,
            &mut self.trace,
            strategy,
            &mut self.occurrences,
            self.track_occurrences,
        );
    }

    /// Routes queued sends through the network model: counts them,
    /// checks the partition schedule (a pure severed/not decision that
    /// consumes no randomness), asks the [`Strategy`] for each
    /// surviving send's fate (the default draws from the shared
    /// `da_core` channel model of its link, on the engine's single RNG
    /// stream), and enqueues survivors.
    #[allow(clippy::too_many_arguments)]
    fn flush_outbox<S: Strategy>(
        outbox: &mut Vec<(ProcessId, P::Msg)>,
        from: ProcessId,
        round: u64,
        network: &NetworkModel,
        hot: &SimHotIds,
        engine_rng: &mut SmallRng,
        queue: &mut MessageQueue<P::Msg>,
        counters: &mut Counters,
        trace: &mut Option<SimTrace>,
        strategy: &mut S,
        occurrences: &mut HashMap<(ProcessId, ProcessId), u32, FxBuildHasher>,
        track_occurrences: bool,
    ) -> u64 {
        let mut sent = 0;
        for (to, msg) in outbox.drain(..) {
            sent += 1;
            let size = msg.wire_size() as u64;
            counters.add(hot.sent, 1);
            counters.add(hot.bytes_sent, size);
            let occurrence = if track_occurrences {
                let count = occurrences.entry((from, to)).or_insert(0);
                let this = *count;
                *count += 1;
                this
            } else {
                0
            };
            let fate = strategy.fate(network, from, to, round, occurrence, engine_rng);
            match fate {
                NetFate::Severed => counters.add(hot.dropped_partitioned, 1),
                NetFate::Lost => counters.add(hot.dropped_channel, 1),
                NetFate::Deliver { latency } => {
                    queue.push(round + latency, round, from, to, msg);
                }
            }
            if let Some(t) = trace.as_mut() {
                let mut event = TraceEvent {
                    tick: round,
                    from,
                    to,
                    payload: size,
                    verdict: TraceVerdict::Sent,
                };
                t.recorder.record(event);
                // Send-time drops stamp the send tick; drops decided at
                // delivery time (crashed / observed-failed destinations)
                // stamp the delivery tick instead.
                let dropped = match fate {
                    NetFate::Severed => Some(TraceVerdict::DroppedPartitioned),
                    NetFate::Lost => Some(TraceVerdict::DroppedChannel),
                    NetFate::Deliver { .. } => None,
                };
                if let Some(verdict) = dropped {
                    event.verdict = verdict;
                    t.recorder.record(event);
                }
            }
        }
        sent
    }
}

impl<P: Protocol> Engine<P>
where
    P: crate::mc::McHash,
    P::Msg: crate::mc::McHash,
{
    /// A 64-bit digest of the engine's complete behavioral state: the
    /// round, liveness statuses, every protocol instance's
    /// [`McHash`](crate::mc::McHash), every RNG stream's state (via
    /// clone-and-draw probing), the in-flight queue in delivery order
    /// (absolute sequence numbers excluded — only relative order can
    /// affect the future), and any not-yet-applied scheduled fates.
    ///
    /// Counters and the flight recorder are deliberately excluded:
    /// they are derived observations, and hashing them would make the
    /// model checker treat behaviorally identical states as distinct.
    ///
    /// Equal digests are (modulo 64-bit collisions) equal futures:
    /// the model checker uses this for visited-set deduplication.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        use crate::mc::McHash as _;
        use crate::metrics::FxHasher;
        use rand::Rng as _;
        use std::hash::Hasher as _;

        fn probe_rng(rng: &SmallRng, h: &mut FxHasher) {
            // SmallRng keeps 256 bits of hidden state; four drawn words
            // from a clone pin it down without advancing the original.
            let mut probe = rng.clone();
            for _ in 0..4 {
                h.write_u64(probe.gen());
            }
        }

        let mut h = FxHasher::default();
        h.write_u64(self.round);
        h.write_u8(u8::from(self.started));
        for status in &self.status {
            h.write_u8(u8::from(status.is_alive()));
        }
        for process in self.store.iter() {
            process.mc_hash(&mut h);
        }
        for i in 0..self.store.len() {
            // `probe_rng` derives the stream on the fly when the slot was
            // never touched, so a lazily-stored engine and an eagerly
            // materialised one digest identically.
            probe_rng(&self.store.probe_rng(i, ProcessId::from_index(i)), &mut h);
        }
        probe_rng(&self.engine_rng, &mut h);
        probe_rng(&self.observer_rng, &mut h);
        for m in self.queue.snapshot_sorted() {
            h.write_u64(m.round);
            h.write_u64(m.sent);
            h.write_u32(m.from.0);
            h.write_u32(m.to.0);
            m.msg.mc_hash(&mut h);
        }
        for fate in self
            .plan
            .schedule()
            .iter()
            .filter(|f| f.round >= self.round)
        {
            h.write_u64(fate.round);
            h.write_u32(fate.pid.0);
            h.write_u8(u8::from(fate.crash));
        }
        h.finish()
    }
}

/// Test fixtures shared by the engine test modules below.
#[cfg(test)]
mod tests_support {
    use super::*;

    /// Every process sends its id to the next process each round and
    /// counts receipts.
    pub struct Relay {
        pub received: u64,
        pub population: u32,
    }

    #[derive(Clone, Debug)]
    pub struct Token;

    impl WireSize for Token {
        fn wire_size(&self) -> usize {
            2
        }
    }

    impl Protocol for Relay {
        type Msg = Token;

        fn on_message(&mut self, _from: ProcessId, _msg: Token, _ctx: &mut Ctx<'_, Token>) {
            self.received += 1;
        }

        fn on_round(&mut self, _round: u64, ctx: &mut Ctx<'_, Token>) {
            let next = ProcessId((ctx.me().0 + 1) % self.population);
            ctx.send(next, Token);
        }
    }

    pub fn relay_engine(config: SimConfig, n: u32) -> Engine<Relay> {
        let procs = (0..n)
            .map(|_| Relay {
                received: 0,
                population: n,
            })
            .collect();
        Engine::new(config, procs)
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::relay_engine;
    use super::*;
    use crate::{FailureModel, Latency};

    #[test]
    fn sim_config_new_equals_default() {
        assert_eq!(SimConfig::new(), SimConfig::default());
        assert_eq!(SimConfig::new().channel(), ChannelConfig::reliable());
        assert_eq!(*SimConfig::new().failure(), FailureModel::None);
        assert!(SimConfig::new().faults.network.is_perfect());
        assert_ne!(SimConfig::new(), SimConfig::new().with_seed(1));
    }

    #[test]
    fn messages_delivered_next_round() {
        let mut e = relay_engine(SimConfig::default(), 3);
        let r0 = e.step_round();
        assert_eq!(r0.sent, 3);
        assert_eq!(r0.delivered, 0, "nothing in flight during round 0");
        let r1 = e.step_round();
        assert_eq!(r1.delivered, 3);
    }

    #[test]
    fn reliable_channel_loses_nothing() {
        let mut e = relay_engine(SimConfig::default(), 4);
        e.run_rounds(10);
        assert_eq!(e.counters().get("sim.dropped_channel"), 0);
        // 4 sends per round × 10 rounds.
        assert_eq!(e.counters().get("sim.sent"), 40);
        // Everything sent before the last round was delivered.
        assert_eq!(e.counters().get("sim.delivered"), 36);
    }

    #[test]
    fn lossy_channel_drops_roughly_fraction() {
        let config = SimConfig::default()
            .with_seed(5)
            .with_channel(ChannelConfig::default().with_success_probability(0.5));
        let mut e = relay_engine(config, 10);
        e.run_rounds(100);
        let sent = e.counters().get("sim.sent");
        let dropped = e.counters().get("sim.dropped_channel");
        assert_eq!(sent, 1000);
        assert!(
            (350..650).contains(&dropped),
            "dropped {dropped} of {sent}, expected ≈ half"
        );
    }

    #[test]
    fn bytes_accounted() {
        let mut e = relay_engine(SimConfig::default(), 2);
        e.run_rounds(3);
        assert_eq!(
            e.counters().get("sim.bytes_sent"),
            e.counters().get("sim.sent") * 2
        );
    }

    #[test]
    fn stillborn_processes_never_run() {
        let config = SimConfig::default()
            .with_seed(1)
            .with_failures(FailureModel::Stillborn {
                alive_fraction: 0.5,
            });
        let mut e = relay_engine(config, 10);
        e.run_rounds(5);
        let crashed: Vec<ProcessId> = (0..10)
            .map(ProcessId)
            .filter(|&p| !e.status(p).is_alive())
            .collect();
        assert_eq!(crashed.len(), 5);
        for p in crashed {
            assert_eq!(e.process(p).received, 0, "{p} is crashed yet received");
        }
    }

    #[test]
    fn messages_to_crashed_processes_drop() {
        let mut e = relay_engine(SimConfig::default(), 3);
        e.crash(ProcessId(1));
        e.run_rounds(4);
        assert!(e.counters().get("sim.dropped_dead") > 0);
        assert_eq!(e.process(ProcessId(1)).received, 0);
    }

    #[test]
    fn recovery_resumes_execution() {
        let mut e = relay_engine(SimConfig::default(), 2);
        e.crash(ProcessId(1));
        e.run_rounds(3);
        assert_eq!(e.process(ProcessId(1)).received, 0);
        e.recover(ProcessId(1));
        e.run_rounds(3);
        assert!(e.process(ProcessId(1)).received > 0);
    }

    #[test]
    fn per_observer_drops_fraction() {
        let config = SimConfig::default()
            .with_seed(11)
            .with_failures(FailureModel::PerObserver {
                alive_fraction: 0.5,
            });
        let mut e = relay_engine(config, 10);
        e.run_rounds(100);
        let observed = e.counters().get("sim.dropped_observed_failed");
        assert!(
            (350..650).contains(&observed),
            "observer drops {observed}, expected ≈ 500"
        );
        // Nobody is actually crashed in this model.
        assert_eq!(e.alive().len(), 10);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed: u64| {
            let config = SimConfig::default()
                .with_seed(seed)
                .with_channel(ChannelConfig::paper_default())
                .with_failures(FailureModel::Stillborn {
                    alive_fraction: 0.8,
                });
            let mut e = relay_engine(config, 20);
            e.run_rounds(30);
            (
                e.counters().get("sim.sent"),
                e.counters().get("sim.delivered"),
                e.counters().get("sim.dropped_channel"),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn quiescence_detected() {
        /// Sends one message at start; goes quiet afterwards.
        struct OneShot;
        #[derive(Clone, Debug)]
        struct M;
        impl WireSize for M {
            fn wire_size(&self) -> usize {
                1
            }
        }
        impl Protocol for OneShot {
            type Msg = M;
            fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
                if ctx.me() == ProcessId(0) {
                    ctx.send(ProcessId(1), M);
                }
            }
            fn on_message(&mut self, _f: ProcessId, _m: M, _c: &mut Ctx<'_, M>) {}
        }
        let mut e = Engine::new(SimConfig::default(), vec![OneShot, OneShot]);
        let rounds = e.run_until_quiescent(100);
        assert!(rounds < 100, "quiesced after {rounds} rounds");
        assert_eq!(e.in_flight(), 0);
    }

    #[test]
    fn scheduled_fates_apply() {
        use crate::Fate;
        let config = SimConfig::default().with_failures(FailureModel::Schedule(vec![
            Fate {
                round: 2,
                pid: ProcessId(0),
                crash: true,
            },
            Fate {
                round: 4,
                pid: ProcessId(0),
                crash: false,
            },
        ]));
        let mut e = relay_engine(config, 2);
        e.run_rounds(2);
        assert!(e.status(ProcessId(0)).is_alive());
        e.step_round(); // round 2 applies the crash
        assert!(!e.status(ProcessId(0)).is_alive());
        e.run_rounds(2); // rounds 3 and 4; round 4 recovers
        assert!(e.status(ProcessId(0)).is_alive());
    }

    #[test]
    fn latency_jitter_delivers_eventually() {
        let config = SimConfig::default().with_channel(
            ChannelConfig::default().with_latency(Latency::UniformRounds { min: 1, max: 4 }),
        );
        let mut e = relay_engine(config, 5);
        e.run_rounds(20);
        let total: u64 = e.processes().map(|(_, p)| p.received).sum();
        assert!(total > 0);
        // All messages sent at least 4 rounds ago must have arrived.
        assert_eq!(
            e.counters().get("sim.delivered") + e.in_flight() as u64,
            e.counters().get("sim.sent")
        );
    }

    #[test]
    fn partitions_sever_and_heal() {
        use da_core::topology::{NodeId, Partition, PartitionSchedule, Topology};
        // Relay ring over 3 processes: 0 and 1 on node a, 2 on node b, so
        // exactly the 1→2 and 2→0 hops cross the cut. Split for rounds 2..5.
        let config = SimConfig::default()
            .with_topology(Topology::with_nodes(["a", "b"]).with_placement(ProcessId(2), NodeId(1)))
            .with_partitions(PartitionSchedule::none().with_partition(
                Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], 2).heal_at(5),
            ));
        let mut e = relay_engine(config, 3);
        e.run_rounds(2);
        assert_eq!(e.counters().get("sim.dropped_partitioned"), 0);
        e.run_rounds(3); // rounds 2..4: two cross-island sends severed per round
        assert_eq!(e.counters().get("sim.dropped_partitioned"), 6);
        let before = e.process(ProcessId(2)).received;
        e.run_rounds(3);
        assert!(
            e.process(ProcessId(2)).received > before,
            "traffic flows again after the heal"
        );
        // Every send is delivered, severed, or still in flight.
        assert_eq!(
            e.counters().get("sim.delivered")
                + e.counters().get("sim.dropped_partitioned")
                + e.in_flight() as u64,
            e.counters().get("sim.sent")
        );
    }
}

#[cfg(test)]
mod trace_engine_tests {
    use super::tests_support::relay_engine;
    use super::*;

    #[test]
    fn trace_off_allocates_no_recorder() {
        let e = relay_engine(SimConfig::default(), 3);
        assert!(e.trace_log().is_none());
    }

    #[test]
    fn full_trace_mirrors_the_counter_ledger() {
        let config = SimConfig::default()
            .with_seed(5)
            .with_channel(ChannelConfig::default().with_success_probability(0.5))
            .with_trace(TraceConfig::full());
        let mut e = relay_engine(config, 10);
        e.run_rounds(50);
        let log = e.trace_log().unwrap();
        assert_eq!(log.count(TraceVerdict::Sent), e.counters().get("sim.sent"));
        assert_eq!(
            log.count(TraceVerdict::Delivered),
            e.counters().get("sim.delivered")
        );
        assert_eq!(
            log.count(TraceVerdict::DroppedChannel),
            e.counters().get("sim.dropped_channel")
        );
        // Every delivered message contributed one latency sample.
        let latency = log.histogram("delivery_latency_ticks").unwrap();
        assert_eq!(latency.count(), e.counters().get("sim.delivered"));
        assert!(latency.max() >= 1, "reliable latency is ≥ 1 round");
        assert!(log.histogram("queue_depth").unwrap().count() == 50);
        assert_eq!(log.dropped_events, 0);
        assert_eq!(
            log.events.len() as u64,
            log.verdict_counts.iter().sum::<u64>()
        );
    }

    #[test]
    fn counters_only_mode_skips_the_event_buffer() {
        let config = SimConfig::default().with_trace(TraceConfig::counters_only());
        let mut e = relay_engine(config, 4);
        e.run_rounds(10);
        let log = e.trace_log().unwrap();
        assert!(log.events.is_empty());
        assert_eq!(log.count(TraceVerdict::Sent), 40);
    }

    #[test]
    fn capacity_bound_counts_overflow() {
        let config = SimConfig::default().with_trace(TraceConfig::full().with_capacity(8));
        let mut e = relay_engine(config, 4);
        e.run_rounds(10);
        let log = e.trace_log().unwrap();
        assert_eq!(log.events.len(), 8);
        assert!(log.dropped_events > 0);
        assert_eq!(log.count(TraceVerdict::Sent), 40, "counts see past the cap");
    }

    #[test]
    fn churn_emits_lifecycle_events() {
        let config = SimConfig::default()
            .with_seed(9)
            .with_failures(FailureModel::Churn {
                crash_probability: 0.1,
                recover_probability: 0.1,
            })
            .with_trace(TraceConfig::full());
        let mut e = relay_engine(config, 20);
        e.run_rounds(40);
        let log = e.trace_log().unwrap();
        assert_eq!(
            log.count(TraceVerdict::Crashed),
            e.counters().get("sim.churn_crashes")
        );
        assert_eq!(
            log.count(TraceVerdict::Recovered),
            e.counters().get("sim.churn_recoveries")
        );
        assert!(log
            .events
            .iter()
            .filter(|e| e.verdict == TraceVerdict::Crashed)
            .all(|e| e.from == e.to && e.payload == 0));
    }

    #[test]
    fn same_seed_traces_are_identical() {
        let run = || {
            let config = SimConfig::default()
                .with_seed(77)
                .with_channel(ChannelConfig::paper_default())
                .with_trace(TraceConfig::full());
            let mut e = relay_engine(config, 10);
            e.run_rounds(30);
            e.trace_log().unwrap().canonical_events()
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod churn_engine_tests {
    use super::*;
    use crate::{FailureModel, ProcessId, WireSize};

    struct Quiet;
    #[derive(Clone, Debug)]
    struct Never;
    impl WireSize for Never {
        fn wire_size(&self) -> usize {
            0
        }
    }
    impl Protocol for Quiet {
        type Msg = Never;
        fn on_message(&mut self, _f: ProcessId, _m: Never, _c: &mut Ctx<'_, Never>) {}
    }

    #[test]
    fn churn_converges_to_stationary_aliveness() {
        // crash 0.05 / recover 0.15 → stationary alive = 0.75.
        let config = SimConfig::default()
            .with_seed(5)
            .with_failures(FailureModel::Churn {
                crash_probability: 0.05,
                recover_probability: 0.15,
            });
        let mut e = Engine::new(config, (0..200).map(|_| Quiet).collect());
        e.run_rounds(50); // mix
        let mut samples = Vec::new();
        for _ in 0..100 {
            e.step_round();
            samples.push(e.alive().len() as f64 / 200.0);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (mean - 0.75).abs() < 0.08,
            "mean aliveness {mean}, expected ≈ 0.75"
        );
        assert!(e.counters().get("sim.churn_crashes") > 0);
        assert!(e.counters().get("sim.churn_recoveries") > 0);
    }

    #[test]
    fn churn_is_deterministic() {
        let run = || {
            let config = SimConfig::default()
                .with_seed(9)
                .with_failures(FailureModel::Churn {
                    crash_probability: 0.1,
                    recover_probability: 0.1,
                });
            let mut e = Engine::new(config, (0..50).map(|_| Quiet).collect());
            e.run_rounds(60);
            (
                e.counters().get("sim.churn_crashes"),
                e.counters().get("sim.churn_recoveries"),
                e.alive().len(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_rates_are_inert() {
        let config = SimConfig::default().with_failures(FailureModel::Churn {
            crash_probability: 0.0,
            recover_probability: 0.0,
        });
        let mut e = Engine::new(config, (0..20).map(|_| Quiet).collect());
        e.run_rounds(30);
        assert_eq!(e.alive().len(), 20);
        assert_eq!(e.counters().get("sim.churn_crashes"), 0);
    }
}
