//! Interned counter registry.
//!
//! Protocols label their traffic (e.g. `intra.t2`, `inter.t2->t1`) and the
//! harness reads the counters back after a run. Counter names are interned
//! to [`CounterId`]s so the per-message hot path is an array increment;
//! name-keyed lookups ([`Counters::register`], [`Counters::bump`]) go
//! through an FxHash-indexed map, so even the lazy label path costs a
//! multiply-xor hash rather than SipHash — the interned-label API both
//! substrates share.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A multiply-xor hasher (the rustc-hash / FxHash construction) for the
/// label index: counter labels are short (`da.intra..t1`), so hashing
/// them dominates the lookup under the default SipHash. This is not
/// DoS-resistant — fine for a registry keyed by a protocol's own static
/// label set, never by external input.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = 0u64;
            for (i, b) in rest.iter().enumerate() {
                tail |= u64::from(*b) << (8 * i);
            }
            self.mix(tail);
        }
        self.mix(bytes.len() as u64);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

/// The [`BuildHasherDefault`] alias for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Handle to a registered counter. Obtained from [`Counters::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CounterId(u32);

/// A registry of named monotonic counters.
///
/// ```
/// use da_simnet::Counters;
/// let mut c = Counters::new();
/// let id = c.register("intra.t2");
/// c.add(id, 3);
/// c.bump("intra.t2");
/// assert_eq!(c.get("intra.t2"), 4);
/// assert_eq!(c.get("never-registered"), 0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counters {
    values: Vec<u64>,
    names: Vec<String>,
    index: HashMap<String, CounterId, FxBuildHasher>,
}

impl Counters {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Counters::default()
    }

    /// Registers (or looks up) a counter by name, returning its id.
    pub fn register(&mut self, name: &str) -> CounterId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = CounterId(u32::try_from(self.values.len()).expect("too many counters"));
        self.values.push(0);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Adds `delta` to the counter behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.values[id.0 as usize] += delta;
    }

    /// Increments a counter by name, registering it on first use.
    pub fn bump(&mut self, name: &str) {
        let id = self.register(name);
        self.add(id, 1);
    }

    /// Adds `delta` to a counter by name, registering it on first use.
    pub fn add_named(&mut self, name: &str, delta: u64) {
        let id = self.register(name);
        self.add(id, delta);
    }

    /// Current value of a counter by name (0 when never registered).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.index
            .get(name)
            .map_or(0, |id| self.values[id.0 as usize])
    }

    /// Current value behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    #[must_use]
    pub fn value(&self, id: CounterId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Iterates over `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter().copied())
    }

    /// Folds another registry into this one, adding value-by-name and
    /// registering names this registry has not seen. Used to merge the
    /// per-worker shards of a live run into one global snapshot.
    pub fn merge_from(&mut self, other: &Counters) {
        for (name, value) in other.iter() {
            self.add_named(name, value);
        }
    }

    /// Overwrites this registry's values with `other`'s, without
    /// touching names — the allocation-free path for republishing a
    /// snapshot of a registry this one was cloned from.
    ///
    /// Counters are append-only, so two registries with equal lengths
    /// that share a lineage (one was cloned from the other, or both from
    /// a common ancestor) are guaranteed to agree name-for-name; the
    /// name check is therefore a debug assertion, not a runtime cost.
    /// Registries of different lengths (new counters appeared since the
    /// last snapshot) must fall back to a full clone.
    ///
    /// # Panics
    ///
    /// Panics when the registries have different lengths (and, under
    /// debug assertions, when their registration orders diverge).
    pub fn copy_values_from(&mut self, other: &Counters) {
        assert_eq!(
            self.len(),
            other.len(),
            "copy_values_from requires identical registration sets"
        );
        debug_assert_eq!(self.names, other.names, "registries diverged");
        self.values.copy_from_slice(&other.values);
    }

    /// Sum over counters whose name starts with `prefix`.
    #[must_use]
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Number of registered counters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no counter has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Counters ({} registered)", self.len())?;
        let mut sorted: Vec<(&str, u64)> = self.iter().collect();
        sorted.sort_by_key(|(name, _)| *name);
        for (name, value) in sorted {
            writeln!(f, "  {name}: {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut c = Counters::new();
        let a = c.register("x");
        let b = c.register("x");
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn add_and_get() {
        let mut c = Counters::new();
        let id = c.register("msgs");
        c.add(id, 5);
        c.add(id, 2);
        assert_eq!(c.value(id), 7);
        assert_eq!(c.get("msgs"), 7);
    }

    #[test]
    fn bump_registers_lazily() {
        let mut c = Counters::new();
        c.bump("lazy");
        c.bump("lazy");
        assert_eq!(c.get("lazy"), 2);
    }

    #[test]
    fn unknown_name_reads_zero() {
        let c = Counters::new();
        assert_eq!(c.get("nope"), 0);
    }

    #[test]
    fn sum_prefix_aggregates() {
        let mut c = Counters::new();
        c.add_named("intra.t0", 1);
        c.add_named("intra.t1", 10);
        c.add_named("inter.t1", 100);
        assert_eq!(c.sum_prefix("intra."), 11);
        assert_eq!(c.sum_prefix("inter."), 100);
        assert_eq!(c.sum_prefix(""), 111);
    }

    #[test]
    fn merge_from_adds_and_registers() {
        let mut a = Counters::new();
        a.add_named("shared", 2);
        a.add_named("only_a", 1);
        let mut b = Counters::new();
        b.add_named("shared", 3);
        b.add_named("only_b", 7);
        a.merge_from(&b);
        assert_eq!(a.get("shared"), 5);
        assert_eq!(a.get("only_a"), 1);
        assert_eq!(a.get("only_b"), 7);
        // Merging an empty registry changes nothing.
        a.merge_from(&Counters::new());
        assert_eq!(a.sum_prefix(""), 13);
    }

    #[test]
    fn copy_values_from_overwrites_in_place() {
        let mut live = Counters::new();
        live.add_named("a", 3);
        live.add_named("b", 5);
        let mut snap = live.clone();
        live.add_named("a", 4);
        snap.copy_values_from(&live);
        assert_eq!(snap.get("a"), 7);
        assert_eq!(snap.get("b"), 5);
    }

    #[test]
    #[should_panic(expected = "identical registration sets")]
    fn copy_values_from_rejects_shape_changes() {
        let mut a = Counters::new();
        a.bump("x");
        let mut b = a.clone();
        b.bump("grew");
        a.copy_values_from(&b);
    }

    #[test]
    fn display_sorted_by_name() {
        let mut c = Counters::new();
        c.bump("b");
        c.bump("a");
        let s = c.to_string();
        let pos_a = s.find("a:").unwrap();
        let pos_b = s.find("b:").unwrap();
        assert!(pos_a < pos_b);
    }

    #[test]
    fn iter_in_registration_order() {
        let mut c = Counters::new();
        c.bump("z");
        c.bump("a");
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z", "a"]);
    }
}
