//! Interned counter registry, log-bucketed histograms, and the
//! [`TraceLog`] the flight recorder publishes into.
//!
//! Protocols label their traffic (e.g. `intra.t2`, `inter.t2->t1`) and the
//! harness reads the counters back after a run. Counter names are interned
//! to [`CounterId`]s so the per-message hot path is an array increment;
//! name-keyed lookups ([`Counters::register`], [`Counters::bump`]) go
//! through an FxHash-indexed map, so even the lazy label path costs a
//! multiply-xor hash rather than SipHash — the interned-label API both
//! substrates share.
//!
//! [`Histogram`] is the distribution-shaped companion to the counters
//! (delivery latency in ticks, delay-wheel occupancy, watermark lag):
//! power-of-two buckets, so recording is a `leading_zeros` plus an array
//! increment and merging is element-wise addition. [`TraceLog`] bundles
//! the flight recorder's output — causal events, per-verdict counts,
//! named histograms — with JSONL and Chrome-tracing exporters.

use da_core::trace::{canonicalize, TraceEvent, TraceVerdict};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A multiply-xor hasher (the rustc-hash / FxHash construction) for the
/// label index: counter labels are short (`da.intra..t1`), so hashing
/// them dominates the lookup under the default SipHash. This is not
/// DoS-resistant — fine for a registry keyed by a protocol's own static
/// label set, never by external input.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = 0u64;
            for (i, b) in rest.iter().enumerate() {
                tail |= u64::from(*b) << (8 * i);
            }
            self.mix(tail);
        }
        self.mix(bytes.len() as u64);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

/// The [`BuildHasherDefault`] alias for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Handle to a registered counter. Obtained from [`Counters::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CounterId(u32);

/// A registry of named monotonic counters.
///
/// ```
/// use da_simnet::Counters;
/// let mut c = Counters::new();
/// let id = c.register("intra.t2");
/// c.add(id, 3);
/// c.bump("intra.t2");
/// assert_eq!(c.get("intra.t2"), 4);
/// assert_eq!(c.get("never-registered"), 0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counters {
    values: Vec<u64>,
    names: Vec<String>,
    index: HashMap<String, CounterId, FxBuildHasher>,
}

impl Counters {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Counters::default()
    }

    /// Registers (or looks up) a counter by name, returning its id.
    pub fn register(&mut self, name: &str) -> CounterId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = CounterId(u32::try_from(self.values.len()).expect("too many counters"));
        self.values.push(0);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Adds `delta` to the counter behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.values[id.0 as usize] += delta;
    }

    /// Increments a counter by name, registering it on first use.
    pub fn bump(&mut self, name: &str) {
        let id = self.register(name);
        self.add(id, 1);
    }

    /// Adds `delta` to a counter by name, registering it on first use.
    pub fn add_named(&mut self, name: &str, delta: u64) {
        let id = self.register(name);
        self.add(id, delta);
    }

    /// Current value of a counter by name (0 when never registered).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.index
            .get(name)
            .map_or(0, |id| self.values[id.0 as usize])
    }

    /// Current value behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    #[must_use]
    pub fn value(&self, id: CounterId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Iterates over `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter().copied())
    }

    /// Folds another registry into this one, adding value-by-name and
    /// registering names this registry has not seen. Used to merge the
    /// per-worker shards of a live run into one global snapshot.
    pub fn merge_from(&mut self, other: &Counters) {
        for (name, value) in other.iter() {
            self.add_named(name, value);
        }
    }

    /// Overwrites this registry's values with `other`'s, without
    /// touching names — the allocation-free path for republishing a
    /// snapshot of a registry this one was cloned from.
    ///
    /// Counters are append-only, so two registries with equal lengths
    /// that share a lineage (one was cloned from the other, or both from
    /// a common ancestor) are guaranteed to agree name-for-name; the
    /// name check is therefore a debug assertion, not a runtime cost.
    /// Registries of different lengths (new counters appeared since the
    /// last snapshot) must fall back to a full clone.
    ///
    /// # Panics
    ///
    /// Panics when the registries have different lengths (and, under
    /// debug assertions, when their registration orders diverge).
    pub fn copy_values_from(&mut self, other: &Counters) {
        assert_eq!(
            self.len(),
            other.len(),
            "copy_values_from requires identical registration sets"
        );
        debug_assert_eq!(self.names, other.names, "registries diverged");
        self.values.copy_from_slice(&other.values);
    }

    /// Sum over counters whose name starts with `prefix`.
    #[must_use]
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Number of registered counters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no counter has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Counters ({} registered)", self.len())?;
        let mut sorted: Vec<(&str, u64)> = self.iter().collect();
        sorted.sort_by_key(|(name, _)| *name);
        for (name, value) in sorted {
            writeln!(f, "  {name}: {value}")?;
        }
        Ok(())
    }
}

/// Number of histogram buckets: one for zero plus one per possible bit
/// length of a `u64`.
const HISTOGRAM_BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value `0`; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. Recording is branch-free (`leading_zeros` + array
/// increment), merging is element-wise addition — the same
/// shard-and-merge lifecycle the counters follow, so the live runtime
/// can keep one histogram per worker and fold them at shutdown.
///
/// ```
/// use da_simnet::Histogram;
/// let mut h = Histogram::new();
/// for v in [0, 1, 1, 3, 8] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.sum(), 13);
/// assert_eq!(h.max(), 8);
/// assert!((h.mean() - 2.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(value)] += n;
        self.count += n;
        self.sum += value * n;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when no sample has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates over non-empty buckets as `(lower_bound, count)` pairs
    /// in ascending value order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
    }

    /// Adds every sample of `other` into this histogram.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// One JSON object summarising the distribution (hand-rolled — the
    /// offline serde shim cannot serialize).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut buckets = String::from("[");
        for (i, (lo, n)) in self.buckets().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            buckets.push_str(&format!("[{lo},{n}]"));
        }
        buckets.push(']');
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\"buckets\":{}}}",
            self.count,
            self.sum,
            self.max,
            self.mean(),
            buckets
        )
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "count={} mean={:.2} max={}",
            self.count,
            self.mean(),
            self.max
        )
    }
}

/// Everything one substrate's flight recorder captured during a run:
/// the causal event stream (bounded; overflow counted in
/// [`TraceLog::dropped_events`]), per-verdict totals, and named
/// histograms, with hand-rolled JSONL / Chrome-tracing exporters.
///
/// The simulator fills one directly; the live runtime merges one from
/// its per-worker trace shards at shutdown, exactly like the counter
/// shards.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// The recorded causal events, in capture order (NOT canonical —
    /// call [`TraceLog::canonical_events`] before comparing streams).
    pub events: Vec<TraceEvent>,
    /// Events lost to the recorder capacity bound.
    pub dropped_events: u64,
    /// Per-verdict totals, indexed by [`TraceVerdict::index`] — these
    /// see every event, including filtered-in events beyond capacity.
    pub verdict_counts: [u64; TraceVerdict::COUNT],
    /// Named distributions (e.g. `delivery_latency_ticks`,
    /// `wheel_occupancy`, `watermark_lag`).
    pub histograms: Vec<(String, Histogram)>,
}

impl TraceLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Total for one verdict.
    #[must_use]
    pub fn count(&self, verdict: TraceVerdict) -> u64 {
        self.verdict_counts[verdict.index()]
    }

    /// Looks up a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Adds (or merges into) a named histogram.
    pub fn add_histogram(&mut self, name: &str, histogram: &Histogram) {
        match self.histograms.iter_mut().find(|(n, _)| n == name) {
            Some((_, existing)) => existing.merge_from(histogram),
            None => self.histograms.push((name.to_owned(), histogram.clone())),
        }
    }

    /// The event stream in canonical substrate-neutral order (a sorted
    /// copy; the capture order is preserved).
    #[must_use]
    pub fn canonical_events(&self) -> Vec<TraceEvent> {
        let mut events = self.events.clone();
        canonicalize(&mut events);
        events
    }

    /// JSONL export of the capture-order event stream.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        da_core::trace::events_to_jsonl(&self.events)
    }

    /// Chrome-tracing (`chrome://tracing` / Perfetto) export of the
    /// capture-order event stream.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        da_core::trace::events_to_chrome_trace(&self.events)
    }

    /// Writes the JSONL export to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

impl fmt::Display for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TraceLog ({} events, {} dropped)",
            self.events.len(),
            self.dropped_events
        )?;
        for verdict in TraceVerdict::ALL {
            let n = self.count(verdict);
            if n > 0 {
                writeln!(f, "  {}: {}", verdict.label(), n)?;
            }
        }
        for (name, h) in &self.histograms {
            writeln!(f, "  {name}: {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut c = Counters::new();
        let a = c.register("x");
        let b = c.register("x");
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn add_and_get() {
        let mut c = Counters::new();
        let id = c.register("msgs");
        c.add(id, 5);
        c.add(id, 2);
        assert_eq!(c.value(id), 7);
        assert_eq!(c.get("msgs"), 7);
    }

    #[test]
    fn bump_registers_lazily() {
        let mut c = Counters::new();
        c.bump("lazy");
        c.bump("lazy");
        assert_eq!(c.get("lazy"), 2);
    }

    #[test]
    fn unknown_name_reads_zero() {
        let c = Counters::new();
        assert_eq!(c.get("nope"), 0);
    }

    #[test]
    fn sum_prefix_aggregates() {
        let mut c = Counters::new();
        c.add_named("intra.t0", 1);
        c.add_named("intra.t1", 10);
        c.add_named("inter.t1", 100);
        assert_eq!(c.sum_prefix("intra."), 11);
        assert_eq!(c.sum_prefix("inter."), 100);
        assert_eq!(c.sum_prefix(""), 111);
    }

    #[test]
    fn merge_from_adds_and_registers() {
        let mut a = Counters::new();
        a.add_named("shared", 2);
        a.add_named("only_a", 1);
        let mut b = Counters::new();
        b.add_named("shared", 3);
        b.add_named("only_b", 7);
        a.merge_from(&b);
        assert_eq!(a.get("shared"), 5);
        assert_eq!(a.get("only_a"), 1);
        assert_eq!(a.get("only_b"), 7);
        // Merging an empty registry changes nothing.
        a.merge_from(&Counters::new());
        assert_eq!(a.sum_prefix(""), 13);
    }

    #[test]
    fn copy_values_from_overwrites_in_place() {
        let mut live = Counters::new();
        live.add_named("a", 3);
        live.add_named("b", 5);
        let mut snap = live.clone();
        live.add_named("a", 4);
        snap.copy_values_from(&live);
        assert_eq!(snap.get("a"), 7);
        assert_eq!(snap.get("b"), 5);
    }

    #[test]
    #[should_panic(expected = "identical registration sets")]
    fn copy_values_from_rejects_shape_changes() {
        let mut a = Counters::new();
        a.bump("x");
        let mut b = a.clone();
        b.bump("grew");
        a.copy_values_from(&b);
    }

    #[test]
    fn display_sorted_by_name() {
        let mut c = Counters::new();
        c.bump("b");
        c.bump("a");
        let s = c.to_string();
        let pos_a = s.find("a:").unwrap();
        let pos_b = s.find("b:").unwrap();
        assert!(pos_a < pos_b);
    }

    #[test]
    fn iter_in_registration_order() {
        let mut c = Counters::new();
        c.bump("z");
        c.bump("a");
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z", "a"]);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (1024, 1)]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn histogram_extremes_do_not_overflow_buckets() {
        let mut h = Histogram::new();
        h.record(u64::MAX / 2);
        h.record_n(0, 3);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), u64::MAX / 2);
        h.record_n(7, 0);
        assert_eq!(h.count(), 4, "zero-sample record is a no-op");
    }

    #[test]
    fn histogram_merge_is_elementwise() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(1);
        b.record(7);
        a.merge_from(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 109);
        assert_eq!(a.max(), 100);
        let ones = a.buckets().find(|&(lo, _)| lo == 1).unwrap();
        assert_eq!(ones.1, 2);
    }

    #[test]
    fn histogram_mean_handles_empty() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert!(h.to_json().contains("\"count\":0"));
    }

    #[test]
    fn trace_log_counts_and_histograms_roundtrip() {
        use da_core::ProcessId;
        let mut log = TraceLog::new();
        log.events.push(TraceEvent {
            tick: 1,
            from: ProcessId(0),
            to: ProcessId(1),
            payload: 4,
            verdict: TraceVerdict::Delivered,
        });
        log.verdict_counts[TraceVerdict::Delivered.index()] = 1;
        let mut h = Histogram::new();
        h.record(3);
        log.add_histogram("delivery_latency_ticks", &h);
        log.add_histogram("delivery_latency_ticks", &h);
        assert_eq!(log.count(TraceVerdict::Delivered), 1);
        assert_eq!(log.histogram("delivery_latency_ticks").unwrap().count(), 2);
        assert!(log.histogram("nope").is_none());
        assert!(log.to_jsonl().contains("\"verdict\":\"delivered\""));
        assert!(log.to_chrome_trace().contains("\"ph\":\"i\""));
        let text = log.to_string();
        assert!(text.contains("delivered: 1"));
        assert!(text.contains("delivery_latency_ticks"));
    }

    #[test]
    fn trace_log_canonical_events_sorts_a_copy() {
        use da_core::ProcessId;
        let ev = |tick, from: u32| TraceEvent {
            tick,
            from: ProcessId(from),
            to: ProcessId(0),
            payload: 1,
            verdict: TraceVerdict::Delivered,
        };
        let mut log = TraceLog::new();
        log.events = vec![ev(2, 1), ev(1, 9), ev(2, 0)];
        let canonical = log.canonical_events();
        assert_eq!(canonical, vec![ev(1, 9), ev(2, 0), ev(2, 1)]);
        assert_eq!(log.events[0], ev(2, 1), "capture order preserved");
    }
}
