//! Internal event queue of the engine: in-flight messages keyed by their
//! delivery round, FIFO within a round.

use crate::ProcessId;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// An in-flight message awaiting delivery.
#[derive(Debug, Clone)]
pub(crate) struct InFlight<M> {
    pub round: u64,
    pub seq: u64,
    /// Round the message was sent in — kept so the engine's delivery
    /// latency histogram (`round - sent`) needs no side table.
    pub sent: u64,
    pub from: ProcessId,
    pub to: ProcessId,
    pub msg: M,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.round == other.round && self.seq == other.seq
    }
}

impl<M> Eq for InFlight<M> {}

impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.round, self.seq).cmp(&(other.round, other.seq))
    }
}

/// Min-heap of in-flight messages ordered by `(delivery round, sequence)`.
///
/// The sequence number makes the queue stable: two messages scheduled for
/// the same round are delivered in send order, which keeps simulations
/// deterministic.
#[derive(Debug, Clone)]
pub(crate) struct MessageQueue<M> {
    heap: BinaryHeap<Reverse<InFlight<M>>>,
    next_seq: u64,
}

impl<M> MessageQueue<M> {
    pub fn new() -> Self {
        MessageQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Queues a message sent in round `sent` for delivery at `round`.
    pub fn push(&mut self, round: u64, sent: u64, from: ProcessId, to: ProcessId, msg: M) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(InFlight {
            round,
            seq,
            sent,
            from,
            to,
            msg,
        }));
    }

    /// Removes and returns the next message due at or before `round`.
    pub fn pop_due(&mut self, round: u64) -> Option<InFlight<M>> {
        if self.heap.peek().is_some_and(|Reverse(m)| m.round <= round) {
            self.heap.pop().map(|Reverse(m)| m)
        } else {
            None
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Earliest delivery round among queued messages.
    pub fn next_round(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(m)| m.round)
    }

    /// All in-flight messages sorted by `(delivery round, sequence)` —
    /// i.e. in the exact order they would pop. Used by the model
    /// checker's state digest, where heap layout must not leak into the
    /// hash.
    pub fn snapshot_sorted(&self) -> Vec<&InFlight<M>> {
        let mut all: Vec<&InFlight<M>> = self.heap.iter().map(|Reverse(m)| m).collect();
        all.sort_by_key(|m| (m.round, m.seq));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_round() {
        let mut q = MessageQueue::new();
        q.push(1, 0, ProcessId(0), ProcessId(1), "a");
        q.push(1, 0, ProcessId(0), ProcessId(2), "b");
        q.push(1, 0, ProcessId(0), ProcessId(3), "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_due(1).map(|m| m.msg)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn rounds_ordered() {
        let mut q = MessageQueue::new();
        q.push(3, 0, ProcessId(0), ProcessId(1), "late");
        q.push(1, 0, ProcessId(0), ProcessId(1), "early");
        assert_eq!(q.next_round(), Some(1));
        assert_eq!(q.pop_due(1).unwrap().msg, "early");
        assert!(q.pop_due(1).is_none(), "round-3 message is not yet due");
        assert_eq!(q.pop_due(3).unwrap().msg, "late");
        assert!(q.is_empty());
    }

    #[test]
    fn pop_due_includes_overdue() {
        let mut q = MessageQueue::new();
        q.push(1, 0, ProcessId(0), ProcessId(1), "x");
        assert_eq!(q.pop_due(5).unwrap().msg, "x");
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = MessageQueue::new();
        assert!(q.is_empty());
        q.push(1, 0, ProcessId(0), ProcessId(1), 1u8);
        q.push(2, 0, ProcessId(0), ProcessId(1), 2u8);
        assert_eq!(q.len(), 2);
        let _ = q.pop_due(1);
        assert_eq!(q.len(), 1);
    }
}
