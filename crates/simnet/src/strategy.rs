//! The choice-injection seam between the engine and its sources of
//! nondeterminism.
//!
//! Everything nondeterministic the engine does in a round funnels
//! through exactly two decisions:
//!
//! 1. **the fate of a send** — today a draw on the engine RNG stream
//!    via [`NetworkModel::decide_fate`], and
//! 2. **which due message to deliver next** — today fixed FIFO
//!    `(delivery round, sequence)` order.
//!
//! A [`Strategy`] intercepts both. The default [`RngStrategy`] keeps
//! the pre-existing behavior bit-for-bit: fates come from the pinned
//! RNG draw order, deliveries stay FIFO, and no extra randomness is
//! consumed — `Engine::step_round` simply delegates to
//! `step_round_with(&mut RngStrategy)`. The bounded model checker in
//! [`crate::mc`] substitutes a script-following strategy that replays
//! an enumerated choice at each decision point instead, which is how
//! "all interleavings × all drop choices" becomes a tree walk over the
//! same engine code path that production simulations run.

use crate::ProcessId;
use da_core::topology::{NetFate, NetworkModel};
use rand::rngs::SmallRng;

/// One message due for delivery this round, as shown to
/// [`Strategy::next_delivery`]. The engine keeps the payload to
/// itself; identity and provenance are enough to pick an order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DueMessage {
    /// Round the message was sent in.
    pub sent: u64,
    /// Sending process.
    pub from: ProcessId,
    /// Destination process.
    pub to: ProcessId,
}

/// The engine's nondeterminism provider: decides send fates and
/// delivery order. See the module-level docs for the contract.
///
/// Both methods have defaults that reproduce the engine's historical
/// behavior exactly, so a strategy only overrides the decision it
/// wants to control.
pub trait Strategy {
    /// Decides the fate of the `occurrence`-th send from `from` to
    /// `to` at `tick`.
    ///
    /// The default routes through [`NetworkModel::decide_fate`] — the
    /// scripted-drop check followed by the pinned channel draws —
    /// which is byte-identical to the pre-seam `sample_fate` path
    /// whenever no drop is scripted. Overrides that never touch `rng`
    /// consume zero randomness, keeping every other stream in step.
    fn fate(
        &mut self,
        network: &NetworkModel,
        from: ProcessId,
        to: ProcessId,
        tick: u64,
        occurrence: u32,
        rng: &mut SmallRng,
    ) -> NetFate {
        network.decide_fate(from, to, tick, occurrence, rng)
    }

    /// Picks which of the `due` messages (never empty) is delivered
    /// next; the engine removes that entry and presents the remainder
    /// on the next call. Returning `0` every time — the default — is
    /// FIFO `(delivery round, sequence)` order, exactly the historical
    /// delivery order.
    ///
    /// # Returns
    ///
    /// An index into `due`; the engine clamps out-of-range answers to
    /// the last entry rather than panicking mid-round.
    fn next_delivery(&mut self, due: &[DueMessage]) -> usize {
        let _ = due;
        0
    }

    /// True when [`next_delivery`](Self::next_delivery) may return
    /// something other than `0`. The engine only materializes the
    /// [`DueMessage`] view (a per-round allocation) when a strategy
    /// asks for it; FIFO strategies keep the historical pop-as-you-go
    /// hot path.
    fn wants_ordering(&self) -> bool {
        false
    }
}

/// The production strategy: RNG-drawn fates, FIFO delivery. Stateless.
#[derive(Debug, Clone, Copy, Default)]
pub struct RngStrategy;

impl Strategy for RngStrategy {}

#[cfg(test)]
mod tests {
    use super::*;
    use da_core::channel::ChannelConfig;
    use da_core::seed::rng_from_seed;

    #[test]
    fn default_strategy_is_the_network_model_draw() {
        let network = NetworkModel::uniform(ChannelConfig::paper_default());
        let mut a = rng_from_seed(9);
        let mut b = rng_from_seed(9);
        let mut strategy = RngStrategy;
        for tick in 0..128 {
            assert_eq!(
                strategy.fate(&network, ProcessId(0), ProcessId(1), tick, 0, &mut a),
                network.decide_fate(ProcessId(0), ProcessId(1), tick, 0, &mut b),
            );
        }
        assert!(!strategy.wants_ordering());
        let due = [DueMessage {
            sent: 0,
            from: ProcessId(0),
            to: ProcessId(1),
        }];
        assert_eq!(strategy.next_delivery(&due), 0);
    }
}
