//! Weakly-consistent neighbourhood overlay.
//!
//! The paper's bootstrap ("FIND_SUPER_CONTACT", Fig. 4) floods
//! initialization requests through `neighborhood(p)` — "the nearest set of
//! reachable processes from a process" — relying "only on a weakly
//! consistent global membership". This module provides that substrate: a
//! static random overlay graph over the whole population, independent of
//! topic interests.

use crate::{derive_seed, rng_from_seed, ProcessId, SimError};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A static undirected overlay graph assigning each process a small random
/// neighbourhood.
///
/// The graph is a ring (guaranteeing connectivity) augmented with random
/// chords until every process has at least `degree` neighbours.
///
/// ```
/// use da_simnet::{Overlay, ProcessId};
/// let overlay = Overlay::random(10, 4, 42).unwrap();
/// assert!(overlay.neighbors(ProcessId(0)).len() >= 4);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Overlay {
    neighbors: Vec<Vec<ProcessId>>,
}

impl Overlay {
    /// Builds a connected random overlay over `population` processes where
    /// every process has at least `degree` neighbours (capped at
    /// `population - 1`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `population == 0`.
    pub fn random(population: usize, degree: usize, seed: u64) -> Result<Self, SimError> {
        if population == 0 {
            return Err(SimError::InvalidConfig {
                reason: "overlay population must be positive".to_owned(),
            });
        }
        let mut rng = rng_from_seed(derive_seed(seed, 0x0E41));
        let degree = degree.min(population.saturating_sub(1));
        let mut sets: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); population];
        // Ring for connectivity.
        if population > 1 {
            for i in 0..population {
                let next = (i + 1) % population;
                sets[i].insert(next);
                sets[next].insert(i);
            }
        }
        // Random chords until the degree target is met.
        let candidates: Vec<usize> = (0..population).collect();
        for i in 0..population {
            let mut guard = 0usize;
            while sets[i].len() < degree && guard < population * 4 {
                guard += 1;
                let j = *candidates
                    .choose(&mut rng)
                    .expect("population is non-empty");
                if j != i {
                    sets[i].insert(j);
                    sets[j].insert(i);
                }
            }
        }
        // Shuffle adjacency lists so iteration order carries no positional
        // bias (the bootstrap samples "the first k neighbours" in places).
        let neighbors = sets
            .into_iter()
            .map(|s| {
                let mut v: Vec<ProcessId> = s.into_iter().map(ProcessId::from_index).collect();
                v.shuffle(&mut rng);
                v
            })
            .collect();
        Ok(Overlay { neighbors })
    }

    /// Builds a fully-connected overlay (every process neighbours every
    /// other). Useful in tests and small scenarios.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `population == 0`.
    pub fn complete(population: usize) -> Result<Self, SimError> {
        if population == 0 {
            return Err(SimError::InvalidConfig {
                reason: "overlay population must be positive".to_owned(),
            });
        }
        let neighbors = (0..population)
            .map(|i| {
                (0..population)
                    .filter(|&j| j != i)
                    .map(ProcessId::from_index)
                    .collect()
            })
            .collect();
        Ok(Overlay { neighbors })
    }

    /// The neighbourhood of `pid` — `neighborhood(pl)` in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is outside the overlay's population.
    #[must_use]
    pub fn neighbors(&self, pid: ProcessId) -> &[ProcessId] {
        &self.neighbors[pid.index()]
    }

    /// Samples up to `k` distinct neighbours of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is outside the overlay's population.
    pub fn sample_neighbors<R: Rng>(
        &self,
        pid: ProcessId,
        k: usize,
        rng: &mut R,
    ) -> Vec<ProcessId> {
        let mut pool: Vec<ProcessId> = self.neighbors[pid.index()].to_vec();
        pool.shuffle(rng);
        pool.truncate(k);
        pool
    }

    /// Number of processes covered by the overlay.
    #[must_use]
    pub fn population(&self) -> usize {
        self.neighbors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashSet, VecDeque};

    #[test]
    fn zero_population_rejected() {
        assert!(Overlay::random(0, 3, 1).is_err());
        assert!(Overlay::complete(0).is_err());
    }

    #[test]
    fn degree_met() {
        let o = Overlay::random(50, 6, 7).unwrap();
        for i in 0..50 {
            assert!(
                o.neighbors(ProcessId(i)).len() >= 6,
                "process {i} under-connected"
            );
        }
    }

    #[test]
    fn degree_capped_for_tiny_population() {
        let o = Overlay::random(3, 10, 7).unwrap();
        for i in 0..3 {
            assert_eq!(o.neighbors(ProcessId(i)).len(), 2);
        }
    }

    #[test]
    fn no_self_loops_and_symmetric() {
        let o = Overlay::random(30, 5, 11).unwrap();
        for i in 0..30u32 {
            let pid = ProcessId(i);
            for &n in o.neighbors(pid) {
                assert_ne!(n, pid, "self loop at {pid}");
                assert!(
                    o.neighbors(n).contains(&pid),
                    "edge {pid}->{n} not symmetric"
                );
            }
        }
    }

    #[test]
    fn graph_is_connected() {
        let o = Overlay::random(64, 3, 13).unwrap();
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([ProcessId(0)]);
        seen.insert(ProcessId(0));
        while let Some(p) = queue.pop_front() {
            for &n in o.neighbors(p) {
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Overlay::random(20, 4, 5).unwrap();
        let b = Overlay::random(20, 4, 5).unwrap();
        for i in 0..20 {
            assert_eq!(a.neighbors(ProcessId(i)), b.neighbors(ProcessId(i)));
        }
    }

    #[test]
    fn complete_overlay() {
        let o = Overlay::complete(5).unwrap();
        for i in 0..5 {
            assert_eq!(o.neighbors(ProcessId(i)).len(), 4);
        }
    }

    #[test]
    fn sampling_bounds() {
        let o = Overlay::complete(10).unwrap();
        let mut rng = crate::rng_from_seed(1);
        let s = o.sample_neighbors(ProcessId(0), 3, &mut rng);
        assert_eq!(s.len(), 3);
        let all = o.sample_neighbors(ProcessId(0), 100, &mut rng);
        assert_eq!(all.len(), 9);
        let unique: HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 9, "samples are distinct");
    }
}
