//! Property tests on the simulation kernel: conservation laws, failure
//! model semantics, determinism, and overlay structure over arbitrary
//! configurations.

use da_simnet::{
    ChannelConfig, Ctx, Engine, FailureModel, Overlay, ProcessId, Protocol, SimConfig, WireSize,
};
use proptest::prelude::*;
use rand::Rng as _;

/// A protocol that floods: every process sends one message to a random
/// peer each round and counts receipts.
#[derive(Clone)]
struct Chatter {
    population: u32,
    received: u64,
}

#[derive(Clone, Debug)]
struct Blip;

impl WireSize for Blip {
    fn wire_size(&self) -> usize {
        3
    }
}

impl Protocol for Chatter {
    type Msg = Blip;

    fn on_message(&mut self, _from: ProcessId, _msg: Blip, _ctx: &mut Ctx<'_, Blip>) {
        self.received += 1;
    }

    fn on_round(&mut self, _round: u64, ctx: &mut Ctx<'_, Blip>) {
        let target = ProcessId(ctx.rng().gen_range(0..self.population));
        if target != ctx.me() {
            ctx.send(target, Blip);
        }
    }
}

fn chatter_engine(config: SimConfig, n: u32) -> Engine<Chatter> {
    Engine::new(
        config,
        (0..n)
            .map(|_| Chatter {
                population: n,
                received: 0,
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: sent = delivered + dropped (channel, dead target,
    /// observed-failed) + still in flight.
    #[test]
    fn message_conservation(
        n in 2u32..40,
        rounds in 1u64..40,
        p_succ in 0.0f64..=1.0,
        alive in 0.0f64..=1.0,
        seed in 0u64..10_000,
    ) {
        let config = SimConfig::default()
            .with_seed(seed)
            .with_channel(ChannelConfig::default().with_success_probability(p_succ))
            .with_failures(FailureModel::Stillborn { alive_fraction: alive });
        let mut e = chatter_engine(config, n);
        e.run_rounds(rounds);
        let c = e.counters();
        let accounted = c.get("sim.delivered")
            + c.get("sim.dropped_channel")
            + c.get("sim.dropped_dead")
            + c.get("sim.dropped_observed_failed")
            + e.in_flight() as u64;
        prop_assert_eq!(c.get("sim.sent"), accounted);
    }

    /// Bytes are charged exactly wire_size per send.
    #[test]
    fn bytes_proportional_to_sends(
        n in 2u32..20,
        rounds in 1u64..20,
        seed in 0u64..10_000,
    ) {
        let mut e = chatter_engine(SimConfig::default().with_seed(seed), n);
        e.run_rounds(rounds);
        prop_assert_eq!(
            e.counters().get("sim.bytes_sent"),
            e.counters().get("sim.sent") * 3
        );
    }

    /// Stillborn materialisation crashes exactly the complement of the
    /// alive fraction (rounded), and those processes never receive.
    #[test]
    fn stillborn_counts_exact(
        n in 1u32..100,
        alive in 0.0f64..=1.0,
        seed in 0u64..10_000,
    ) {
        let config = SimConfig::default().with_seed(seed).with_failures(
            FailureModel::Stillborn { alive_fraction: alive },
        );
        let mut e = chatter_engine(config, n);
        e.run_rounds(10);
        let expected_crashed =
            n as usize - (alive.clamp(0.0, 1.0) * f64::from(n)).round() as usize;
        let crashed: Vec<ProcessId> = (0..n)
            .map(ProcessId)
            .filter(|&p| !e.status(p).is_alive())
            .collect();
        prop_assert_eq!(crashed.len(), expected_crashed);
        for p in crashed {
            prop_assert_eq!(e.process(p).received, 0);
        }
    }

    /// Bit-exact determinism across arbitrary configurations.
    #[test]
    fn engine_fully_deterministic(
        n in 2u32..30,
        rounds in 1u64..30,
        p_succ in 0.1f64..=1.0,
        seed in 0u64..10_000,
    ) {
        let run = || {
            let config = SimConfig::default()
                .with_seed(seed)
                .with_channel(ChannelConfig::default().with_success_probability(p_succ));
            let mut e = chatter_engine(config, n);
            e.run_rounds(rounds);
            (
                e.counters().get("sim.sent"),
                e.counters().get("sim.delivered"),
                e.counters().get("sim.dropped_channel"),
                e.processes().map(|(_, p)| p.received).collect::<Vec<_>>(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Per-observer mode: nobody is ever globally crashed, and the drop
    /// rate tracks 1 − alive_fraction.
    #[test]
    fn per_observer_never_crashes(
        n in 2u32..30,
        alive in 0.0f64..=1.0,
        seed in 0u64..10_000,
    ) {
        let config = SimConfig::default().with_seed(seed).with_failures(
            FailureModel::PerObserver { alive_fraction: alive },
        );
        let mut e = chatter_engine(config, n);
        e.run_rounds(20);
        prop_assert_eq!(e.alive().len(), n as usize);
        if alive >= 1.0 {
            prop_assert_eq!(e.counters().get("sim.dropped_observed_failed"), 0);
        }
    }

    /// Overlay structure: symmetric, self-loop free, connected, minimum
    /// degree honoured (capped by the population).
    #[test]
    fn overlay_structural_laws(
        population in 1usize..80,
        degree in 0usize..12,
        seed in 0u64..10_000,
    ) {
        let o = Overlay::random(population, degree, seed).unwrap();
        prop_assert_eq!(o.population(), population);
        let want = degree.min(population.saturating_sub(1));
        let mut visited = std::collections::HashSet::new();
        let mut queue = std::collections::VecDeque::from([ProcessId(0)]);
        visited.insert(ProcessId(0));
        while let Some(p) = queue.pop_front() {
            for &q in o.neighbors(p) {
                prop_assert_ne!(q, p, "self loop");
                prop_assert!(o.neighbors(q).contains(&p), "asymmetric edge");
                if visited.insert(q) {
                    queue.push_back(q);
                }
            }
        }
        prop_assert_eq!(visited.len(), population, "disconnected overlay");
        for i in 0..population {
            prop_assert!(o.neighbors(ProcessId::from_index(i)).len() >= want);
        }
    }

    /// Latency jitter preserves conservation and eventually delivers.
    #[test]
    fn latency_jitter_conserves(
        n in 2u32..20,
        min in 1u64..4,
        extra in 0u64..4,
        seed in 0u64..10_000,
    ) {
        let config = SimConfig::default().with_seed(seed).with_channel(
            ChannelConfig::default().with_latency(da_simnet::Latency::UniformRounds {
                min,
                max: min + extra,
            }),
        );
        let mut e = chatter_engine(config, n);
        e.run_rounds(10);
        // Drain the pipe: no sends happen after we stop calling on_round,
        // so run until quiescent to flush stragglers.
        for _ in 0..20 {
            if e.in_flight() == 0 {
                break;
            }
            e.step_round();
        }
        prop_assert!(
            e.counters().get("sim.delivered") >= e.counters().get("sim.sent")
                .saturating_sub(e.in_flight() as u64 + 200),
        );
    }
}
