//! Offline shim for `serde_derive`.
//!
//! The workspace builds without registry access, so `serde` resolves to a
//! marker-trait shim (see `crates/shims/serde`). These derive macros make
//! `#[derive(Serialize, Deserialize)]` compile by emitting the matching
//! empty marker impls.
//!
//! ## Divergences from crates.io
//!
//! * The derives emit **empty marker impls**, not serialization code —
//!   there is no format machinery in the offline set to generate code
//!   for.
//! * `#[serde(...)]` helper attributes are accepted and ignored (real
//!   serde_derive changes codegen for rename/skip/default/etc.).
//! * Only the type shapes this workspace uses are supported: structs
//!   and enums, with generic parameters carried through **without
//!   bounds** — sufficient for marker impls, wrong for real codegen
//!   (real serde adds `T: Serialize` bounds per field use).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed bits of a type definition we need to emit a marker impl.
struct Target {
    /// Type name (`Foo` in `struct Foo<T> { .. }`).
    name: String,
    /// Generic parameter names in declaration order (`'a`, `T`, `N`…).
    params: Vec<String>,
}

/// Scans a `derive` input for `struct`/`enum`, the type name, and the
/// names of any generic parameters (bounds and defaults are dropped —
/// marker impls do not need them).
fn parse_target(input: TokenStream) -> Target {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes, doc comments, and visibility until the item keyword.
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            let id = id.to_string();
            if id == "struct" || id == "enum" {
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut expecting_param = true;
            while let Some(tt) = tokens.next() {
                match &tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expecting_param = true;
                    }
                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expecting_param => {
                        // Lifetime parameter: glue the tick to the ident.
                        if let Some(TokenTree::Ident(id)) = tokens.next() {
                            params.push(format!("'{id}"));
                        }
                        expecting_param = false;
                    }
                    TokenTree::Ident(id) if depth == 1 && expecting_param => {
                        let id = id.to_string();
                        if id == "const" {
                            // `const N: usize` — the next ident is the name.
                            continue;
                        }
                        params.push(id);
                        expecting_param = false;
                    }
                    _ => {}
                }
            }
        }
    }
    Target { name, params }
}

/// Renders `impl<'de, P...> Trait for Name<P...> {}`.
fn marker_impl(target: &Target, trait_path: &str, extra_param: Option<&str>) -> TokenStream {
    let mut impl_params: Vec<String> = Vec::new();
    if let Some(p) = extra_param {
        impl_params.push(p.to_owned());
    }
    impl_params.extend(target.params.iter().cloned());
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty_generics = if target.params.is_empty() {
        String::new()
    } else {
        format!("<{}>", target.params.join(", "))
    };
    let code = format!(
        "#[automatically_derived] impl{impl_generics} {trait_path} for {name}{ty_generics} {{}}",
        name = target.name,
    );
    code.parse().expect("shim derive emits valid Rust")
}

/// Checks the derive input parses as an item (catches garbage early).
fn sanity_check(input: &TokenStream) {
    let has_braces = input.clone().into_iter().any(|tt| {
        matches!(&tt, TokenTree::Group(g)
            if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis)
    });
    // Unit structs have neither braces nor parens; nothing to check there.
    let _ = has_braces;
}

/// Shim `#[derive(Serialize)]`: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    sanity_check(&input);
    let target = parse_target(input);
    marker_impl(&target, "::serde::Serialize", None)
}

/// Shim `#[derive(Deserialize)]`: emits `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    sanity_check(&input);
    let target = parse_target(input);
    marker_impl(&target, "::serde::Deserialize<'de>", Some("'de"))
}
