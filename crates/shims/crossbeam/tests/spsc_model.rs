//! Model-based property tests for the SPSC ring: a `VecDeque` of the
//! same capacity is the reference; every interleaving of pushes and
//! pops the generator produces must agree with it exactly — FIFO
//! order, `Full` exactly at capacity, `None` exactly when empty, and
//! clean wrap-around across many revolutions of the ring.

use crossbeam::queue::{spsc, PushError};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    #[test]
    fn ring_matches_a_vecdeque_reference(
        capacity in 1usize..=8,
        ops in prop::collection::vec((any::<bool>(), 0u16..1000), 0..400),
    ) {
        let (mut tx, mut rx) = spsc(capacity);
        let mut model: VecDeque<u16> = VecDeque::new();
        for (is_push, value) in ops {
            if is_push {
                match tx.push(value) {
                    Ok(()) => {
                        prop_assert!(model.len() < capacity, "ring accepted a push beyond capacity");
                        model.push_back(value);
                    }
                    Err(PushError::Full(v)) => {
                        prop_assert_eq!(v, value, "Full must hand the value back");
                        prop_assert_eq!(model.len(), capacity, "ring refused a push below capacity");
                    }
                    Err(PushError::Disconnected(_)) => {
                        prop_assert!(false, "consumer is alive; Disconnected is impossible");
                    }
                }
            } else {
                prop_assert_eq!(rx.pop(), model.pop_front());
            }
            prop_assert_eq!(tx.len(), model.len());
            prop_assert_eq!(rx.len(), model.len());
            prop_assert_eq!(rx.is_empty(), model.is_empty());
        }
        // Drain: everything still in flight comes out in FIFO order.
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(rx.pop(), Some(expected));
        }
        prop_assert_eq!(rx.pop(), None);
    }

    #[test]
    fn wrap_around_preserves_fifo_at_every_fill_level(
        capacity in 1usize..=5,
        burst in 1usize..=5,
        rounds in 1usize..=200,
    ) {
        // Push `burst.min(capacity)` values then pop them, repeatedly —
        // the head/tail counters cross the capacity boundary at every
        // possible offset over the rounds.
        let (mut tx, mut rx) = spsc(capacity);
        let mut next = 0u64;
        let mut expect = 0u64;
        for _ in 0..rounds {
            for _ in 0..burst.min(capacity) {
                tx.push(next).unwrap();
                next += 1;
            }
            for _ in 0..burst.min(capacity) {
                prop_assert_eq!(rx.pop(), Some(expect));
                expect += 1;
            }
        }
        prop_assert_eq!(rx.pop(), None);
    }
}
