//! MPSC channels (mirror of `crossbeam::channel`, divergences in the
//! crate docs).
//!
//! ```
//! use crossbeam::channel;
//! use std::time::Duration;
//!
//! let (tx, rx) = channel::unbounded();
//! tx.send(7).unwrap();
//! assert_eq!(rx.len(), 1);
//! assert_eq!(rx.recv(), Ok(7));
//! assert!(rx.recv_timeout(Duration::from_millis(1)).is_err());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Error of [`Sender::send`]: the receiver is gone. Carries the
/// unsendable message back, like crossbeam's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error of [`Receiver::recv`]: every sender is gone and the channel is
/// drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error of [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty (senders may still exist).
    Empty,
    /// Every sender is gone and the channel is drained.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error of [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout (senders may still exist).
    Timeout,
    /// Every sender is gone and the channel is drained.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of a channel. Cloneable — many producers may feed
/// the single consumer.
#[derive(Debug)]
pub struct Sender<T> {
    inner: SenderKind<T>,
    queued: Arc<AtomicUsize>,
}

#[derive(Debug)]
enum SenderKind<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let inner = match &self.inner {
            SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
            SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
        };
        Sender {
            inner,
            queued: Arc::clone(&self.queued),
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] (carrying the message) when the receiver has
    /// been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        // Count before handing off so a receiver that observes the message
        // also observes a non-zero len.
        self.queued.fetch_add(1, Ordering::SeqCst);
        let result = match &self.inner {
            SenderKind::Unbounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
            SenderKind::Bounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
        };
        if result.is_err() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
        }
        result
    }

    /// Number of messages currently queued (see the crate docs for the
    /// estimate semantics under concurrency).
    #[must_use]
    pub fn len(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    /// True when no message is currently queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The receiving half of a channel. Single consumer (divergence from
/// crossbeam's MPMC receiver — see the crate docs).
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
    queued: Arc<AtomicUsize>,
}

impl<T> Receiver<T> {
    fn took_one<E>(&self, result: Result<T, E>) -> Result<T, E> {
        if result.is_ok() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
        }
        result
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when every sender is gone and the channel is
    /// drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.took_one(self.inner.recv().map_err(|_| RecvError))
    }

    /// Returns immediately with a message or an emptiness report.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when the channel can never yield
    /// again.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.took_one(self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        }))
    }

    /// Blocks until a message arrives or `timeout` elapses — the shim's
    /// substitute for `select!`-with-deadline patterns.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when the deadline passes first,
    /// [`RecvTimeoutError::Disconnected`] when the channel can never
    /// yield again.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.took_one(self.inner.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        }))
    }

    /// An iterator yielding messages until the channel is empty or
    /// disconnected (never blocks) — the non-blocking drain used for
    /// shutdown accounting.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Number of messages currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    /// True when no message is currently queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Iterator of [`Receiver::try_iter`]: drains without blocking.
#[derive(Debug)]
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// Creates a channel of unlimited capacity: `send` never blocks.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    let queued = Arc::new(AtomicUsize::new(0));
    (
        Sender {
            inner: SenderKind::Unbounded(tx),
            queued: Arc::clone(&queued),
        },
        Receiver { inner: rx, queued },
    )
}

/// Creates a channel holding at most `cap` in-flight messages: `send`
/// blocks while full. `cap = 0` is a rendezvous channel (every send
/// blocks until a matching receive), exactly like crossbeam's.
#[must_use]
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    let queued = Arc::new(AtomicUsize::new(0));
    (
        Sender {
            inner: SenderKind::Bounded(tx),
            queued: Arc::clone(&queued),
        },
        Receiver { inner: rx, queued },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn unbounded_round_trip_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 100);
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn multiple_producers_one_consumer() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            for worker in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        tx.send(worker * 1000 + i).unwrap();
                    }
                });
            }
        });
        let mut got: Vec<u64> = (0..200).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 200, "every send arrives exactly once");
    }

    #[test]
    fn bounded_blocks_at_capacity() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // The third send must wait for a receive; run it on a thread.
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap();
            drop(tx);
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Err(RecvError));
        t.join().unwrap();
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded::<u8>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(1));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_returns_message() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(42), Err(SendError(42)));
        assert_eq!(tx.len(), 0, "failed sends are not counted as queued");
    }

    #[test]
    fn len_tracks_sends_and_receives() {
        let (tx, rx) = bounded(8);
        assert!(tx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.recv().unwrap();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn try_iter_drains_without_blocking() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let drained: Vec<i32> = rx.try_iter().collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        // Empty channel: the iterator ends immediately instead of blocking.
        assert_eq!(rx.try_iter().next(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn rendezvous_channel_pairs_send_with_recv() {
        let (tx, rx) = bounded(0);
        let t = std::thread::spawn(move || tx.send(5));
        assert_eq!(rx.recv(), Ok(5));
        assert!(t.join().unwrap().is_ok());
    }
}
