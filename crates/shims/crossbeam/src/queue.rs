//! Bounded lock-free SPSC ring (the `crossbeam::queue` niche this
//! workspace uses).
//!
//! The live runtime's data plane is a lane *matrix*: one
//! single-producer/single-consumer ring per (producer worker, consumer
//! worker) pair, so batch publication never takes a lock and never
//! contends across producers. This module provides that ring.
//!
//! ## Divergences from crates.io
//!
//! * Real `crossbeam::queue` ships MPMC `ArrayQueue`/`SegQueue`; this
//!   shim ships only the strictly cheaper SPSC split-handle ring
//!   ([`spsc`] → [`Producer`] + [`Consumer`]), which is all the lane
//!   matrix needs. The handles are deliberately `!Clone` — cloning
//!   either end would break the single-producer/single-consumer
//!   ownership the memory ordering relies on.
//! * Disconnect detection is built in (real `ArrayQueue` has none):
//!   dropping the [`Consumer`] makes [`Producer::push`] return
//!   [`PushError::Disconnected`], dropping the [`Producer`] makes
//!   [`Consumer::is_disconnected`] true once the ring drains. The
//!   runtime uses this to route envelopes bound for a shut-down worker
//!   into the ledger instead of losing them silently.
//! * Indices are monotonically increasing `usize` counters (slot =
//!   `index % capacity`), so a ring wraps cleanly but a single ring is
//!   limited to `usize::MAX` pushes over its lifetime — unreachable in
//!   practice and checked nowhere, exactly like real-world Lamport
//!   rings.
//!
//! This is the **only** unsafe code in the shim (the crate is otherwise
//! `#![deny(unsafe_code)]`): the ring stores `MaybeUninit<T>` slots and
//! transfers ownership through raw writes/reads. Soundness argument:
//! the producer is the only writer of `tail` and of slots in
//! `[head, tail)`'s complement; the consumer is the only writer of
//! `head` and only reads slots in `[head, tail)`. Every slot write
//! happens-before the `Release` store of `tail` that publishes it, and
//! every slot read happens-after the `Acquire` load of `tail` that
//! observed it (symmetrically for `head` when the producer reclaims
//! capacity), so a slot is never touched by both sides at once.

use std::cell::UnsafeCell;
use std::error::Error;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads and aligns a value to a cache line so the producer-owned `tail`
/// and consumer-owned `head` never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Inner<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next index the consumer will pop (monotonic; slot = `head % cap`).
    head: CachePadded<AtomicUsize>,
    /// Next index the producer will push (monotonic; slot = `tail % cap`).
    tail: CachePadded<AtomicUsize>,
    /// Cleared by the matching handle's `Drop`; each lives on the line
    /// its *reader* polls rarely, so neither hot path dirties it.
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
}

// SAFETY: the ring hands each element from exactly one thread to exactly
// one other thread (ownership transfer, never sharing), so `T: Send`
// suffices; the atomics coordinating that transfer are `Sync` already.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for Inner<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Inner<T> {
    fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Both handles are gone (`Arc` strong count hit zero), so the
        // indices are quiescent and `&mut self` gives exclusive access:
        // drop every element still in flight in `[head, tail)`.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        let cap = self.capacity();
        for index in head..tail {
            // SAFETY: slots in `[head, tail)` hold initialised values
            // the consumer never popped; we own them exclusively here.
            #[allow(unsafe_code)]
            unsafe {
                self.slots[index % cap].get_mut().assume_init_drop();
            }
        }
    }
}

/// Error returned by [`Producer::push`]; both variants hand the value
/// back so nothing is lost on a refused push.
pub enum PushError<T> {
    /// The ring is at capacity; the consumer has not drained yet.
    Full(T),
    /// The [`Consumer`] was dropped; no push can ever succeed again.
    Disconnected(T),
}

impl<T> PushError<T> {
    /// Recovers the value the failed push handed back.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(value) | PushError::Disconnected(value) => value,
        }
    }
}

impl<T> fmt::Debug for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full(_) => f.write_str("Full(..)"),
            PushError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full(_) => f.write_str("pushing into a full SPSC ring"),
            PushError::Disconnected(_) => {
                f.write_str("pushing into an SPSC ring whose consumer is gone")
            }
        }
    }
}

impl<T> Error for PushError<T> {}

/// The producing half of an SPSC ring; exactly one exists per ring.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of `head`, refreshed only when the ring looks full —
    /// the common-case push does zero loads of the consumer's line.
    head_cache: usize,
}

/// The consuming half of an SPSC ring; exactly one exists per ring.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of `tail`, refreshed only when the ring looks empty.
    tail_cache: usize,
}

// Like the channel shim's endpoints: handles are Debug without a
// `T: Debug` bound — contents are in flight and must not be read here.
impl<T> fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Producer")
            .field("capacity", &self.inner.slots.len())
            .finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Consumer")
            .field("capacity", &self.inner.slots.len())
            .finish_non_exhaustive()
    }
}

/// Creates a bounded SPSC ring of the given capacity.
///
/// # Panics
/// Panics if `capacity` is zero (a rendezvous ring cannot be lock-free).
///
/// # Examples
/// ```
/// let (mut tx, mut rx) = crossbeam::queue::spsc::<u32>(2);
/// tx.push(1).unwrap();
/// tx.push(2).unwrap();
/// assert!(matches!(tx.push(3), Err(crossbeam::queue::PushError::Full(3))));
/// assert_eq!(rx.pop(), Some(1));
/// assert_eq!(rx.pop(), Some(2));
/// assert_eq!(rx.pop(), None);
/// ```
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "SPSC ring capacity must be nonzero");
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        slots,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            head_cache: 0,
        },
        Consumer {
            inner,
            tail_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Pushes a value; wait-free (one `Release` store on success).
    ///
    /// # Errors
    /// [`PushError::Full`] when the consumer has not drained enough
    /// slots yet, [`PushError::Disconnected`] once the [`Consumer`] has
    /// been dropped; both hand the value back.
    pub fn push(&mut self, value: T) -> Result<(), PushError<T>> {
        let inner = &*self.inner;
        let tail = inner.tail.0.load(Ordering::Relaxed);
        if tail - self.head_cache == inner.capacity() {
            self.head_cache = inner.head.0.load(Ordering::Acquire);
            if tail - self.head_cache == inner.capacity() {
                return Err(if inner.consumer_alive.load(Ordering::Acquire) {
                    PushError::Full(value)
                } else {
                    PushError::Disconnected(value)
                });
            }
        }
        if !inner.consumer_alive.load(Ordering::Acquire) {
            return Err(PushError::Disconnected(value));
        }
        // SAFETY: `tail - head < capacity`, so slot `tail % cap` is not
        // in the consumer's live window `[head, tail)`; only this
        // producer may write it, and the `Release` store below publishes
        // the write before the consumer can observe the new `tail`.
        #[allow(unsafe_code)]
        unsafe {
            (*inner.slots[tail % inner.capacity()].get()).write(value);
        }
        inner.tail.0.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Number of elements currently in the ring (exact once both sides
    /// quiesce; a consistent snapshot under concurrency).
    pub fn len(&self) -> usize {
        len_of(&self.inner)
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity this ring was created with.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.inner.producer_alive.store(false, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Pops the oldest value, or `None` if the ring is empty; wait-free.
    pub fn pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.0.load(Ordering::Relaxed);
        if self.tail_cache == head {
            self.tail_cache = inner.tail.0.load(Ordering::Acquire);
            if self.tail_cache == head {
                return None;
            }
        }
        // SAFETY: `head < tail`, so slot `head % cap` holds a value the
        // producer published with a `Release` store we have `Acquire`d;
        // the `Release` store of `head + 1` below returns the slot to
        // the producer only after the read completes.
        #[allow(unsafe_code)]
        let value = unsafe {
            (*inner.slots[head % inner.capacity()].get())
                .as_ptr()
                .read()
        };
        inner.head.0.store(head + 1, Ordering::Release);
        Some(value)
    }

    /// True once the [`Producer`] has been dropped. The ring may still
    /// hold values — drain with [`pop`](Self::pop) until `None` first.
    pub fn is_disconnected(&self) -> bool {
        !self.inner.producer_alive.load(Ordering::Acquire)
    }

    /// Number of elements currently in the ring (exact once both sides
    /// quiesce; a consistent snapshot under concurrency).
    pub fn len(&self) -> usize {
        len_of(&self.inner)
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity this ring was created with.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.inner.consumer_alive.store(false, Ordering::Release);
    }
}

/// `head` is loaded first: `head@t0 <= tail@t0 <= tail@t1`, so the
/// subtraction never underflows even while both sides move.
fn len_of<T>(inner: &Inner<T>) -> usize {
    let head = inner.head.0.load(Ordering::Acquire);
    let tail = inner.tail.0.load(Ordering::Acquire);
    tail - head
}

#[cfg(test)]
mod tests {
    use super::{spsc, PushError};
    use std::sync::Arc;

    #[test]
    fn fifo_order_within_capacity() {
        let (mut tx, mut rx) = spsc(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn wraps_cleanly_across_many_revolutions() {
        let (mut tx, mut rx) = spsc(3);
        for i in 0..1000u32 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn full_hands_the_value_back_and_drain_reopens() {
        let (mut tx, mut rx) = spsc(2);
        tx.push('a').unwrap();
        tx.push('b').unwrap();
        match tx.push('c') {
            Err(PushError::Full(c)) => assert_eq!(c, 'c'),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.pop(), Some('a'));
        tx.push('c').unwrap();
        assert_eq!(rx.pop(), Some('b'));
        assert_eq!(rx.pop(), Some('c'));
    }

    #[test]
    fn dropped_consumer_disconnects_the_producer() {
        let (mut tx, rx) = spsc(4);
        tx.push(1).unwrap();
        drop(rx);
        match tx.push(2) {
            Err(PushError::Disconnected(v)) => assert_eq!(v, 2),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn dropped_producer_lets_the_consumer_drain_then_signals() {
        let (mut tx, mut rx) = spsc(4);
        tx.push(10).unwrap();
        tx.push(20).unwrap();
        drop(tx);
        assert!(rx.is_disconnected());
        assert_eq!(rx.pop(), Some(10));
        assert_eq!(rx.pop(), Some(20));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn dropping_the_ring_drops_in_flight_elements_exactly_once() {
        let token = Arc::new(());
        let (mut tx, mut rx) = spsc(8);
        for _ in 0..5 {
            tx.push(Arc::clone(&token)).unwrap();
        }
        assert_eq!(rx.pop().map(|t| Arc::strong_count(&t)), Some(6));
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn cross_thread_handoff_preserves_order() {
        const N: u64 = 100_000;
        let (mut tx, mut rx) = spsc(16);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    let mut value = i;
                    loop {
                        match tx.push(value) {
                            Ok(()) => break,
                            Err(PushError::Full(v)) => {
                                value = v;
                                // Yield, don't spin: on a single-core box a
                                // spinning producer starves the consumer for
                                // its whole timeslice.
                                std::thread::yield_now();
                            }
                            Err(PushError::Disconnected(_)) => panic!("consumer vanished"),
                        }
                    }
                }
            });
            let mut expected = 0;
            while expected < N {
                match rx.pop() {
                    Some(v) => {
                        assert_eq!(v, expected);
                        expected += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
            assert_eq!(rx.pop(), None);
        });
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_is_rejected() {
        let _ = spsc::<u8>(0);
    }
}
