//! Offline shim for `crossbeam` (the `thread::scope`, `channel`, and
//! `queue` APIs).
//!
//! `crossbeam::thread::scope` predates `std::thread::scope`; the std
//! version provides the same borrow-checked scoped spawning, so this shim
//! is a thin adapter. The [`channel`] module mirrors `crossbeam::channel`
//! over `std::sync::mpsc`; it carries the live runtime's control plane
//! (control channels, tick acks). The [`queue`] module is a bounded
//! lock-free SPSC ring carrying the runtime's *data* plane (the
//! per-(producer, consumer) batch lanes).
//!
//! ## Divergences from crates.io
//!
//! * **Scoped threads:** a panic in an *unjoined* child propagates out
//!   of [`thread::scope`] instead of surfacing as `Err` — irrelevant to
//!   this workspace, which joins every handle.
//! * **Single consumer.** Real crossbeam channels are MPMC and
//!   [`channel::Receiver`] is `Clone`; this shim's receiver is the std
//!   MPSC receiver — one consumer per channel. The workspace's live
//!   runtime gives every worker its own inbox, so multi-consumer
//!   semantics are never exercised.
//! * **No `select!`.** Waiting on several channels is done with
//!   [`channel::Receiver::recv_timeout`] polling loops instead.
//! * `len`/`is_empty` are tracked with a shared atomic counter, so they
//!   are monotonic snapshots (exact once senders and receiver quiesce),
//!   matching how real crossbeam documents them (a relaxed estimate under
//!   concurrency).
//! * Only the surface this workspace uses is provided: `unbounded`,
//!   `bounded` (capacity 0 is a rendezvous channel, like the real
//!   crate), `Sender::send`, `Receiver::{recv, try_recv, recv_timeout,
//!   try_iter}`, the matching error types, and `len`/`is_empty`.
//!   `try_send`, `send_timeout`, deadlines, the blocking `iter`, and
//!   the `after`/`tick`/`never` constructors are absent.
//! * **`queue` is SPSC, not MPMC.** Real `crossbeam::queue` ships the
//!   MPMC `ArrayQueue`/`SegQueue`; this shim ships a bounded Lamport
//!   SPSC ring with split `!Clone` handles, cache-line-padded
//!   head/tail, and built-in disconnect detection — the only shape the
//!   workspace's lane matrix needs, and strictly cheaper (no CAS loops,
//!   one `Release` store per push/pop). See the [`queue`] module docs
//!   for the full divergence list and the soundness argument for its
//!   unsafe interior (the one `#[allow(unsafe_code)]` island in an
//!   otherwise `#![deny(unsafe_code)]` crate).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod queue;

/// Scoped threads (mirror of `crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// The error payload of a panicked thread.
    pub type Payload = Box<dyn Any + Send + 'static>;

    /// A scope for spawning borrow-checked threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread; joining yields the closure's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope again so it can spawn siblings, like real crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let reentry = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&reentry)),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish; `Err` carries its panic payload.
        ///
        /// # Errors
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T, Payload> {
            self.inner.join()
        }
    }

    /// Runs `f` with a [`Scope`]; returns once every spawned thread has
    /// finished.
    ///
    /// # Errors
    /// Mirrors crossbeam's signature. This shim always returns `Ok`
    /// (joined panics are reported through [`ScopedJoinHandle::join`];
    /// unjoined panics propagate).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn spawn_and_join_collects_results() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_via_reentrant_scope() {
        let n = thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn joined_panic_is_an_err() {
        thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
