//! Offline shim for `criterion`.
//!
//! A minimal wall-clock bench harness with Criterion's registration API
//! (`criterion_group!` / `criterion_main!` / `Criterion` /
//! `BenchmarkId`). Each benchmark is warmed up briefly, then timed for a
//! fixed wall-clock budget, and the mean ns/iter is printed. CI runs
//! `cargo bench --no-run`, so benches are primarily compile-checked;
//! `cargo bench` still produces useful local numbers.
//!
//! ## Divergences from crates.io
//!
//! * **No statistics.** One mean ns/iter per benchmark — no outlier
//!   analysis, confidence intervals, HTML reports, or regression
//!   detection against saved baselines.
//! * **Fixed budgets.** ~50 ms warm-up and ~200 ms measurement per
//!   benchmark; `Criterion`'s `sample_size`/`measurement_time`
//!   configuration methods don't exist.
//! * a `--quick` argument (same spelling as real criterion's) shrinks
//!   the warm-up/measure budgets ~10×, for CI smoke runs;
//! * when the `DA_BENCH_JSON` environment variable names a file, every
//!   finished benchmark **appends** one JSON line
//!   `{"bench": …, "ns_per_iter": …, "iters": …, "peak_rss_kb": …}` — a
//!   machine-readable baseline (real criterion writes Criterion-format
//!   JSON trees under `target/criterion/` instead). Start from a fresh
//!   file when the run must hold exactly one baseline. `peak_rss_kb` is
//!   the process-wide `VmHWM` high-water mark at the moment the row
//!   finishes (0 where procfs is unavailable): monotone over the run,
//!   so a jump between consecutive rows localises a memory-hungry
//!   bench, while absolute values compare only within one run.
//! * Only the registration surface this workspace uses exists:
//!   `benchmark_group`, `bench_function`, `bench_with_input`,
//!   `BenchmarkId::{new, from_parameter}`, `group.finish()`. Throughput
//!   annotations, async benches, and custom measurements are absent.
//! * [`Bencher::iter_batched`] times each routine call individually and
//!   sums the segments (setup and output-drop excluded per call), where
//!   real criterion times whole batches between clock reads; the
//!   [`BatchSize`] argument is accepted for API parity and ignored.
//! * **Shim-only extension:** [`BenchmarkGroup::last_measurement`]
//!   exposes the most recent row's `(ns_per_iter, iters)` and
//!   [`BenchmarkGroup::report_alias`] re-emits a measurement under a
//!   derived label (console + JSON baseline) without re-running
//!   anything — real criterion has no such surface; benches using it
//!   only compile against this shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark (nanosecond resolution means
/// this can stay short).
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// `--quick` mode: ~10× shorter budgets for CI smoke runs.
fn quick() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::args().any(|a| a == "--quick"))
}

fn warmup_budget() -> Duration {
    if quick() {
        WARMUP_BUDGET / 10
    } else {
        WARMUP_BUDGET
    }
}

fn measure_budget() -> Duration {
    if quick() {
        MEASURE_BUDGET / 10
    } else {
        MEASURE_BUDGET
    }
}

/// The process' peak resident set (`VmHWM`) in kilobytes, read from
/// `/proc/self/status`; 0 where procfs is unavailable (non-Linux).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("VmHWM"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

/// Appends one JSON line per finished benchmark to `$DA_BENCH_JSON`,
/// when set. Failures to write are silently ignored — emitting a
/// baseline must never fail a bench run.
fn emit_json(label: &str, ns_per_iter: f64, iters: u64) {
    let Some(path) = std::env::var_os("DA_BENCH_JSON") else {
        return;
    };
    use std::io::Write as _;
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(
            file,
            "{{\"bench\":\"{}\",\"ns_per_iter\":{ns_per_iter:.1},\"iters\":{iters},\"peak_rss_kb\":{}}}",
            label.escape_default(),
            peak_rss_kb()
        );
    }
}

/// The bench registry/driver (mirror of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let _ = run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            last: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    /// `(ns_per_iter, iters)` of the most recent row, for
    /// [`BenchmarkGroup::last_measurement`].
    last: Option<(f64, u64)>,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.last = run_one(&format!("{}/{}", self.name, id.label), &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.last = run_one(&format!("{}/{}", self.name, id.label), &mut |b| f(b, input));
        self
    }

    /// Shim-only: `(ns_per_iter, iters)` of the most recent row run in
    /// this group, `None` before the first row (or when that row never
    /// called its `Bencher`). Real criterion exposes no such value.
    #[must_use]
    pub fn last_measurement(&self) -> Option<(f64, u64)> {
        self.last
    }

    /// Shim-only: records an already-measured result under a derived
    /// label — one console line plus one `DA_BENCH_JSON` row, nothing
    /// re-run. Pairs with [`BenchmarkGroup::last_measurement`] to emit
    /// e.g. a "best of this sweep" alias row into the baseline.
    pub fn report_alias(&mut self, id: impl Into<BenchmarkId>, ns_per_iter: f64, iters: u64) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        println!("{label:<50} time: {ns_per_iter:>12.1} ns/iter  ({iters} iters, alias)");
        emit_json(&label, ns_per_iter, iters);
    }

    /// Finishes the group (a no-op in the shim, kept for API parity).
    pub fn finish(&mut self) {}
}

/// Times a closure over many iterations (mirror of `criterion::Bencher`).
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` repeatedly; the return value is dropped (wrap
    /// it in `std::hint::black_box` to keep the computation alive).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: establish caches and a rough per-iter cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup_budget() {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        // Measurement: batch to amortize clock reads on fast routines.
        let per_iter = warm_start.elapsed().as_nanos() / u128::from(warm_iters.max(1));
        let batch = (measure_budget().as_nanos() / 20 / per_iter.max(1)).clamp(1, 1 << 20) as u64;
        let start = Instant::now();
        while start.elapsed() < measure_budget() {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.iters += batch;
        }
        self.elapsed = start.elapsed();
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (API parity with
/// criterion; the shim times per call, so the hint is ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine outputs (the only hint this workspace uses).
    SmallInput,
    /// Larger outputs; treated the same by the shim.
    LargeInput,
    /// Outputs that must be dropped eagerly; treated the same.
    PerIteration,
}

impl Bencher {
    /// Measures `routine` over inputs produced by `setup`, excluding
    /// both the setup call and the drop of the routine's output from the
    /// measurement — for workloads whose fixture construction (topology
    /// build, pool spin-up) would otherwise drown the effect being
    /// measured.
    ///
    /// Divergence: real criterion times whole batches between clock
    /// reads; this shim times each routine call with its own
    /// `Instant` pair and sums the segments, which is exact for the
    /// multi-microsecond routines this workspace benches.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up: establish caches without counting setup time.
        let warm_start = Instant::now();
        while warm_start.elapsed() < warmup_budget() {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        while self.elapsed < measure_budget() {
            let input = setup();
            let start = Instant::now();
            let output = routine(input);
            self.elapsed += start.elapsed();
            drop(std::hint::black_box(output));
            self.iters += 1;
        }
    }
}

fn run_one<F>(label: &str, f: &mut F) -> Option<(f64, u64)>
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label:<50} (no measurement — Bencher::iter never called)");
        return None;
    }
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    println!(
        "{label:<50} time: {:>12.1} ns/iter  ({} iters)",
        ns_per_iter, bencher.iters
    );
    emit_json(label, ns_per_iter, bencher.iters);
    Some((ns_per_iter, bencher.iters))
}

/// Registers benchmark functions under a group name (API-compatible with
/// the unconfigured form of Criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` running the given groups. Arguments passed by
/// `cargo bench` (e.g. `--bench`, filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| 1u64 + 1));
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher::default();
        b.iter_batched(
            || vec![1u64; 64],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.iters > 0);
        assert!(b.elapsed <= measure_budget() * 2, "setup time not counted");
    }

    #[test]
    fn group_api_round_trip() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.bench_function(BenchmarkId::new("f", "p"), |b| b.iter(|| ()));
        g.finish();
    }
}
