//! Collection strategies (`vec`, `hash_set`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection size range is empty");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "collection size range is empty");
        SizeRange { lo, hi }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Generates `Vec`s whose length falls in `size`, mirroring
/// `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `HashSet`s whose size falls in `size`, mirroring
/// `proptest::collection::hash_set`. If the element domain is too small
/// to reach the drawn size, the set saturates at what is reachable
/// (real proptest rejects instead; no caller here relies on that).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = self.size.pick(rng);
        let mut out = HashSet::with_capacity(n);
        let mut attempts = 0usize;
        while out.len() < n && attempts < 50 + n * 20 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn vec_respects_size_window() {
        let mut rng = rng_for("vecsize");
        for _ in 0..100 {
            let v = vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn hash_set_is_dedup_and_bounded() {
        let mut rng = rng_for("setsize");
        for _ in 0..100 {
            let s = hash_set(0u32..100, 0..8).generate(&mut rng);
            assert!(s.len() < 8);
        }
        // Tiny domain saturates instead of spinning forever.
        let s = hash_set(0u32..2, 5..6).generate(&mut rng);
        assert!(s.len() <= 2);
    }
}
