//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no `ValueTree`/shrinking split: a
/// strategy generates a value directly from the test RNG.
pub trait Strategy {
    /// The type of generated values (`Debug` so failures can report them).
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone + Debug>(pub V);

impl<V: Clone + Debug> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// String literals are regex-subset strategies, like in real proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng_for("ranges");
        for _ in 0..200 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = rng_for("map_union");
        let s = Union::new(vec![
            (0u32..5).prop_map(|x| x * 2).boxed(),
            (100u32..105).boxed(),
        ]);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 10 && v % 2 == 0 || (100..105).contains(&v), "{v}");
        }
    }

    #[test]
    fn just_and_tuples() {
        let mut rng = rng_for("just");
        let (a, b) = (Just(7u8), 1u8..3).generate(&mut rng);
        assert_eq!(a, 7);
        assert!((1..3).contains(&b));
    }
}
