//! The [`Arbitrary`] trait and [`any`] strategy constructor.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical strategy (mirror of `proptest::arbitrary`).
pub trait Arbitrary: Sized + Debug {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A`, i.e. `any::<A>()`.
pub struct Any<A>(PhantomData<A>);

/// Returns the canonical strategy for `A`.
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arbitrary_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

arbitrary_uniform!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = rng_for("anybool");
        let mut saw = [false, false];
        for _ in 0..64 {
            saw[usize::from(any::<bool>().generate(&mut rng))] = true;
        }
        assert_eq!(saw, [true, true]);
    }
}
