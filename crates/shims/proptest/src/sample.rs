//! Sampling helpers (`Index`).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;
use rand::Rng;

/// A position into a not-yet-known collection: generated once, projected
/// onto any slice later via modulo, like `proptest::sample::Index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: usize,
}

impl Index {
    /// Projects onto a collection of length `len`.
    ///
    /// # Panics
    /// Panics if `len` is 0.
    #[must_use]
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.raw % len
    }

    /// Returns the element of `slice` this index selects.
    ///
    /// # Panics
    /// Panics if `slice` is empty.
    #[must_use]
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index {
            raw: rng.gen_range(0..usize::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use crate::strategy::Strategy;
    use crate::test_runner::rng_for;

    #[test]
    fn index_projects_in_bounds() {
        let mut rng = rng_for("index");
        let items = [10, 20, 30];
        for _ in 0..100 {
            let ix = any::<Index>().generate(&mut rng);
            assert!(items.contains(ix.get(&items)));
            assert!(ix.index(7) < 7);
        }
    }
}
