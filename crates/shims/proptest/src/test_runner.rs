//! Test-runner plumbing used by the [`proptest!`](crate::proptest) macro.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG driving all strategies (deterministic per test).
pub type TestRng = SmallRng;

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it does not count as a
    /// pass and the runner generates a replacement.
    Reject(String),
    /// A `prop_assert*` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per test. Defaults to 64 (the
    /// real crate defaults to 256; the offline shim trades cases for a
    /// fast tier-1), overridable with `PROPTEST_CASES`.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config requiring `cases` passing cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Builds the deterministic RNG for one property test: seeded from an
/// FNV-1a hash of the test name, XORed with `PROPTEST_SEED` when set, so
/// every test draws an independent but reproducible stream.
#[must_use]
pub fn rng_for(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let user: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    SmallRng::seed_from_u64(hash ^ user)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_deterministic_and_name_dependent() {
        let mut a = rng_for("alpha");
        let mut b = rng_for("alpha");
        let mut c = rng_for("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
