//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses, with
//! deterministic per-test RNG streams (seed derived from the test name,
//! overridable via `PROPTEST_SEED`; case count via `PROPTEST_CASES` or
//! `#![proptest_config(ProptestConfig::with_cases(n))]`).
//!
//! Supported: the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`] /
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map`/`boxed`,
//! numeric range strategies, regex-subset string strategies (see
//! [`string`]), [`collection::vec`] / [`collection::hash_set`],
//! [`arbitrary::any`], and [`sample::Index`].
//!
//! ## Divergences from crates.io
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim instead of a minimized counterexample.
//! * **Deterministic by default.** Real proptest seeds from OS entropy
//!   and persists failing seeds to `proptest-regressions/` files; this
//!   shim derives the stream from the test name (stable across runs and
//!   machines) and has no regression-file machinery — reproduce by name,
//!   or override with `PROPTEST_SEED`.
//! * **64 cases per test** by default instead of 256, keeping tier-1
//!   fast; `PROPTEST_CASES` scales it back up.
//! * `prop_oneof!` picks arms uniformly — weighted arms
//!   (`n => strategy`) are not supported.
//! * Strategy combinators beyond `prop_map`/`boxed` (`prop_filter`,
//!   `prop_flat_map`, `prop_recursive`, tuples of strategies beyond
//!   what the macros expand to) are absent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that generates inputs and runs the body for every
/// case. An optional leading `#![proptest_config(expr)]` sets the config.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __cases: u32 = __config.cases;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let mut __inputs = ::std::string::String::new();
                $(
                    __inputs.push_str("  ");
                    __inputs.push_str(stringify!($arg));
                    __inputs.push_str(" = ");
                    __inputs.push_str(&::std::format!("{:?}\n", &$arg));
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(__why)) => {
                        __rejected += 1;
                        assert!(
                            __rejected < 100 + 10 * __cases,
                            "proptest '{}': too many rejected cases ({}), last: {}",
                            stringify!($name),
                            __rejected,
                            __why,
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest '{}' failed after {} passing case(s): {}\ninputs (no shrinking):\n{}",
                            stringify!($name),
                            __passed,
                            __msg,
                            __inputs,
                        );
                    }
                }
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Like `assert!`, but inside [`proptest!`]: fails the current case with
/// the generated inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n {}",
            __l,
            __r,
            ::std::format!($($fmt)+),
        );
    }};
}

/// Like `assert_ne!`, but inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`\n {}",
            __l,
            ::std::format!($($fmt)+),
        );
    }};
}

/// Discards the current case (counted separately from passes) when the
/// generated inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among several strategies with the same value type.
/// (The real macro supports weights; this workspace only uses the
/// unweighted form.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
