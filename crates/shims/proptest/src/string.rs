//! Regex-subset string generation for `&str` strategies.
//!
//! Supported syntax — the subset appearing in this workspace's property
//! tests, plus the obvious neighbors:
//!
//! * literal characters and `\`-escapes,
//! * character classes `[a-z0-9_-]` (ranges + literals; no negation),
//! * quantifiers `{n}`, `{m,n}`, `?`, and bounded `*` / `+` (0–8 / 1–8),
//! * groups `(...)` with `|` alternation.
//!
//! Anything else panics with a clear message rather than generating the
//! wrong distribution silently.

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    /// Alternatives, each a sequence of quantified atoms.
    Group(Vec<Vec<Quantified>>),
}

#[derive(Debug, Clone)]
struct Quantified {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generates one string matching `pattern`.
///
/// # Panics
/// Panics on regex syntax outside the supported subset.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let alternatives = parse_alternatives(&mut pattern.chars().peekable(), pattern, false);
    let mut out = String::new();
    emit_alternatives(&alternatives, rng, &mut out);
    out
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_alternatives(
    chars: &mut Chars<'_>,
    pattern: &str,
    in_group: bool,
) -> Vec<Vec<Quantified>> {
    let mut alternatives = vec![Vec::new()];
    while let Some(&c) = chars.peek() {
        match c {
            ')' if in_group => break,
            ')' => panic!("regex shim: unmatched ')' in {pattern:?}"),
            '|' => {
                chars.next();
                alternatives.push(Vec::new());
            }
            _ => {
                let atom = parse_atom(chars, pattern);
                let (min, max) = parse_quantifier(chars, pattern);
                alternatives
                    .last_mut()
                    .expect("at least one alternative")
                    .push(Quantified { atom, min, max });
            }
        }
    }
    alternatives
}

fn parse_atom(chars: &mut Chars<'_>, pattern: &str) -> Atom {
    match chars.next().expect("caller peeked") {
        '[' => {
            let mut ranges = Vec::new();
            if chars.peek() == Some(&'^') {
                panic!("regex shim: negated classes unsupported in {pattern:?}");
            }
            loop {
                let lo = match chars.next() {
                    None => panic!("regex shim: unterminated class in {pattern:?}"),
                    Some(']') => break,
                    Some('\\') => chars
                        .next()
                        .unwrap_or_else(|| panic!("regex shim: dangling escape in {pattern:?}")),
                    Some(ch) => ch,
                };
                // `a-z` range, unless `-` is the literal last char.
                if chars.peek() == Some(&'-') {
                    let mut ahead = chars.clone();
                    ahead.next();
                    if ahead.peek().is_some_and(|&hi| hi != ']') {
                        chars.next();
                        let hi = chars.next().expect("peeked above");
                        assert!(lo <= hi, "regex shim: inverted range in {pattern:?}");
                        ranges.push((lo, hi));
                        continue;
                    }
                }
                ranges.push((lo, lo));
            }
            assert!(!ranges.is_empty(), "regex shim: empty class in {pattern:?}");
            Atom::Class(ranges)
        }
        '(' => {
            let alternatives = parse_alternatives(chars, pattern, true);
            match chars.next() {
                Some(')') => Atom::Group(alternatives),
                _ => panic!("regex shim: unterminated group in {pattern:?}"),
            }
        }
        '\\' => Atom::Lit(
            chars
                .next()
                .unwrap_or_else(|| panic!("regex shim: dangling escape in {pattern:?}")),
        ),
        '.' | '^' | '$' => {
            panic!(
                "regex shim: '.', '^', '$' metacharacters unsupported in {pattern:?} (escape them)"
            )
        }
        ch => Atom::Lit(ch),
    }
}

fn parse_quantifier(chars: &mut Chars<'_>, pattern: &str) -> (u32, u32) {
    match chars.peek() {
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('{') => {
            chars.next();
            let mut body = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(ch) => body.push(ch),
                    None => panic!("regex shim: unterminated quantifier in {pattern:?}"),
                }
            }
            let parse_n = |s: &str| -> u32 {
                s.trim().parse().unwrap_or_else(|_| {
                    panic!("regex shim: bad quantifier {body:?} in {pattern:?}")
                })
            };
            match body.split_once(',') {
                None => {
                    let n = parse_n(&body);
                    (n, n)
                }
                Some((lo, "")) => (parse_n(lo), parse_n(lo).saturating_add(8)),
                Some((lo, hi)) => (parse_n(lo), parse_n(hi)),
            }
        }
        _ => (1, 1),
    }
}

fn emit_alternatives(alternatives: &[Vec<Quantified>], rng: &mut TestRng, out: &mut String) {
    let seq = &alternatives[rng.gen_range(0..alternatives.len())];
    for q in seq {
        let reps = rng.gen_range(q.min..=q.max);
        for _ in 0..reps {
            emit_atom(&q.atom, rng, out);
        }
    }
}

fn emit_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Lit(c) => out.push(*c),
        Atom::Class(ranges) => {
            // Weight ranges by their width for a uniform choice over chars.
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let width = hi as u32 - lo as u32 + 1;
                if pick < width {
                    out.push(char::from_u32(lo as u32 + pick).expect("in-range scalar"));
                    return;
                }
                pick -= width;
            }
            unreachable!("pick bounded by total");
        }
        Atom::Group(alternatives) => emit_alternatives(alternatives, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::rng_for;

    #[test]
    fn class_with_repeat_matches_shape() {
        let mut rng = rng_for("shape");
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_-]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(
                cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
            );
        }
    }

    #[test]
    fn exact_count_and_literals() {
        let mut rng = rng_for("exact");
        for _ in 0..50 {
            let s = generate("ab[0-9]{3}z?", &mut rng);
            assert!(s.starts_with("ab"), "{s:?}");
            assert!(s[2..5].chars().all(|c| c.is_ascii_digit()), "{s:?}");
        }
    }

    #[test]
    fn groups_and_alternation() {
        let mut rng = rng_for("alt");
        let mut saw = [false, false];
        for _ in 0..100 {
            let s = generate("(foo|ba[rz]){1,2}", &mut rng);
            assert!(s.len() == 3 || s.len() == 6, "{s:?}");
            saw[usize::from(s.starts_with("foo"))] = true;
        }
        assert!(saw[0] && saw[1], "both alternatives exercised");
    }

    #[test]
    fn escapes_and_literal_dash() {
        let mut rng = rng_for("esc");
        assert_eq!(generate(r"a\.b", &mut rng), "a.b");
        let s = generate("[a-]", &mut rng);
        assert!(s == "a" || s == "-");
    }
}
