//! Offline shim for `serde`.
//!
//! The approved offline dependency set has no serde data format, so the
//! workspace only needs serde for **compile-time conformance**: config and
//! result types declare `#[derive(Serialize, Deserialize)]` and
//! `tests/serde_conformance.rs` asserts the bounds hold. This shim keeps
//! that contract checkable without registry access.
//!
//! ## Divergences from crates.io
//!
//! * [`Serialize`] / [`Deserialize`] are **marker traits with no
//!   methods** — there is no `Serializer`/`Deserializer` machinery, so
//!   nothing can actually be serialized. They are deliberately *not*
//!   blanket implemented, so the conformance test still distinguishes
//!   types that opted in (via the derive) from types that did not.
//! * The derive macros (from the sibling `serde-derive` shim) emit empty
//!   marker impls and accept-but-ignore `#[serde(...)]` helper
//!   attributes.
//! * [`de::DeserializeOwned`] mirrors real serde's blanket impl over
//!   `for<'de> Deserialize<'de>`; the rest of the `de`/`ser` module
//!   trees is absent.
//!
//! Swapping the real `serde` back in is a one-line change in the root
//! `Cargo.toml`'s `[workspace.dependencies]`; no source changes needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
///
/// Real serde's `Serialize` has a `serialize` method; with no data format
/// in the offline set, the method would be dead weight — the marker alone
/// carries the conformance contract.
pub trait Serialize {}

/// Marker for types that can be deserialized from data borrowed for `'de`.
pub trait Deserialize<'de>: Sized {}

/// Deserialization helper traits, mirroring `serde::de`.
pub mod de {
    /// Marker for types deserializable without borrowing from the input,
    /// blanket-implemented exactly like real serde.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}

    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

// Mirror real serde's impls for the std types that appear inside derived
// containers or directly in conformance checks.
macro_rules! mark_primitive {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

mark_primitive!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String,
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<T: Serialize + ?Sized> Serialize for &T {}

macro_rules! mark_tuple {
    ($(($($n:ident),+)),* $(,)?) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {}
        impl<'de, $($n: Deserialize<'de>),+> Deserialize<'de> for ($($n,)+) {}
    )*};
}

mark_tuple!((A), (A, B), (A, B, C), (A, B, C, D));

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, S> Deserialize<'de>
    for std::collections::HashMap<K, V, S>
{
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {}
impl<'de, T: Deserialize<'de>, S> Deserialize<'de> for std::collections::HashSet<T, S> {}
impl<T: Serialize> Serialize for std::collections::VecDeque<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {}
