//! Offline shim for `bytes`.
//!
//! [`Bytes`], [`BytesMut`] and [`BufMut`] implemented over plain owned
//! buffers. The workspace uses these for byte-accurate wire framing in
//! tests, not for zero-copy I/O, so the real crate's refcounted slicing
//! is unnecessary.
//!
//! ## Divergences from crates.io
//!
//! * [`Bytes`] is an immutable `Arc<[u8]>`: cloning is cheap (refcount
//!   bump), but there is no `slice`/`split_to` sub-view machinery — a
//!   slice borrows via `Deref` instead of producing another `Bytes`.
//! * [`BytesMut`] is a growable `Vec<u8>` with `freeze`; no
//!   `reserve`/`split` buffer reuse.
//! * [`BufMut`] provides only what the wire codec uses: `put_u8`,
//!   `put_u16`, `put_u32`, `put_u64` (big-endian) and `put_slice`,
//!   implemented for [`BytesMut`] and `Vec<u8>`. The `Buf` reader
//!   trait, chained buffers, and the `buf::` module are absent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([]),
        }
    }

    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with space for `cap` bytes.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a byte buffer (big-endian integer puts, like the real
/// crate's default methods).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_freeze_round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u32(0x0102_0304);
        b.put_u64(5);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 13);
        assert_eq!(frozen[0], 0xAB);
        assert_eq!(&frozen[1..5], &[1, 2, 3, 4]);
        assert_eq!(frozen[12], 5);
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&*a, b"hello");
    }
}
