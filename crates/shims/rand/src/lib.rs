//! Offline shim for `rand` (0.8-era API surface).
//!
//! Implements exactly what this workspace uses: [`Rng`] (`gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). Everything is fully
//! deterministic per seed — the property the simulation kernel depends on.
//!
//! ## Divergences from crates.io
//!
//! * **Streams are not byte-compatible** with crates.io `rand`:
//!   distribution details differ (e.g. bounded integers use
//!   rejection-free multiply-shift reduction, `gen_bool` compares one
//!   `f64` draw). The workspace only requires determinism under a fixed
//!   shim, not cross-crate stream equality — statistical tests keep
//!   ≥ 3σ headroom for exactly this reason.
//! * `SmallRng` is always xoshiro256++; the real crate picks a
//!   platform-dependent generator, and `seed_from_u64` expansion
//!   (SplitMix64 here) differs accordingly.
//! * No `thread_rng`/`OsRng` (nothing in the workspace may draw from
//!   ambient entropy), no `distributions` module, no `Fill`, no
//!   `gen_ratio`, and `SliceRandom` offers only `shuffle`/`choose`.
//! * [`SeedableRng`] exposes only `seed_from_u64` — full-width
//!   `from_seed` arrays are absent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random `u64`s (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore` (stands in for
/// `rand::distributions::Standard`).
pub trait FromRandom {
    /// Draws one uniformly distributed value.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),* $(,)?) => {$(
        impl FromRandom for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for u128 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    #[allow(clippy::cast_precision_loss)]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    #[allow(clippy::cast_precision_loss)]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts (stands in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.abs_diff(self.start) as u64;
                let offset = reduce64(rng.next_u64(), span);
                self.start.wrapping_add(offset as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = reduce64(rng.next_u64(), span + 1);
                lo.wrapping_add(offset as $t)
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::from_random(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::from_random(rng) * (hi - lo)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::from_random(rng) * (self.end - self.start)
    }
}

/// Maps 64 random bits onto `[0, n)` without modulo bias hot spots
/// (Lemire's multiply-shift reduction).
fn reduce64(x: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(x) * u128::from(n)) >> 64) as u64
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    ///
    /// # Panics
    /// Panics if `p` is NaN.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(!p.is_nan(), "gen_bool: p is NaN");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        f64::from_random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed (only `seed_from_u64` is used here).
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (xoshiro256++).
    ///
    /// Like the real `SmallRng`, this is *not* cryptographically secure
    /// and its stream is not guaranteed stable across shim versions.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling (mirror of `rand::seq`).
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (0..self.len()).sample_from(rng);
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(rng.gen_bool(1.5), "clamped above 1");
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "≈30%, got {hits}");
    }

    #[test]
    fn shuffle_is_permutation_and_choose_in_slice() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
    }
}
