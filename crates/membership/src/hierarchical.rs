//! Two-level process layout for the paper's baseline (c).
//!
//! "Hierarchical gossip-based broadcast" (Sec. VI-E, technique of \[10\])
//! splits the system into `N` small groups *independent of interests*.
//! Each process keeps two views: one over its own group (intra) and one
//! over the rest of the system (inter); an event is gossiped within the
//! group with fanout `ln(m) + c1` and across groups with fanout
//! `ln(N) + c2`.

use crate::{kmg_view_size, MembershipError};
use da_simnet::ProcessId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Partition of a population into `N` interest-oblivious groups.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HierarchicalLayout {
    groups: Vec<Vec<ProcessId>>,
    group_of: HashMap<ProcessId, usize>,
}

impl HierarchicalLayout {
    /// Partitions `population` processes into `group_count` groups of
    /// near-equal size, shuffled by `rng` so grouping carries no id bias.
    ///
    /// # Errors
    ///
    /// Returns [`MembershipError::InvalidParameter`] when `group_count`
    /// is zero or exceeds the population.
    pub fn partition<R: Rng>(
        population: usize,
        group_count: usize,
        rng: &mut R,
    ) -> Result<Self, MembershipError> {
        if group_count == 0 {
            return Err(MembershipError::InvalidParameter {
                reason: "group_count must be positive".to_owned(),
            });
        }
        if group_count > population {
            return Err(MembershipError::InvalidParameter {
                reason: format!("group_count {group_count} exceeds population {population}"),
            });
        }
        let mut ids: Vec<ProcessId> = (0..population).map(ProcessId::from_index).collect();
        ids.shuffle(rng);
        let mut groups: Vec<Vec<ProcessId>> = vec![Vec::new(); group_count];
        for (i, pid) in ids.into_iter().enumerate() {
            groups[i % group_count].push(pid);
        }
        let mut group_of = HashMap::with_capacity(population);
        for (g, members) in groups.iter().enumerate() {
            for &m in members {
                group_of.insert(m, g);
            }
        }
        Ok(HierarchicalLayout { groups, group_of })
    }

    /// Number of groups (`N` in the paper).
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Members of group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn group(&self, g: usize) -> &[ProcessId] {
        &self.groups[g]
    }

    /// The group index of `pid`, or `None` for foreign processes.
    #[must_use]
    pub fn group_of(&self, pid: ProcessId) -> Option<usize> {
        self.group_of.get(&pid).copied()
    }

    /// Typical group size (`m` in the paper): the size of group 0.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.groups.first().map_or(0, Vec::len)
    }
}

/// Static intra- and inter-group views for every process of a layout.
///
/// The intra view samples `(b+1)·ln(m)` members of the own group; the
/// inter view samples `(b+1)·ln(N)` processes *outside* it.
#[derive(Debug, Clone)]
pub struct HierarchicalTables {
    /// Per-process view over the own group.
    pub intra: HashMap<ProcessId, Vec<ProcessId>>,
    /// Per-process view over foreign groups.
    pub inter: HashMap<ProcessId, Vec<ProcessId>>,
}

/// Draws static two-level views for every process.
///
/// # Errors
///
/// Returns [`MembershipError::EmptyGroup`] when the layout has no members.
pub fn static_hierarchical_tables<R: Rng>(
    layout: &HierarchicalLayout,
    b: f64,
    rng: &mut R,
) -> Result<HierarchicalTables, MembershipError> {
    let population: usize = (0..layout.group_count())
        .map(|g| layout.group(g).len())
        .sum();
    if population == 0 {
        return Err(MembershipError::EmptyGroup {
            context: "static_hierarchical_tables",
        });
    }
    let inter_size = kmg_view_size(b, layout.group_count());
    let mut intra = HashMap::with_capacity(population);
    let mut inter = HashMap::with_capacity(population);
    let everyone: Vec<ProcessId> = (0..layout.group_count())
        .flat_map(|g| layout.group(g).iter().copied())
        .collect();
    for g in 0..layout.group_count() {
        let members = layout.group(g);
        let intra_size = kmg_view_size(b, members.len());
        for &me in members {
            let mut own: Vec<ProcessId> = members.iter().copied().filter(|&p| p != me).collect();
            own.shuffle(rng);
            own.truncate(intra_size);
            intra.insert(me, own);

            let mut foreign: Vec<ProcessId> = everyone
                .iter()
                .copied()
                .filter(|&p| layout.group_of(p) != Some(g))
                .collect();
            foreign.shuffle(rng);
            foreign.truncate(inter_size);
            inter.insert(me, foreign);
        }
    }
    Ok(HierarchicalTables { intra, inter })
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::rng_from_seed;
    use std::collections::HashSet;

    #[test]
    fn partition_covers_population() {
        let mut rng = rng_from_seed(1);
        let layout = HierarchicalLayout::partition(100, 10, &mut rng).unwrap();
        assert_eq!(layout.group_count(), 10);
        let all: HashSet<_> = (0..10).flat_map(|g| layout.group(g).to_vec()).collect();
        assert_eq!(all.len(), 100);
        for g in 0..10 {
            assert_eq!(layout.group(g).len(), 10);
        }
    }

    #[test]
    fn partition_uneven_sizes() {
        let mut rng = rng_from_seed(2);
        let layout = HierarchicalLayout::partition(10, 3, &mut rng).unwrap();
        let sizes: Vec<usize> = (0..3).map(|g| layout.group(g).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn partition_validation() {
        let mut rng = rng_from_seed(3);
        assert!(HierarchicalLayout::partition(10, 0, &mut rng).is_err());
        assert!(HierarchicalLayout::partition(5, 10, &mut rng).is_err());
    }

    #[test]
    fn group_of_is_consistent() {
        let mut rng = rng_from_seed(4);
        let layout = HierarchicalLayout::partition(30, 5, &mut rng).unwrap();
        for g in 0..5 {
            for &m in layout.group(g) {
                assert_eq!(layout.group_of(m), Some(g));
            }
        }
        assert_eq!(layout.group_of(ProcessId(999)), None);
    }

    #[test]
    fn tables_are_disjoint_between_levels() {
        let mut rng = rng_from_seed(5);
        let layout = HierarchicalLayout::partition(60, 6, &mut rng).unwrap();
        let tables = static_hierarchical_tables(&layout, 3.0, &mut rng).unwrap();
        for (pid, own) in &tables.intra {
            let g = layout.group_of(*pid).unwrap();
            assert!(own.iter().all(|p| layout.group_of(*p) == Some(g)));
            assert!(!own.contains(pid));
        }
        for (pid, foreign) in &tables.inter {
            let g = layout.group_of(*pid).unwrap();
            assert!(foreign.iter().all(|p| layout.group_of(*p) != Some(g)));
        }
    }

    #[test]
    fn table_sizes_follow_kmg() {
        let mut rng = rng_from_seed(6);
        let layout = HierarchicalLayout::partition(100, 10, &mut rng).unwrap();
        let tables = static_hierarchical_tables(&layout, 3.0, &mut rng).unwrap();
        // m = 10 → (3+1)·ln(10) = 9.2 → capped at 9; N = 10 → same.
        for own in tables.intra.values() {
            assert_eq!(own.len(), 9);
        }
        for foreign in tables.inter.values() {
            assert_eq!(foreign.len(), kmg_view_size(3.0, 10));
        }
    }
}
