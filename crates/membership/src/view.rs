use da_simnet::ProcessId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A bounded partial view of a process group.
///
/// Invariants, maintained by construction and asserted in tests:
///
/// * never contains the owner (a process does not list itself),
/// * never contains duplicates,
/// * never exceeds its capacity.
///
/// When a new entry arrives while the view is full, a uniformly random
/// resident entry is evicted — the randomised replacement of the underlying
/// membership algorithm which keeps views unbiased.
///
/// ```
/// use da_membership::PartialView;
/// use da_simnet::{rng_from_seed, ProcessId};
///
/// let mut view = PartialView::new(ProcessId(0), 2);
/// let mut rng = rng_from_seed(1);
/// view.insert(ProcessId(1), &mut rng);
/// view.insert(ProcessId(0), &mut rng); // self: ignored
/// view.insert(ProcessId(1), &mut rng); // duplicate: ignored
/// assert_eq!(view.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialView {
    owner: ProcessId,
    capacity: usize,
    entries: Vec<ProcessId>,
}

impl PartialView {
    /// Creates an empty view owned by `owner` with the given capacity.
    #[must_use]
    pub fn new(owner: ProcessId, capacity: usize) -> Self {
        PartialView {
            owner,
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// The process owning this view.
    #[must_use]
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// Maximum number of entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the view holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when the view is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// True when `pid` is in the view.
    #[must_use]
    pub fn contains(&self, pid: ProcessId) -> bool {
        self.entries.contains(&pid)
    }

    /// The entries as a slice, in insertion order.
    #[must_use]
    pub fn as_slice(&self) -> &[ProcessId] {
        &self.entries
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.entries.iter().copied()
    }

    /// Inserts `pid`, evicting a random resident if full. Self-references
    /// and duplicates are silently ignored. Returns true if `pid` is in the
    /// view afterwards and was not before.
    pub fn insert<R: Rng>(&mut self, pid: ProcessId, rng: &mut R) -> bool {
        if pid == self.owner || self.contains(pid) || self.capacity == 0 {
            return false;
        }
        if self.entries.len() >= self.capacity {
            let victim = rng.gen_range(0..self.entries.len());
            self.entries.swap_remove(victim);
        }
        self.entries.push(pid);
        true
    }

    /// Removes `pid` if present; returns whether it was present.
    pub fn remove(&mut self, pid: ProcessId) -> bool {
        if let Some(pos) = self.entries.iter().position(|&e| e == pid) {
            self.entries.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Retains only entries satisfying the predicate.
    pub fn retain<F: FnMut(ProcessId) -> bool>(&mut self, mut keep: F) {
        self.entries.retain(|&e| keep(e));
    }

    /// Merges the entries of `incoming` into the view (random eviction
    /// when full). Returns the number of new entries absorbed.
    pub fn merge<R: Rng>(&mut self, incoming: &[ProcessId], rng: &mut R) -> usize {
        incoming
            .iter()
            .filter(|&&pid| self.insert(pid, rng))
            .count()
    }

    /// Samples up to `k` distinct entries uniformly at random.
    pub fn sample<R: Rng>(&self, k: usize, rng: &mut R) -> Vec<ProcessId> {
        let mut pool = self.entries.clone();
        pool.shuffle(rng);
        pool.truncate(k);
        pool
    }

    /// One uniformly random entry, or `None` when empty.
    pub fn choose<R: Rng>(&self, rng: &mut R) -> Option<ProcessId> {
        self.entries.choose(rng).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::rng_from_seed;

    #[test]
    fn rejects_self_and_duplicates() {
        let mut rng = rng_from_seed(0);
        let mut v = PartialView::new(ProcessId(0), 5);
        assert!(!v.insert(ProcessId(0), &mut rng));
        assert!(v.insert(ProcessId(1), &mut rng));
        assert!(!v.insert(ProcessId(1), &mut rng));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn eviction_preserves_capacity() {
        let mut rng = rng_from_seed(1);
        let mut v = PartialView::new(ProcessId(0), 3);
        for i in 1..=10u32 {
            v.insert(ProcessId(i), &mut rng);
            assert!(v.len() <= 3);
        }
        assert_eq!(v.len(), 3);
        // The newest entry always survives its own insertion.
        assert!(v.contains(ProcessId(10)));
    }

    #[test]
    fn zero_capacity_accepts_nothing() {
        let mut rng = rng_from_seed(2);
        let mut v = PartialView::new(ProcessId(0), 0);
        assert!(!v.insert(ProcessId(1), &mut rng));
        assert!(v.is_empty());
        assert!(v.is_full());
    }

    #[test]
    fn remove_and_retain() {
        let mut rng = rng_from_seed(3);
        let mut v = PartialView::new(ProcessId(0), 10);
        for i in 1..=5u32 {
            v.insert(ProcessId(i), &mut rng);
        }
        assert!(v.remove(ProcessId(3)));
        assert!(!v.remove(ProcessId(3)));
        v.retain(|p| p.0 % 2 == 0);
        assert!(v.iter().all(|p| p.0 % 2 == 0));
    }

    #[test]
    fn merge_counts_new_entries() {
        let mut rng = rng_from_seed(4);
        let mut v = PartialView::new(ProcessId(0), 10);
        v.insert(ProcessId(1), &mut rng);
        let absorbed = v.merge(
            &[ProcessId(1), ProcessId(2), ProcessId(0), ProcessId(3)],
            &mut rng,
        );
        assert_eq!(absorbed, 2); // 1 is duplicate, 0 is self
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn sample_is_distinct_and_bounded() {
        let mut rng = rng_from_seed(5);
        let mut v = PartialView::new(ProcessId(0), 10);
        for i in 1..=8u32 {
            v.insert(ProcessId(i), &mut rng);
        }
        let s = v.sample(5, &mut rng);
        assert_eq!(s.len(), 5);
        let mut sorted = s.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert_eq!(v.sample(100, &mut rng).len(), 8);
    }

    #[test]
    fn choose_none_when_empty() {
        let mut rng = rng_from_seed(6);
        let v = PartialView::new(ProcessId(0), 4);
        assert_eq!(v.choose(&mut rng), None);
    }
}
