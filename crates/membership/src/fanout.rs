//! View sizing and gossip fanout rules.

use serde::{Deserialize, Serialize};

/// Size of a KMG partial view: `⌈(b + 1)·ln(S)⌉`, capped at `S − 1`
/// (a process never lists itself).
///
/// This is the topic-table size of the paper (Sec. V-A.1: "tables of size
/// `(b_Ti + 1)·ln(S_Ti)`").
///
/// ```
/// use da_membership::kmg_view_size;
/// assert_eq!(kmg_view_size(3.0, 1000), 28); // (3+1)·6.907 ≈ 27.6 → 28
/// assert_eq!(kmg_view_size(3.0, 1), 0);     // nobody else to know
/// ```
#[must_use]
pub fn kmg_view_size(b: f64, group_size: usize) -> usize {
    if group_size <= 1 {
        return 0;
    }
    let ideal = ((b + 1.0) * (group_size as f64).ln()).ceil() as usize;
    ideal.min(group_size - 1)
}

/// How many group members an infected process gossips an event to.
///
/// The paper's analysis uses `ln(S) + c`; the pseudo-code (Fig. 7, line 9)
/// and the magnitudes plotted in Fig. 8 correspond to `log10(S) + c`
/// (fanout 8 for `S = 1000`, `c = 5`). Both are provided, along with a
/// fixed fanout for ablations; the fanout is `⌊log(S) + c⌋`, capped at
/// `S − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FanoutRule {
    /// `⌊ln(S) + c⌋` — the analysis' natural-log rule.
    LnPlusC {
        /// The additive reliability constant `c` of the paper.
        c: f64,
    },
    /// `⌊log10(S) + c⌋` — the rule matching the paper's plotted magnitudes.
    Log10PlusC {
        /// The additive reliability constant `c` of the paper.
        c: f64,
    },
    /// A constant fanout, for ablation studies.
    Fixed(usize),
}

impl FanoutRule {
    /// Evaluates the rule for a group of `group_size` processes.
    #[must_use]
    pub fn fanout(&self, group_size: usize) -> usize {
        if group_size <= 1 {
            return 0;
        }
        let raw = match self {
            FanoutRule::LnPlusC { c } => ((group_size as f64).ln() + c).floor() as usize,
            FanoutRule::Log10PlusC { c } => ((group_size as f64).log10() + c).floor() as usize,
            FanoutRule::Fixed(k) => *k,
        };
        raw.min(group_size - 1)
    }

    /// The additive constant `c`, when the rule has one.
    #[must_use]
    pub fn c(&self) -> Option<f64> {
        match self {
            FanoutRule::LnPlusC { c } | FanoutRule::Log10PlusC { c } => Some(*c),
            FanoutRule::Fixed(_) => None,
        }
    }
}

impl Default for FanoutRule {
    /// The paper's analysis rule with its simulation constant `c = 5`.
    fn default() -> Self {
        FanoutRule::LnPlusC { c: 5.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmg_view_size_matches_paper_setting() {
        // b = 3 in the simulation.
        assert_eq!(kmg_view_size(3.0, 1000), 28);
        assert_eq!(kmg_view_size(3.0, 100), 19); // 4·4.605 = 18.4 → 19
        assert_eq!(kmg_view_size(3.0, 10), 9); // 4·2.302 = 9.2 → 10, capped at 9
    }

    #[test]
    fn kmg_view_size_degenerate_groups() {
        assert_eq!(kmg_view_size(3.0, 0), 0);
        assert_eq!(kmg_view_size(3.0, 1), 0);
        assert_eq!(kmg_view_size(3.0, 2), 1);
    }

    #[test]
    fn fanout_rules_paper_values() {
        let log10 = FanoutRule::Log10PlusC { c: 5.0 };
        assert_eq!(log10.fanout(1000), 8);
        assert_eq!(log10.fanout(100), 7);
        assert_eq!(log10.fanout(10), 6);
        let ln = FanoutRule::LnPlusC { c: 5.0 };
        assert_eq!(ln.fanout(1000), 11); // 6.907 + 5 = 11.9 → 11
        assert_eq!(ln.fanout(100), 9);
    }

    #[test]
    fn fanout_capped_by_group() {
        assert_eq!(FanoutRule::Fixed(50).fanout(10), 9);
        assert_eq!(FanoutRule::LnPlusC { c: 5.0 }.fanout(2), 1);
        assert_eq!(FanoutRule::Fixed(3).fanout(1), 0);
        assert_eq!(FanoutRule::Fixed(3).fanout(0), 0);
    }

    #[test]
    fn c_accessor() {
        assert_eq!(FanoutRule::LnPlusC { c: 2.0 }.c(), Some(2.0));
        assert_eq!(FanoutRule::Fixed(4).c(), None);
    }

    #[test]
    fn default_is_analysis_rule() {
        assert_eq!(FanoutRule::default(), FanoutRule::LnPlusC { c: 5.0 });
    }
}
