//! Dynamic flat membership (the paper's reference \[10\]).
//!
//! `FlatMembership` is a *component*, not a full [`da_simnet::Protocol`]:
//! it returns the messages it wants to send and the embedding protocol
//! routes them. This lets daMulticast piggyback its supertopic-table
//! entries on membership traffic, exactly as the paper prescribes
//! (Sec. V-A.2a: "once a process has an initialized supertopic table, this
//! information is disseminated, using the updates of the underlying
//! membership algorithm").

use crate::{kmg_view_size, MembershipMsg, PartialView};
use da_simnet::ProcessId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tunables of the flat membership component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MembershipParams {
    /// The paper's `b` constant: views have size `(b + 1)·ln(S)`.
    pub b: f64,
    /// Expected group size used to dimension the view.
    pub expected_group_size: usize,
    /// How many view members receive a digest each gossip period.
    pub digest_fanout: usize,
    /// How many entries a digest carries.
    pub digest_size: usize,
    /// Rounds between digest gossips.
    pub gossip_period: u64,
    /// Entries not heard from for this many rounds are evicted.
    pub eviction_age: u64,
}

impl MembershipParams {
    /// The paper's simulation parameters for a group of `expected_group_size`
    /// processes (`b = 3`).
    #[must_use]
    pub fn paper_default(expected_group_size: usize) -> Self {
        MembershipParams {
            b: 3.0,
            expected_group_size,
            digest_fanout: 3,
            digest_size: 6,
            gossip_period: 5,
            eviction_age: 50,
        }
    }

    /// The view capacity implied by these parameters.
    #[must_use]
    pub fn view_capacity(&self) -> usize {
        kmg_view_size(self.b, self.expected_group_size)
    }
}

/// A dynamic flat partial-view membership component.
///
/// ```
/// use da_membership::{FlatMembership, MembershipParams};
/// use da_simnet::{rng_from_seed, ProcessId};
///
/// let params = MembershipParams::paper_default(100);
/// let mut m = FlatMembership::new(ProcessId(0), params);
/// let mut rng = rng_from_seed(7);
/// let joins = m.join(&[ProcessId(1), ProcessId(2)], &mut rng);
/// assert_eq!(joins.len(), 2); // one JoinRequest per contact
/// assert!(m.view().contains(ProcessId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct FlatMembership {
    me: ProcessId,
    params: MembershipParams,
    view: PartialView,
    last_heard: HashMap<ProcessId, u64>,
}

impl FlatMembership {
    /// Creates an empty membership state for `me`.
    #[must_use]
    pub fn new(me: ProcessId, params: MembershipParams) -> Self {
        let capacity = params.view_capacity();
        FlatMembership {
            me,
            params,
            view: PartialView::new(me, capacity),
            last_heard: HashMap::new(),
        }
    }

    /// Creates a membership state with a pre-populated view (the paper's
    /// static simulation mode).
    #[must_use]
    pub fn with_static_view<R: Rng>(
        me: ProcessId,
        params: MembershipParams,
        entries: &[ProcessId],
        rng: &mut R,
    ) -> Self {
        let mut m = FlatMembership::new(me, params);
        m.view.merge(entries, rng);
        m
    }

    /// The current partial view.
    #[must_use]
    pub fn view(&self) -> &PartialView {
        &self.view
    }

    /// The parameters this component was built with.
    #[must_use]
    pub fn params(&self) -> &MembershipParams {
        &self.params
    }

    /// Joins the group through `contacts`: absorbs them into the view and
    /// returns one [`MembershipMsg::JoinRequest`] per contact.
    pub fn join<R: Rng>(
        &mut self,
        contacts: &[ProcessId],
        rng: &mut R,
    ) -> Vec<(ProcessId, MembershipMsg)> {
        self.view.merge(contacts, rng);
        contacts
            .iter()
            .map(|&c| (c, MembershipMsg::JoinRequest))
            .collect()
    }

    /// Round hook: every `gossip_period` rounds, sends digests to
    /// `digest_fanout` random view members and evicts stale entries.
    pub fn on_round<R: Rng>(&mut self, round: u64, rng: &mut R) -> Vec<(ProcessId, MembershipMsg)> {
        if self.params.gossip_period == 0 || !round.is_multiple_of(self.params.gossip_period) {
            return Vec::new();
        }
        self.evict_stale(round);
        let digest = self.make_digest(rng);
        self.view
            .sample(self.params.digest_fanout, rng)
            .into_iter()
            .map(|to| {
                (
                    to,
                    MembershipMsg::Digest {
                        sample: digest.clone(),
                    },
                )
            })
            .collect()
    }

    /// Message hook: merges incoming samples and answers join requests.
    pub fn on_message<R: Rng>(
        &mut self,
        from: ProcessId,
        msg: &MembershipMsg,
        round: u64,
        rng: &mut R,
    ) -> Vec<(ProcessId, MembershipMsg)> {
        self.mark_heard(from, round);
        self.view.insert(from, rng);
        match msg {
            MembershipMsg::JoinRequest => {
                let sample = self.make_digest(rng);
                vec![(from, MembershipMsg::JoinReply { sample })]
            }
            MembershipMsg::JoinReply { sample } | MembershipMsg::Digest { sample } => {
                for &pid in sample {
                    if self.view.insert(pid, rng) {
                        self.mark_heard(pid, round);
                    }
                }
                Vec::new()
            }
        }
    }

    /// Records liveness evidence for `pid` at `round`.
    pub fn mark_heard(&mut self, pid: ProcessId, round: u64) {
        if pid != self.me {
            self.last_heard.insert(pid, round);
        }
    }

    /// Evicts view entries not heard from within `eviction_age` rounds.
    /// Entries never heard from (static seeds) are exempt until first
    /// contact — the paper's static mode must not decay.
    pub fn evict_stale(&mut self, round: u64) {
        let age = self.params.eviction_age;
        let last_heard = &self.last_heard;
        self.view.retain(|pid| {
            last_heard
                .get(&pid)
                .is_none_or(|&heard| round.saturating_sub(heard) <= age)
        });
    }

    fn make_digest<R: Rng>(&self, rng: &mut R) -> Vec<ProcessId> {
        let mut sample = self
            .view
            .sample(self.params.digest_size.saturating_sub(1), rng);
        sample.push(self.me);
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::rng_from_seed;

    fn params() -> MembershipParams {
        MembershipParams {
            b: 3.0,
            expected_group_size: 50,
            digest_fanout: 3,
            digest_size: 4,
            gossip_period: 2,
            eviction_age: 10,
        }
    }

    #[test]
    fn join_contacts_enter_view() {
        let mut rng = rng_from_seed(1);
        let mut m = FlatMembership::new(ProcessId(0), params());
        let out = m.join(&[ProcessId(1), ProcessId(2)], &mut rng);
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|(_, msg)| matches!(msg, MembershipMsg::JoinRequest)));
        assert_eq!(m.view().len(), 2);
    }

    #[test]
    fn join_request_is_answered_with_sample() {
        let mut rng = rng_from_seed(2);
        let mut m = FlatMembership::new(ProcessId(0), params());
        m.join(&[ProcessId(5)], &mut rng);
        let replies = m.on_message(ProcessId(9), &MembershipMsg::JoinRequest, 0, &mut rng);
        assert_eq!(replies.len(), 1);
        let (to, msg) = &replies[0];
        assert_eq!(*to, ProcessId(9));
        match msg {
            MembershipMsg::JoinReply { sample } => assert!(sample.contains(&ProcessId(0))),
            other => panic!("expected JoinReply, got {other:?}"),
        }
        // The joiner is learned.
        assert!(m.view().contains(ProcessId(9)));
    }

    #[test]
    fn digest_gossip_period_respected() {
        let mut rng = rng_from_seed(3);
        let mut m = FlatMembership::new(ProcessId(0), params());
        m.join(&[ProcessId(1), ProcessId(2), ProcessId(3)], &mut rng);
        assert!(!m.on_round(0, &mut rng).is_empty());
        assert!(m.on_round(1, &mut rng).is_empty());
        assert!(!m.on_round(2, &mut rng).is_empty());
    }

    #[test]
    fn digest_carries_sender() {
        let mut rng = rng_from_seed(4);
        let mut m = FlatMembership::new(ProcessId(7), params());
        m.join(&[ProcessId(1)], &mut rng);
        let msgs = m.on_round(0, &mut rng);
        for (_, msg) in msgs {
            match msg {
                MembershipMsg::Digest { sample } => assert!(sample.contains(&ProcessId(7))),
                other => panic!("expected Digest, got {other:?}"),
            }
        }
    }

    #[test]
    fn merges_digest_samples() {
        let mut rng = rng_from_seed(5);
        let mut m = FlatMembership::new(ProcessId(0), params());
        let out = m.on_message(
            ProcessId(1),
            &MembershipMsg::Digest {
                sample: vec![ProcessId(2), ProcessId(3), ProcessId(0)],
            },
            4,
            &mut rng,
        );
        assert!(out.is_empty());
        assert!(m.view().contains(ProcessId(1)), "sender learned");
        assert!(m.view().contains(ProcessId(2)));
        assert!(m.view().contains(ProcessId(3)));
        assert!(!m.view().contains(ProcessId(0)), "self never enters view");
    }

    #[test]
    fn stale_entries_evicted_after_age() {
        let mut rng = rng_from_seed(6);
        let mut m = FlatMembership::new(ProcessId(0), params());
        m.on_message(
            ProcessId(1),
            &MembershipMsg::Digest { sample: vec![] },
            0,
            &mut rng,
        );
        m.evict_stale(5);
        assert!(m.view().contains(ProcessId(1)), "young entry survives");
        m.evict_stale(11);
        assert!(!m.view().contains(ProcessId(1)), "stale entry evicted");
    }

    #[test]
    fn static_entries_exempt_from_eviction() {
        let mut rng = rng_from_seed(7);
        let m0 = FlatMembership::with_static_view(
            ProcessId(0),
            params(),
            &[ProcessId(1), ProcessId(2)],
            &mut rng,
        );
        let mut m = m0;
        m.evict_stale(1_000_000);
        assert_eq!(m.view().len(), 2, "never-heard static seeds persist");
    }

    #[test]
    fn view_respects_kmg_capacity() {
        let mut rng = rng_from_seed(8);
        let p = MembershipParams::paper_default(100);
        let mut m = FlatMembership::new(ProcessId(0), p);
        let everyone: Vec<ProcessId> = (1..100).map(ProcessId).collect();
        m.join(&everyone, &mut rng);
        assert_eq!(m.view().len(), p.view_capacity());
        assert_eq!(m.view().len(), 19); // (3+1)·ln(100) = 18.4 → 19
    }
}
