use da_simnet::{ProcessId, WireSize};
use serde::{Deserialize, Serialize};

/// Messages of the flat gossip membership protocol.
///
/// These are embedded by higher layers (daMulticast wraps them in its own
/// envelope so membership digests can piggyback supertopic-table entries).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MembershipMsg {
    /// A joining process announces itself to a contact.
    JoinRequest,
    /// A contact answers a join with a sample of its view.
    JoinReply {
        /// Random sample of the replier's view (plus itself implicitly).
        sample: Vec<ProcessId>,
    },
    /// Periodic digest gossip: a random sample of the sender's view.
    Digest {
        /// Random sample of the sender's view.
        sample: Vec<ProcessId>,
    },
}

impl WireSize for MembershipMsg {
    fn wire_size(&self) -> usize {
        // 1-byte discriminant + payload.
        match self {
            MembershipMsg::JoinRequest => 1,
            MembershipMsg::JoinReply { sample } | MembershipMsg::Digest { sample } => {
                1 + sample.wire_size()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        assert_eq!(MembershipMsg::JoinRequest.wire_size(), 1);
        let d = MembershipMsg::Digest {
            sample: vec![ProcessId(1), ProcessId(2)],
        };
        assert_eq!(d.wire_size(), 1 + 4 + 8);
    }
}
