//! # da-membership — gossip-based membership substrate
//!
//! daMulticast sits on top of "the underlying gossip-based membership
//! algorithm" of Kermarrec, Massoulié and Ganesh (*Probabilistic Reliable
//! Dissemination in Large-Scale Systems*, IEEE TPDS 2003 — reference \[10\]
//! of the paper). Each process keeps a **partial view** of its group of
//! size `(b + 1)·ln(S)` and gossips membership digests to keep it fresh.
//!
//! This crate implements that substrate three ways:
//!
//! * [`PartialView`] — the bounded, self-excluding, duplicate-free view
//!   data structure everything else shares.
//! * [`static_init`] — the paper's simulation mode (Sec. VII-A: "the
//!   membership tables of a process are determined statically ... and do
//!   not change during the entire simulation").
//! * [`FlatMembership`] — a dynamic flat membership component with joins,
//!   periodic digest gossip, and staleness eviction, used by the full
//!   protocol stack in examples and integration tests.
//! * [`hierarchical`] — the interest-oblivious two-level process layout
//!   used by the paper's baseline (c), "hierarchical gossip-based
//!   broadcast".
//!
//! ```
//! use da_membership::{kmg_view_size, FanoutRule};
//!
//! // The paper's setting: b = 3, S_T2 = 1000 → views of (3+1)·ln(1000) ≈ 28.
//! assert_eq!(kmg_view_size(3.0, 1000), 28);
//! // Gossip fanout of the paper's simulator: log10(S) + c.
//! let rule = FanoutRule::Log10PlusC { c: 5.0 };
//! assert_eq!(rule.fanout(1000), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fanout;
mod flat;
pub mod hierarchical;
mod message;
pub mod static_init;
mod view;

pub use error::MembershipError;
pub use fanout::{kmg_view_size, FanoutRule};
pub use flat::{FlatMembership, MembershipParams};
pub use message::MembershipMsg;
pub use view::PartialView;
