//! Static membership initialisation — the paper's simulation mode.
//!
//! Sec. VII-A: "In the simulation, the membership tables (topic table and
//! supertopic table) of a process are determined statically. These tables
//! are initialized at the beginning of the simulation and do not change."
//!
//! Given the member lists of every group, these functions draw, for each
//! member, a uniform random topic table of size `(b + 1)·ln(S)` and a
//! supertopic table of size `z` pointing into the supergroup.

use crate::{kmg_view_size, MembershipError};
use da_simnet::ProcessId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// Draws a static topic table for every member of a group: a uniform
/// sample of `min(S−1, ⌈(b+1)·ln(S)⌉)` *other* members.
///
/// # Errors
///
/// Returns [`MembershipError::EmptyGroup`] when `members` is empty.
pub fn static_topic_tables<R: Rng>(
    members: &[ProcessId],
    b: f64,
    rng: &mut R,
) -> Result<HashMap<ProcessId, Vec<ProcessId>>, MembershipError> {
    if members.is_empty() {
        return Err(MembershipError::EmptyGroup {
            context: "static_topic_tables",
        });
    }
    let view_size = kmg_view_size(b, members.len());
    let mut tables = HashMap::with_capacity(members.len());
    for &me in members {
        let mut pool: Vec<ProcessId> = members.iter().copied().filter(|&p| p != me).collect();
        pool.shuffle(rng);
        pool.truncate(view_size);
        tables.insert(me, pool);
    }
    Ok(tables)
}

/// Draws a static supertopic table (`sTable`, size `z`) for every member of
/// a group, sampling uniformly from the supergroup. Entries are distinct;
/// when the supergroup is smaller than `z` every superprocess is listed.
///
/// # Errors
///
/// Returns [`MembershipError::EmptyGroup`] when either list is empty, and
/// [`MembershipError::InvalidParameter`] when `z == 0`.
pub fn static_super_tables<R: Rng>(
    members: &[ProcessId],
    supergroup: &[ProcessId],
    z: usize,
    rng: &mut R,
) -> Result<HashMap<ProcessId, Vec<ProcessId>>, MembershipError> {
    if members.is_empty() {
        return Err(MembershipError::EmptyGroup {
            context: "static_super_tables (members)",
        });
    }
    if supergroup.is_empty() {
        return Err(MembershipError::EmptyGroup {
            context: "static_super_tables (supergroup)",
        });
    }
    if z == 0 {
        return Err(MembershipError::InvalidParameter {
            reason: "supertopic table size z must be positive".to_owned(),
        });
    }
    let mut tables = HashMap::with_capacity(members.len());
    for &me in members {
        let mut pool: Vec<ProcessId> = supergroup.iter().copied().filter(|&p| p != me).collect();
        pool.shuffle(rng);
        pool.truncate(z);
        tables.insert(me, pool);
    }
    Ok(tables)
}

/// Assigns dense process ids to the groups of a linear topic chain.
///
/// `group_sizes[i]` is `S_Ti`; the returned vector maps level `i` to the
/// list of process ids interested in `Ti`. Ids are assigned contiguously
/// top-down: the root group gets `0..S_T0`, then `T1`, and so on — matching
/// the paper's assumption that every process is interested in exactly one
/// topic.
#[must_use]
pub fn assign_group_members(group_sizes: &[usize]) -> Vec<Vec<ProcessId>> {
    let mut next = 0u32;
    group_sizes
        .iter()
        .map(|&size| {
            let members = (next..next + size as u32).map(ProcessId).collect();
            next += size as u32;
            members
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::rng_from_seed;
    use std::collections::HashSet;

    fn members(n: u32) -> Vec<ProcessId> {
        (0..n).map(ProcessId).collect()
    }

    #[test]
    fn topic_tables_have_kmg_size() {
        let mut rng = rng_from_seed(1);
        let group = members(100);
        let tables = static_topic_tables(&group, 3.0, &mut rng).unwrap();
        assert_eq!(tables.len(), 100);
        for (me, table) in &tables {
            assert_eq!(table.len(), 19); // (3+1)·ln(100) → 19
            assert!(!table.contains(me), "no self-reference");
            let unique: HashSet<_> = table.iter().collect();
            assert_eq!(unique.len(), table.len(), "no duplicates");
        }
    }

    #[test]
    fn topic_tables_tiny_group() {
        let mut rng = rng_from_seed(2);
        let group = members(2);
        let tables = static_topic_tables(&group, 3.0, &mut rng).unwrap();
        assert_eq!(tables[&ProcessId(0)], vec![ProcessId(1)]);
        assert_eq!(tables[&ProcessId(1)], vec![ProcessId(0)]);
    }

    #[test]
    fn topic_tables_single_member() {
        let mut rng = rng_from_seed(3);
        let group = members(1);
        let tables = static_topic_tables(&group, 3.0, &mut rng).unwrap();
        assert!(tables[&ProcessId(0)].is_empty());
    }

    #[test]
    fn empty_group_rejected() {
        let mut rng = rng_from_seed(4);
        assert!(static_topic_tables(&[], 3.0, &mut rng).is_err());
    }

    #[test]
    fn super_tables_sample_supergroup() {
        let mut rng = rng_from_seed(5);
        let group = members(10);
        let supergroup: Vec<ProcessId> = (100..150).map(ProcessId).collect();
        let tables = static_super_tables(&group, &supergroup, 3, &mut rng).unwrap();
        for table in tables.values() {
            assert_eq!(table.len(), 3);
            assert!(table.iter().all(|p| supergroup.contains(p)));
            let unique: HashSet<_> = table.iter().collect();
            assert_eq!(unique.len(), 3);
        }
    }

    #[test]
    fn super_tables_small_supergroup_lists_everyone() {
        let mut rng = rng_from_seed(6);
        let group = members(5);
        let supergroup = vec![ProcessId(100), ProcessId(101)];
        let tables = static_super_tables(&group, &supergroup, 5, &mut rng).unwrap();
        for table in tables.values() {
            assert_eq!(table.len(), 2);
        }
    }

    #[test]
    fn super_tables_validation() {
        let mut rng = rng_from_seed(7);
        let group = members(3);
        let supergroup = members(3);
        assert!(static_super_tables(&[], &supergroup, 3, &mut rng).is_err());
        assert!(static_super_tables(&group, &[], 3, &mut rng).is_err());
        assert!(static_super_tables(&group, &supergroup, 0, &mut rng).is_err());
    }

    #[test]
    fn assign_members_paper_topology() {
        // The paper's setting: S_T0 = 10, S_T1 = 100, S_T2 = 1000.
        let groups = assign_group_members(&[10, 100, 1000]);
        assert_eq!(groups[0].len(), 10);
        assert_eq!(groups[1].len(), 100);
        assert_eq!(groups[2].len(), 1000);
        // Contiguous and disjoint.
        assert_eq!(groups[0][0], ProcessId(0));
        assert_eq!(groups[1][0], ProcessId(10));
        assert_eq!(groups[2][0], ProcessId(110));
        let all: HashSet<_> = groups.iter().flatten().collect();
        assert_eq!(all.len(), 1110);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let group = members(50);
        let a = static_topic_tables(&group, 3.0, &mut rng_from_seed(9)).unwrap();
        let b = static_topic_tables(&group, 3.0, &mut rng_from_seed(9)).unwrap();
        assert_eq!(a, b);
    }
}
