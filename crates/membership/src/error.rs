use std::error::Error;
use std::fmt;

/// Errors surfaced by the membership substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MembershipError {
    /// A group had no members where at least one was required.
    EmptyGroup {
        /// Which operation needed a non-empty group.
        context: &'static str,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembershipError::EmptyGroup { context } => {
                write!(f, "operation '{context}' requires a non-empty group")
            }
            MembershipError::InvalidParameter { reason } => {
                write!(f, "invalid membership parameter: {reason}")
            }
        }
    }
}

impl Error for MembershipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = MembershipError::EmptyGroup {
            context: "static_init",
        };
        assert!(e.to_string().contains("static_init"));
        let e = MembershipError::InvalidParameter {
            reason: "z must be positive".into(),
        };
        assert!(e.to_string().contains("z must be positive"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MembershipError>();
    }
}
