//! Property tests on the membership substrate: partial-view invariants
//! under arbitrary operation sequences, static-table laws, and gossip
//! convergence.

use da_membership::{
    kmg_view_size, static_init, FanoutRule, FlatMembership, MembershipParams, PartialView,
};
use da_simnet::{rng_from_seed, ProcessId};
use proptest::prelude::*;
use std::collections::HashSet;

/// Operations applied to a view in sequence.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    Remove(u32),
    Merge(Vec<u32>),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..50).prop_map(Op::Insert),
        (0u32..50).prop_map(Op::Remove),
        prop::collection::vec(0u32..50, 0..8).prop_map(Op::Merge),
    ]
}

proptest! {
    /// View invariants hold under every operation sequence: no self, no
    /// duplicates, never over capacity.
    #[test]
    fn view_invariants_under_any_ops(
        capacity in 0usize..12,
        ops in prop::collection::vec(arb_op(), 0..60),
        seed in 0u64..10_000,
    ) {
        let owner = ProcessId(0);
        let mut rng = rng_from_seed(seed);
        let mut view = PartialView::new(owner, capacity);
        for op in ops {
            match op {
                Op::Insert(p) => {
                    view.insert(ProcessId(p), &mut rng);
                }
                Op::Remove(p) => {
                    view.remove(ProcessId(p));
                }
                Op::Merge(ps) => {
                    let pids: Vec<ProcessId> = ps.into_iter().map(ProcessId).collect();
                    view.merge(&pids, &mut rng);
                }
            }
            prop_assert!(view.len() <= capacity);
            prop_assert!(!view.contains(owner));
            let unique: HashSet<ProcessId> = view.iter().collect();
            prop_assert_eq!(unique.len(), view.len());
        }
    }

    /// `kmg_view_size` laws: bounded by S−1, monotone in b, and matches
    /// the ceil formula when not capped.
    #[test]
    fn view_size_laws(b in 0.0f64..8.0, s in 0usize..100_000) {
        let size = kmg_view_size(b, s);
        prop_assert!(size <= s.saturating_sub(1));
        prop_assert!(kmg_view_size(b + 1.0, s) >= size);
        if s > 1 {
            let ideal = ((b + 1.0) * (s as f64).ln()).ceil() as usize;
            prop_assert_eq!(size, ideal.min(s - 1));
        }
    }

    /// Fanout rules: capped by S−1, zero for trivial groups, monotone in
    /// the group size.
    #[test]
    fn fanout_laws(c in 0.0f64..10.0, s in 0usize..100_000) {
        for rule in [
            FanoutRule::LnPlusC { c },
            FanoutRule::Log10PlusC { c },
            FanoutRule::Fixed(c as usize),
        ] {
            let f = rule.fanout(s);
            prop_assert!(f <= s.saturating_sub(1));
            if s <= 1 {
                prop_assert_eq!(f, 0);
            }
            prop_assert!(rule.fanout(s.saturating_mul(2)) >= f || s == 0);
        }
    }

    /// Static topic tables: right size, no self, no duplicates, all
    /// within the group — for any group size.
    #[test]
    fn static_tables_well_formed(n in 1usize..200, b in 0.0f64..6.0, seed in 0u64..10_000) {
        let members: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
        let mut rng = rng_from_seed(seed);
        let tables = static_init::static_topic_tables(&members, b, &mut rng).unwrap();
        let expected = kmg_view_size(b, n);
        for (&me, table) in &tables {
            prop_assert_eq!(table.len(), expected.min(n - 1));
            prop_assert!(!table.contains(&me));
            let unique: HashSet<&ProcessId> = table.iter().collect();
            prop_assert_eq!(unique.len(), table.len());
            prop_assert!(table.iter().all(|p| members.contains(p)));
        }
    }

    /// Static supertables: size min(z, supergroup), distinct, all in the
    /// supergroup.
    #[test]
    fn static_super_tables_well_formed(
        n in 1usize..60,
        sup in 1usize..60,
        z in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let members: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
        let supergroup: Vec<ProcessId> =
            (1000..1000 + sup as u32).map(ProcessId).collect();
        let mut rng = rng_from_seed(seed);
        let tables =
            static_init::static_super_tables(&members, &supergroup, z, &mut rng).unwrap();
        for table in tables.values() {
            prop_assert_eq!(table.len(), z.min(sup));
            prop_assert!(table.iter().all(|p| supergroup.contains(p)));
            let unique: HashSet<&ProcessId> = table.iter().collect();
            prop_assert_eq!(unique.len(), table.len());
        }
    }

    /// Gossip convergence: two membership components that exchange one
    /// digest in each direction end up knowing each other.
    #[test]
    fn digest_exchange_connects(seed in 0u64..10_000) {
        let params = MembershipParams::paper_default(10);
        let mut rng = rng_from_seed(seed);
        let mut a = FlatMembership::new(ProcessId(0), params);
        let mut b = FlatMembership::new(ProcessId(1), params);
        // a joins through b.
        let joins = a.join(&[ProcessId(1)], &mut rng);
        for (to, msg) in joins {
            prop_assert_eq!(to, ProcessId(1));
            let replies = b.on_message(ProcessId(0), &msg, 0, &mut rng);
            for (_, reply) in replies {
                a.on_message(ProcessId(1), &reply, 0, &mut rng);
            }
        }
        prop_assert!(a.view().contains(ProcessId(1)));
        prop_assert!(b.view().contains(ProcessId(0)));
    }

    /// Group assignment is a disjoint dense cover.
    #[test]
    fn assign_members_partition(sizes in prop::collection::vec(0usize..50, 1..6)) {
        let groups = static_init::assign_group_members(&sizes);
        prop_assert_eq!(groups.len(), sizes.len());
        let mut all = Vec::new();
        for (g, size) in groups.iter().zip(&sizes) {
            prop_assert_eq!(g.len(), *size);
            all.extend(g.iter().copied());
        }
        let total: usize = sizes.iter().sum();
        prop_assert_eq!(all.len(), total);
        let unique: HashSet<ProcessId> = all.iter().copied().collect();
        prop_assert_eq!(unique.len(), total, "groups must be disjoint");
        // Dense 0..total.
        for i in 0..total {
            prop_assert!(unique.contains(&ProcessId::from_index(i)));
        }
    }
}
