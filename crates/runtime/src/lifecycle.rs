//! The live counterpart of the simulator's failure handling: a
//! [`LifecycleController`] per worker applies the shared
//! `da_core::failure::FailurePlan` to the worker's stripe of processes.
//!
//! The controller is deliberately dumb: all randomness lives in the
//! plan, whose churn draws are stateless `(pid, round)` hashes
//! ([`FailurePlan::churn_flips`]). Each worker therefore advances the
//! liveness of its own processes without coordination, and the resulting
//! fates are **identical** to a single-threaded simulator run over the
//! same seed, whatever the worker count — the lifecycle analogue of the
//! transport's per-edge channel streams.

use da_core::failure::FailurePlan;
use da_core::process::{ProcessId, ProcessStatus};
use da_core::seed::{derive_seed, rng_from_seed};
use rand::rngs::SmallRng;
use std::sync::Arc;

/// Seed stream tag separating the per-worker observer streams from the
/// plan's own observation stream.
const WORKER_OBSERVER_STREAM: u64 = 0x0B5E_0000_0000_0100;

/// What one [`LifecycleController::begin_tick`] changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifecycleTransitions {
    /// Churn-driven crashes this tick (scripted fates are not counted —
    /// mirroring the simulator's `sim.churn_crashes`).
    pub churn_crashes: u64,
    /// Churn-driven recoveries this tick.
    pub churn_recoveries: u64,
    /// Local (stripe) indices of every process that came back this tick
    /// — scripted or churn-driven — and is still alive after all
    /// transitions applied. The worker runs their `on_recover` hooks.
    pub recovered: Vec<usize>,
    /// Local (stripe) indices of every process that went down this tick
    /// — scripted or churn-driven. The worker's flight recorder stamps
    /// them as `Crashed` lifecycle events.
    pub crashed: Vec<usize>,
}

/// Applies a [`FailurePlan`] to one worker's stripe of processes.
///
/// Owned by the worker thread alongside its processes: stillborn fates
/// apply at construction (a stillborn process never runs `on_start`),
/// and [`LifecycleController::begin_tick`] advances scripted fates and
/// churn draws at the start of every tick, before any delivery — the
/// exact point the simulator applies them in `step_round`.
///
/// ```
/// use da_core::failure::{Fate, FailureModel};
/// use da_core::ProcessId;
/// use da_runtime::LifecycleController;
/// use std::sync::Arc;
///
/// // p1 crashes at tick 2 and recovers at tick 5.
/// let plan = Arc::new(
///     FailureModel::Schedule(vec![
///         Fate { round: 2, pid: ProcessId(1), crash: true },
///         Fate { round: 5, pid: ProcessId(1), crash: false },
///     ])
///     .materialize(2, 42),
/// );
/// // One worker owning the whole population (stride 1).
/// let mut lc = LifecycleController::new(plan, 0, 1, 2);
/// assert!(lc.is_alive(1));
/// lc.begin_tick(2);
/// assert!(!lc.is_alive(1), "scripted crash applied");
/// lc.begin_tick(3);
/// lc.begin_tick(4);
/// let t = lc.begin_tick(5);
/// assert!(lc.is_alive(1));
/// assert_eq!(t.recovered, vec![1], "worker must run p1's on_recover");
/// ```
#[derive(Debug)]
pub struct LifecycleController {
    plan: Arc<FailurePlan>,
    /// Liveness of each owned process, indexed by local stripe slot
    /// (`pid = worker + slot * stride`).
    status: Vec<ProcessStatus>,
    /// Per-worker observation stream of the per-observer model; `None`
    /// when the plan never samples observers.
    observer_rng: Option<SmallRng>,
    worker: usize,
    stride: usize,
}

impl LifecycleController {
    /// Builds the controller for the worker owning processes
    /// `worker + i * stride` for `i < owned`, applying the plan's
    /// stillborn fates immediately.
    #[must_use]
    pub fn new(plan: Arc<FailurePlan>, worker: usize, stride: usize, owned: usize) -> Self {
        let stride = stride.max(1);
        // One pass over the plan's crashed list (not one scan per owned
        // process): flip exactly the stillborn pids of this stripe.
        let mut status = vec![ProcessStatus::Alive; owned];
        for pid in plan.initially_crashed() {
            let idx = pid.index();
            if idx % stride == worker {
                let slot = (idx - worker) / stride;
                if slot < owned {
                    status[slot] = ProcessStatus::Crashed;
                }
            }
        }
        let observer_rng = plan.observer_alive_probability().map(|_| {
            rng_from_seed(derive_seed(
                plan.observation_seed(),
                WORKER_OBSERVER_STREAM + worker as u64,
            ))
        });
        LifecycleController {
            plan,
            status,
            observer_rng,
            worker,
            stride,
        }
    }

    /// Liveness of the process at local stripe slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range for the stripe.
    #[must_use]
    pub fn is_alive(&self, slot: usize) -> bool {
        self.status[slot].is_alive()
    }

    /// Status of the process at local stripe slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range for the stripe.
    #[must_use]
    pub fn status(&self, slot: usize) -> ProcessStatus {
        self.status[slot]
    }

    /// Number of currently alive processes in the stripe.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.status.iter().filter(|s| s.is_alive()).count()
    }

    /// True when the plan can never change anyone's liveness — the
    /// whole controller is then a no-op the worker can skip thinking
    /// about.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.plan.is_inert()
    }

    /// Samples whether one particular transmission observes its target
    /// as alive — the per-observer model (paper Fig. 11), drawn on this
    /// worker's own observation stream. Always `true` outside
    /// `FailureModel::PerObserver`.
    ///
    /// Per-observer failures are *per transmission by definition*
    /// (independent Bernoulli draws, uncorrelated across observers), so
    /// a per-worker stream reproduces the model exactly; only the — by
    /// construction meaningless — global draw order differs from the
    /// simulator's single stream.
    #[must_use]
    pub fn observes_alive(&mut self) -> bool {
        match self.observer_rng.as_mut() {
            None => true,
            Some(rng) => self.plan.observes_alive(rng),
        }
    }

    /// Applies the transitions due at the start of `tick` to the owned
    /// stripe — via the shared authoritative `FailurePlan::transition`
    /// step, so the resulting fates are exactly the simulator's — and
    /// reports what changed.
    pub fn begin_tick(&mut self, tick: u64) -> LifecycleTransitions {
        let mut out = LifecycleTransitions::default();
        if !self.plan.has_transitions() {
            return out;
        }
        // This loop runs once per owned process per tick — the single
        // hottest lifecycle path in the runtime. Hoist the `Arc` deref
        // out of the loop, and keep the no-schedule common case (churn
        // or nothing) to a bare draw-and-compare per process with every
        // piece of bookkeeping behind the rarely-taken flip branch.
        // Semantically this is exactly `FailurePlan::transition` with an
        // empty schedule — `churn_fates_are_stripe_independent` below
        // and the cross-substrate parity suites pin the equivalence.
        let plan = &*self.plan;
        let (worker, stride) = (self.worker, self.stride);
        if plan.schedule().is_empty() {
            for (slot, status) in self.status.iter_mut().enumerate() {
                let alive = status.is_alive();
                let pid = ProcessId::from_index(worker + slot * stride);
                if plan.churn_flips(pid, tick, alive) {
                    if alive {
                        *status = ProcessStatus::Crashed;
                        out.churn_crashes += 1;
                        out.crashed.push(slot);
                    } else {
                        *status = ProcessStatus::Alive;
                        out.churn_recoveries += 1;
                        out.recovered.push(slot);
                    }
                }
            }
            return out;
        }
        for (slot, status) in self.status.iter_mut().enumerate() {
            let was_alive = status.is_alive();
            let pid = ProcessId::from_index(worker + slot * stride);
            let t = plan.transition(pid, tick, was_alive);
            if t.alive != was_alive {
                *status = if t.alive {
                    ProcessStatus::Alive
                } else {
                    ProcessStatus::Crashed
                };
            }
            out.churn_crashes += u64::from(t.churn_crashed);
            out.churn_recoveries += u64::from(t.churn_recovered);
            if t.recovered {
                out.recovered.push(slot);
            }
            if was_alive && !t.alive {
                out.crashed.push(slot);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_core::failure::{FailureModel, Fate};

    fn plan(model: FailureModel, population: usize, seed: u64) -> Arc<FailurePlan> {
        Arc::new(model.materialize(population, seed))
    }

    #[test]
    fn stillborn_applies_at_construction() {
        let p = plan(
            FailureModel::Stillborn {
                alive_fraction: 0.5,
            },
            10,
            3,
        );
        // Two workers, stride 2: the stripes' dead counts sum to the
        // plan's.
        let lc0 = LifecycleController::new(Arc::clone(&p), 0, 2, 5);
        let lc1 = LifecycleController::new(Arc::clone(&p), 1, 2, 5);
        let dead = (5 - lc0.alive_count()) + (5 - lc1.alive_count());
        assert_eq!(dead, p.initially_crashed().len());
        assert_eq!(dead, 5);
    }

    #[test]
    fn scheduled_fates_route_to_the_owning_stripe() {
        let p = plan(
            FailureModel::Schedule(vec![
                Fate {
                    round: 1,
                    pid: ProcessId(3),
                    crash: true,
                },
                Fate {
                    round: 1,
                    pid: ProcessId(4),
                    crash: true,
                },
            ]),
            6,
            0,
        );
        let mut lc0 = LifecycleController::new(Arc::clone(&p), 0, 2, 3); // pids 0,2,4
        let mut lc1 = LifecycleController::new(Arc::clone(&p), 1, 2, 3); // pids 1,3,5
        lc0.begin_tick(1);
        lc1.begin_tick(1);
        assert!(!lc0.is_alive(2), "pid 4 crashed on worker 0");
        assert!(!lc1.is_alive(1), "pid 3 crashed on worker 1");
        assert!(lc0.is_alive(0) && lc0.is_alive(1));
        assert!(lc1.is_alive(0) && lc1.is_alive(2));
    }

    #[test]
    fn churn_fates_are_stripe_independent() {
        // The full liveness trajectory over any striping equals the
        // single-stripe (simulator-shaped) trajectory.
        let model = FailureModel::Churn {
            crash_probability: 0.3,
            recover_probability: 0.3,
        };
        let p = plan(model, 12, 99);
        let trajectory = |workers: usize| -> Vec<Vec<bool>> {
            let mut controllers: Vec<LifecycleController> = (0..workers)
                .map(|w| {
                    let owned = (12 - w).div_ceil(workers);
                    LifecycleController::new(Arc::clone(&p), w, workers, owned)
                })
                .collect();
            (0..20u64)
                .map(|tick| {
                    for lc in &mut controllers {
                        lc.begin_tick(tick);
                    }
                    (0..12)
                        .map(|pid| {
                            let w = pid % workers;
                            controllers[w].is_alive((pid - w) / workers)
                        })
                        .collect()
                })
                .collect()
        };
        let single = trajectory(1);
        assert_eq!(single, trajectory(3));
        assert_eq!(single, trajectory(5));
        // The run actually saw transitions.
        assert!(single.iter().any(|row| row.iter().any(|a| !a)));
    }

    #[test]
    fn recovered_slots_reported_once_and_alive() {
        let p = plan(
            FailureModel::Schedule(vec![
                Fate {
                    round: 0,
                    pid: ProcessId(0),
                    crash: true,
                },
                Fate {
                    round: 2,
                    pid: ProcessId(0),
                    crash: false,
                },
                // Recovering an alive process is a no-op, not a re-entry.
                Fate {
                    round: 2,
                    pid: ProcessId(1),
                    crash: false,
                },
            ]),
            2,
            0,
        );
        let mut lc = LifecycleController::new(p, 0, 1, 2);
        let t0 = lc.begin_tick(0);
        assert_eq!(t0.recovered, Vec::<usize>::new());
        assert_eq!(t0.crashed, vec![0], "scripted crash reported");
        let t1 = lc.begin_tick(1);
        assert_eq!(t1.recovered, Vec::<usize>::new());
        assert_eq!(t1.crashed, Vec::<usize>::new(), "no re-report while down");
        let t2 = lc.begin_tick(2);
        assert_eq!(t2.recovered, vec![0]);
        assert_eq!(t2.crashed, Vec::<usize>::new());
    }

    #[test]
    fn observer_sampling_draws_at_the_configured_rate() {
        let p = plan(
            FailureModel::PerObserver {
                alive_fraction: 0.7,
            },
            4,
            9,
        );
        let mut lc0 = LifecycleController::new(Arc::clone(&p), 0, 2, 2);
        let mut lc1 = LifecycleController::new(Arc::clone(&p), 1, 2, 2);
        let alive0 = (0..10_000).filter(|_| lc0.observes_alive()).count();
        let alive1 = (0..10_000).filter(|_| lc1.observes_alive()).count();
        for alive in [alive0, alive1] {
            assert!((6_600..7_400).contains(&alive), "got {alive}/10000");
        }
        // Nobody is actually crashed in this model, and workers draw on
        // independent streams.
        assert_eq!(lc0.alive_count(), 2);
        assert!(!p.is_inert());

        // Outside PerObserver the sampler is a constant true.
        let mut none = LifecycleController::new(plan(FailureModel::None, 4, 9), 0, 1, 4);
        assert!((0..100).all(|_| none.observes_alive()));
    }

    #[test]
    fn inert_plans_are_flagged() {
        let none = LifecycleController::new(plan(FailureModel::None, 4, 0), 0, 1, 4);
        assert!(none.is_inert());
        let churny = LifecycleController::new(
            plan(
                FailureModel::Churn {
                    crash_probability: 0.1,
                    recover_probability: 0.1,
                },
                4,
                0,
            ),
            0,
            1,
            4,
        );
        assert!(!churny.is_inert());
        assert_eq!(churny.status(0), ProcessStatus::Alive);
    }
}
