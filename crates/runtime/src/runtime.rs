//! The worker pool, the bounded-lag tick scheduler, and the live
//! execution context.
//!
//! ## Scheduling model
//!
//! PR 2's scheduler was a global barrier: the coordinator broadcast each
//! tick and every worker acked it before any worker could start the
//! next. That serialises the pool on two channel hops plus a coordinator
//! wake-up per tick, and a single slow worker gates every fast one even
//! when none of its output could matter yet.
//!
//! The bounded-lag scheduler replaces the barrier with two one-way
//! signals:
//!
//! * **Per-edge publish watermarks** ([`crate::EdgeWatermarks`]): after
//!   flushing tick `t`, a worker bumps an atomic per out-edge. A worker
//!   may execute tick `n` once every peer has published through tick
//!   `n − lag`, where `lag = RuntimeConfig::effective_lag()` — anything
//!   published later is due strictly after `n` (channel latency is at
//!   least `lag`), so no delivery can be missed and no rendezvous is
//!   needed.
//! * **A grant horizon** (one atomic): the coordinator publishes how far
//!   the pool may run, workers free-run up to it. `run_ticks` grants its
//!   whole budget upfront; `run_until_quiescent` grants tick `n + 1` as
//!   soon as tick `n` is *provably* not quiet (any worker reported
//!   activity, or the delivery ledger shows messages still in flight),
//!   which keeps the pipeline full during dissemination yet never lets a
//!   worker execute a tick past the quiescent one.
//!
//! Workers report each executed tick on a shared channel (fire and
//! forget — no round trip); the coordinator folds those into the same
//! [`TickReport`] the barrier produced, so `step_tick` /
//! `run_until_quiescent` keep their exact external semantics: a message
//! sent at tick `n` is still processed at tick `n + k` for its sampled
//! latency `k`, and quiescence is still "nothing sent, delivered, or in
//! flight".

use crate::config::RuntimeConfig;
use crate::lifecycle::LifecycleController;
use crate::metrics::{ShardedCounters, TraceSink, WorkerTrace};
use crate::transport::{lane_matrix, EdgeInbox, EdgeWatermarks, Envelope, FaultyRouter, SendFate};
use crate::wheel::DelayWheel;
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use da_core::process::ProcessIndexError;
use da_core::store::ProcessStore;
use da_core::trace::{TraceEvent, TraceVerdict};
use da_simnet::{CounterId, Counters, ProcessId, ProcessStatus, TraceLog, WireSize};
use damulticast::{Exec, ExecProtocol};
use rand::rngs::SmallRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Pre-registered ids for the counters the transport hot path touches on
/// every message, so a send costs array increments instead of string
/// hashes (the protocol's own labels stay name-keyed, as on the
/// simulator).
#[derive(Debug, Clone, Copy)]
struct HotIds {
    sent: CounterId,
    bytes_sent: CounterId,
    delivered: CounterId,
    dropped_channel: CounterId,
    dropped_partitioned: CounterId,
    dropped_closed: CounterId,
    dropped_shutdown: CounterId,
    dropped_crashed: CounterId,
    dropped_observed: CounterId,
    churn_crashes: CounterId,
    churn_recoveries: CounterId,
}

impl HotIds {
    fn register(counters: &mut Counters) -> Self {
        HotIds {
            sent: counters.register("rt.sent"),
            bytes_sent: counters.register("rt.bytes_sent"),
            delivered: counters.register("rt.delivered"),
            dropped_channel: counters.register("rt.dropped_channel"),
            dropped_partitioned: counters.register("rt.dropped_partitioned"),
            dropped_closed: counters.register("rt.dropped_closed"),
            dropped_shutdown: counters.register("rt.dropped_shutdown"),
            dropped_crashed: counters.register("rt.dropped_crashed"),
            dropped_observed: counters.register("rt.dropped_observed_failed"),
            churn_crashes: counters.register("rt.churn_crashes"),
            churn_recoveries: counters.register("rt.churn_recoveries"),
        }
    }
}

/// The scheduler state shared by the coordinator and every worker: the
/// grant horizon, the per-edge publish watermarks, and the parked flags
/// of the horizon wait protocol.
#[derive(Debug)]
struct SchedulerState {
    /// First tick the pool may NOT execute yet; workers run while their
    /// local clock is below it (and their watermark gate passes).
    horizon: AtomicU64,
    /// Per-edge publish watermarks (see [`EdgeWatermarks`]).
    marks: EdgeWatermarks,
    /// `parked[w]` is set by worker `w` before it blocks on its control
    /// channel waiting for a grant; the coordinator swaps it back and
    /// sends a [`Control::Sync`] wake-up. Dekker-style: the worker
    /// re-checks the horizon between setting its flag and blocking, and
    /// the coordinator stores the horizon before reading flags, so a
    /// wake-up can never be lost (both sides use `SeqCst`).
    parked: Vec<AtomicBool>,
}

/// The live execution context handed to protocol hooks — the runtime's
/// counterpart of `da_simnet::Ctx`, implementing the same
/// [`Exec`] capability surface over the threaded transport.
struct LiveCtx<'a, M> {
    me: ProcessId,
    tick: u64,
    rng: &'a mut SmallRng,
    counters: &'a mut Counters,
    ids: &'a HotIds,
    router: &'a mut FaultyRouter<M>,
    sent: &'a mut u64,
    queued: &'a mut u64,
    /// The worker's flight recorder — `None` when tracing is off, so the
    /// send path pays one branch.
    trace: &'a mut Option<WorkerTrace>,
}

impl<M: WireSize> Exec for LiveCtx<'_, M> {
    type Msg = M;

    fn me(&self) -> ProcessId {
        self.me
    }

    fn round(&self) -> u64 {
        self.tick
    }

    fn send(&mut self, to: ProcessId, msg: M) {
        *self.sent += 1;
        let size = msg.wire_size() as u64;
        self.counters.add(self.ids.sent, 1);
        self.counters.add(self.ids.bytes_sent, size);
        let fate = self.router.send(self.me, to, self.tick, msg);
        match fate {
            SendFate::Queued { .. } => *self.queued += 1,
            SendFate::DroppedChannel => self.counters.add(self.ids.dropped_channel, 1),
            SendFate::DroppedPartitioned => self.counters.add(self.ids.dropped_partitioned, 1),
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.recorder.record(TraceEvent {
                tick: self.tick,
                from: self.me,
                to,
                payload: size,
                verdict: TraceVerdict::Sent,
            });
            // Send-time drops stamp the send tick — mirroring the
            // simulator, where these fates also resolve at send time.
            let dropped = match fate {
                SendFate::Queued { .. } => None,
                SendFate::DroppedChannel => Some(TraceVerdict::DroppedChannel),
                SendFate::DroppedPartitioned => Some(TraceVerdict::DroppedPartitioned),
            };
            if let Some(verdict) = dropped {
                trace.recorder.record(TraceEvent {
                    tick: self.tick,
                    from: self.me,
                    to,
                    payload: size,
                    verdict,
                });
            }
        }
    }

    fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    fn bump(&mut self, label: &str) {
        let id = self.counters.register(label);
        self.counters.add(id, 1);
    }

    fn add(&mut self, label: &str, delta: u64) {
        let id = self.counters.register(label);
        self.counters.add(id, delta);
    }
}

/// Coordinator → worker commands.
enum Control<P> {
    /// Run a closure against one owned process (state injection /
    /// inspection between ticks).
    Apply {
        pid: ProcessId,
        f: Box<dyn FnOnce(&mut P) + Send>,
    },
    /// The horizon moved while this worker was (or was about to be)
    /// parked — wake up and re-read it. Stray syncs are harmless.
    Sync,
    /// Drain down and return the owned processes.
    Stop,
}

/// One worker's account of one executed tick, pushed to the coordinator
/// fire-and-forget and folded into a [`TickReport`].
#[derive(Debug, Clone, Copy)]
struct WorkerReport {
    tick: u64,
    sent: u64,
    /// Sends that survived the channel (queued toward an inbox) — the
    /// coordinator's delivery ledger adds these and subtracts
    /// `delivered`/`dropped_closed`/`dropped_crashed` to know, exactly,
    /// whether anything is still in flight when a tick looks quiet.
    queued: u64,
    delivered: u64,
    dropped_closed: u64,
    /// Envelopes consumed from flight at their due tick without being
    /// delivered: the destination was crashed (`rt.dropped_crashed`) or
    /// the per-observer draw failed (`rt.dropped_observed_failed`).
    undeliverable: u64,
    pending: u64,
    /// Furthest due tick with an envelope provably parked in this
    /// worker's wheel (0 when empty). Every tick before it will report
    /// `pending > 0`, so the coordinator may grant through
    /// `due_horizon + 1` without risking a tick past the quiescent one
    /// — the multi-tick analogue of the loud-report lookahead.
    due_horizon: u64,
}

impl WorkerReport {
    /// True when this worker's slice of the tick shows any sign of life.
    /// Any loud report proves the whole tick non-quiet, which is what
    /// lets the coordinator grant the next tick before the slowest
    /// worker has reported.
    fn is_loud(&self) -> bool {
        self.sent > 0 || self.delivered > 0 || self.pending > 0 || self.queued > 0
    }
}

/// Aggregate summary of one executed tick — the live counterpart of
/// `da_simnet::RoundReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// The tick that was executed.
    pub tick: u64,
    /// Messages handed to the transport during this tick (including
    /// ones the unreliable channel then lost).
    pub sent: u64,
    /// Messages handed to `on_message` during this tick.
    pub delivered: u64,
    /// Messages parked in delay wheels, due in a later tick. With
    /// `max_lag > 1` an envelope can be in flight between a fast
    /// sender and a lagging receiver's wheel when the receiver reports,
    /// so this count may transiently miss it; quiescence detection does
    /// not rely on it (the coordinator keeps an exact ledger of
    /// queued − delivered envelopes).
    pub pending: u64,
}

impl TickReport {
    /// True when the tick neither delivered nor produced nor holds
    /// pending messages — the quiescence criterion.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.sent == 0 && self.delivered == 0 && self.pending == 0
    }
}

/// Partially aggregated reports for one tick, while the coordinator
/// waits for the rest of the pool to reach it.
#[derive(Debug, Default, Clone, Copy)]
struct PartialTick {
    reports: usize,
    sent: u64,
    queued: u64,
    delivered: u64,
    dropped_closed: u64,
    undeliverable: u64,
    pending: u64,
    loud: bool,
}

impl PartialTick {
    fn absorb(&mut self, r: WorkerReport) {
        self.reports += 1;
        self.sent += r.sent;
        self.queued += r.queued;
        self.delivered += r.delivered;
        self.dropped_closed += r.dropped_closed;
        self.undeliverable += r.undeliverable;
        self.pending += r.pending;
        self.loud |= r.is_loud();
    }
}

/// One worker thread: owns a stripe of processes (`pid ≡ id mod stride`),
/// their RNG streams, its [`EdgeInbox`] (the consumer column of the lane
/// matrix), its outgoing [`FaultyRouter`] (wrapping its hub row, with
/// the per-tick coalescing buffers), its delay wheel, and its own
/// metrics registry; advances its local tick clock through the shared
/// horizon and watermark gates.
struct Worker<P: ExecProtocol> {
    id: usize,
    stride: usize,
    /// The stripe's process slab plus lazily-derived RNG streams
    /// (`da_core::store::ProcessStore`): a process that never draws
    /// never materialises its 32-byte generator, which is most of them
    /// at million-process scale.
    store: ProcessStore<P>,
    control: Receiver<Control<P>>,
    inbox: EdgeInbox<P::Msg>,
    faulty: FaultyRouter<P::Msg>,
    reports: Sender<WorkerReport>,
    shards: Arc<ShardedCounters>,
    /// This worker's owned metrics registry — no lock on the hot path;
    /// snapshotted into `shards` once per tick.
    counters: Counters,
    ids: HotIds,
    /// Liveness of the owned stripe under the shared failure plan.
    lifecycle: LifecycleController,
    /// Everything the lanes delivered that is not yet due: every swept
    /// envelope parks here (bucketed by producer lane) until the local
    /// clock reaches its due tick.
    wheel: DelayWheel<P::Msg>,
    /// Reused drain buffer for [`DelayWheel::take_due_into`] — the
    /// tick's due envelopes, emptied in place every tick.
    due_buf: Vec<Envelope<P::Msg>>,
    /// Batches swept off the lanes since the last tick finished; folded
    /// into the `lane_depth` histogram each tick.
    swept: u64,
    /// Flight recorder plus trace histograms — `None` when tracing is
    /// off, which keeps every hot-path trace hook a branch on a `None`.
    trace: Option<WorkerTrace>,
    sched: Arc<SchedulerState>,
    /// `RuntimeConfig::effective_lag()` — how far the local clock may
    /// run ahead of the slowest in-edge's publish watermark.
    lag: u64,
    /// The next tick this worker will execute (its local clock).
    next_tick: u64,
    started: bool,
}

impl<P> Worker<P>
where
    P: ExecProtocol,
    P::Msg: WireSize,
{
    fn pid_of(&self, local: usize) -> ProcessId {
        ProcessId::from_index(self.id + local * self.stride)
    }

    fn local_index(&self, pid: ProcessId) -> usize {
        debug_assert_eq!(pid.index() % self.stride, self.id, "misrouted {pid}");
        (pid.index() - self.id) / self.stride
    }

    fn apply(&mut self, pid: ProcessId, f: Box<dyn FnOnce(&mut P) + Send>) {
        let local = self.local_index(pid);
        f(self.store.get_mut(local));
    }

    /// Applies every control message already sitting in the channel
    /// without blocking. Returns `false` once a stop command is seen.
    /// Called at the top of each tick so fire-and-forget
    /// [`Runtime::inject`] closures land before the next tick executes —
    /// `park` may return on a horizon re-check *without* draining
    /// control, so the main loop cannot rely on the park path having
    /// seen them. A stop seen here must NOT abort ticks the worker was
    /// already granted: the coordinator's run-ahead grant means every
    /// worker owes the pool the same final tick, and honouring stop
    /// early would make the executed-tick range (and so the trace tail)
    /// depend on message-arrival timing instead of on the grant.
    fn drain_control(&mut self) -> bool {
        loop {
            match self.control.try_recv() {
                Ok(Control::Apply { pid, f }) => self.apply(pid, f),
                Ok(Control::Sync) => {}
                Ok(Control::Stop) | Err(TryRecvError::Disconnected) => return false,
                Err(TryRecvError::Empty) => return true,
            }
        }
    }

    /// Moves every batch currently sitting on the incoming lanes onto
    /// the delay wheel, preserving each envelope's producer lane so the
    /// wheel can release a tick's dues in worker-id order. Cheap when
    /// the lanes are empty (one relaxed load per lane), so the main
    /// loop calls it both before the watermark gate and again inside
    /// `run_tick` once the gate opens.
    fn sweep_lanes(&mut self) {
        let wheel = &mut self.wheel;
        let batches = self.inbox.sweep(|lane, env| {
            debug_assert!(env.due_tick > env.sent_tick, "latency is at least one tick");
            wheel.schedule(lane, env);
        });
        self.swept += batches;
    }

    /// The worker main loop: execute every granted-and-gated tick, park
    /// when the horizon is exhausted, stop on command — after finishing
    /// any ticks already granted, so the stop point is deterministic.
    fn run(mut self) -> Vec<(ProcessId, P, ProcessStatus)> {
        let mut stopping = false;
        'main: loop {
            while self.next_tick < self.sched.horizon.load(Ordering::SeqCst) {
                let tick = self.next_tick;
                if !self.drain_control() {
                    stopping = true;
                }
                // Sweep the lanes before the watermark gate: frees lane
                // capacity for peers running ahead and parks early
                // arrivals. Order-safe at any sweep frequency — the
                // wheel buckets per producer lane, so the delivery
                // sequence never depends on *when* a batch was swept.
                self.sweep_lanes();
                if !self.await_watermarks(tick) {
                    break 'main;
                }
                let report = self.run_tick(tick);
                self.next_tick = tick + 1;
                self.shards
                    .publish(self.id, &self.counters)
                    .expect("worker id is in range");
                self.publish_trace(tick);
                if self.reports.send(report).is_err() {
                    break 'main; // Coordinator is gone: shut down.
                }
            }
            if stopping || !self.park() {
                break 'main;
            }
        }
        self.account_shutdown_in_flight();
        self.shards
            .publish(self.id, &self.counters)
            .expect("worker id is in range");
        if let Some(trace) = self.trace.as_mut() {
            trace.publish(self.id);
        }
        let (id, stride) = (self.id, self.stride);
        let lifecycle = self.lifecycle;
        self.store
            .into_processes()
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                (
                    ProcessId::from_index(id + i * stride),
                    p,
                    lifecycle.status(i),
                )
            })
            .collect()
    }

    /// Tick-boundary trace publish: samples how far this worker's clock
    /// ran ahead of its slowest in-edge's published frontier (0 on a
    /// single-worker pool) into the `watermark_lag` histogram, then
    /// drains the recorder into the shared sink — the trace twin of the
    /// `ShardedCounters` publish it sits next to.
    fn publish_trace(&mut self, tick: u64) {
        let Some(trace) = self.trace.as_mut() else {
            return;
        };
        let workers = self.sched.parked.len();
        let lag = (0..workers)
            .filter(|&peer| peer != self.id)
            .map(|peer| self.sched.marks.published(peer, self.id))
            .min()
            .map_or(0, |slowest| (tick + 1).saturating_sub(slowest));
        trace.watermark_lag.record(lag);
        trace.publish(self.id);
    }

    /// Spins (yielding) until every peer has published the watermarks
    /// tick `tick` needs: all batches that could still be due at `tick`
    /// must be in this worker's inbox before it drains. Returns `false`
    /// when a stop command arrives mid-wait (e.g. the coordinator
    /// panicked and is unwinding while a peer is wedged).
    fn await_watermarks(&mut self, tick: u64) -> bool {
        let need = (tick + 1).saturating_sub(self.lag);
        if need == 0 {
            return true; // The first `lag` ticks gate on nothing.
        }
        let mut spins = 0u32;
        while !self.sched.marks.all_published(self.id, need) {
            match self.control.try_recv() {
                Ok(Control::Apply { pid, f }) => self.apply(pid, f),
                Ok(Control::Sync) => {}
                Ok(Control::Stop) | Err(TryRecvError::Disconnected) => return false,
                Err(TryRecvError::Empty) => {}
            }
            spins = spins.saturating_add(1);
            if spins < 32 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        true
    }

    /// Blocks on the control channel until the coordinator extends the
    /// horizon (or stops the pool). Returns `false` on stop.
    ///
    /// Before blocking, the worker yields the CPU a bounded number of
    /// times re-checking the horizon: in the steady pipelined state the
    /// coordinator is usually about to extend it (it grants on every
    /// absorbed report), and a grant that lands during the yield window
    /// costs two atomic loads instead of a `Sync` round trip through
    /// the control channel — the dominant per-tick overhead on
    /// oversubscribed hosts. A genuinely idle pool still parks after
    /// the budget, so waiting between driver calls burns no CPU.
    fn park(&mut self) -> bool {
        for _ in 0..32 {
            if self.next_tick < self.sched.horizon.load(Ordering::SeqCst) {
                return true;
            }
            std::thread::yield_now();
        }
        self.sched.parked[self.id].store(true, Ordering::SeqCst);
        // Re-check after raising the flag: a grant that raced us has
        // either seen the flag (a Sync is on its way) or happened before
        // the store, in which case this load sees the new horizon.
        if self.next_tick < self.sched.horizon.load(Ordering::SeqCst) {
            self.sched.parked[self.id].store(false, Ordering::SeqCst);
            return true;
        }
        loop {
            match self.control.recv() {
                Ok(Control::Sync) => return true,
                Ok(Control::Apply { pid, f }) => self.apply(pid, f),
                Ok(Control::Stop) | Err(_) => {
                    self.sched.parked[self.id].store(false, Ordering::SeqCst);
                    return false;
                }
            }
        }
    }

    /// Messages still travelling when the pool stops (parked in the
    /// wheel, or in the inbox with a future due tick) are accounted as
    /// `rt.dropped_shutdown` rather than silently vanishing — the live
    /// analogue of the simulator's in-flight queue being discarded.
    ///
    /// The drain is complete: Stop is only sent between driver calls,
    /// when every worker has executed and flushed every granted tick, so
    /// nothing can race onto the lanes after the sweep starts, and each
    /// in-flight envelope is counted exactly once (it is either on this
    /// worker's wheel or on one of its incoming lanes, never both).
    fn account_shutdown_in_flight(&mut self) {
        let mut in_flight = self.wheel.discard_all() as u64;
        in_flight += self.inbox.drain();
        if in_flight > 0 {
            self.counters.add(self.ids.dropped_shutdown, in_flight);
            if let Some(trace) = self.trace.as_mut() {
                // No per-envelope tick to stamp (the pool is stopping),
                // so the ledger is kept by count alone.
                trace
                    .recorder
                    .count_only(TraceVerdict::DroppedShutdown, in_flight);
            }
        }
    }

    /// Hands one due envelope to its owner's `on_message` hook — unless
    /// the owner is crashed (consumed as `rt.dropped_crashed`, the live
    /// analogue of the simulator's `sim.dropped_dead`) or the
    /// per-observer model draws the target as failed for this
    /// transmission (`rt.dropped_observed_failed`). Returns `true` when
    /// the message was delivered.
    fn deliver(
        &mut self,
        env: Envelope<P::Msg>,
        tick: u64,
        sent: &mut u64,
        queued: &mut u64,
    ) -> bool {
        let local = self.local_index(env.to);
        let size = env.msg.wire_size() as u64;
        // Delivery-point verdicts stamp the delivery tick — the moment
        // the envelope's fate resolved, as on the simulator.
        let verdict = |trace: &mut Option<WorkerTrace>, v: TraceVerdict| {
            if let Some(trace) = trace.as_mut() {
                trace.recorder.record(TraceEvent {
                    tick,
                    from: env.from,
                    to: env.to,
                    payload: size,
                    verdict: v,
                });
            }
        };
        if !self.lifecycle.is_alive(local) {
            self.counters.add(self.ids.dropped_crashed, 1);
            verdict(&mut self.trace, TraceVerdict::DroppedCrashed);
            return false;
        }
        if !self.lifecycle.observes_alive() {
            self.counters.add(self.ids.dropped_observed, 1);
            verdict(&mut self.trace, TraceVerdict::DroppedObserved);
            return false;
        }
        self.counters.add(self.ids.delivered, 1);
        verdict(&mut self.trace, TraceVerdict::Delivered);
        if let Some(trace) = self.trace.as_mut() {
            trace.delivery_latency.record(tick - env.sent_tick);
        }
        let (proc_state, rng) = self.store.pair_mut(local, env.to);
        let mut ctx = LiveCtx {
            me: env.to,
            tick,
            rng,
            counters: &mut self.counters,
            ids: &self.ids,
            router: &mut self.faulty,
            sent,
            queued,
            trace: &mut self.trace,
        };
        proc_state.on_message(env.from, env.msg, &mut ctx);
        true
    }

    /// One tick: apply the failure plan's transitions (running
    /// `on_recover` for processes that came back), release delay-wheel
    /// messages due now, drain the inbox (delivering due envelopes,
    /// parking delayed ones, dropping ones owed to crashed processes),
    /// run the round hooks for alive processes, flush this tick's
    /// coalesced outgoing batches, then publish the watermarks that let
    /// receivers advance past it.
    fn run_tick(&mut self, tick: u64) -> WorkerReport {
        let mut sent = 0u64;
        let mut queued = 0u64;
        let mut delivered = 0u64;
        let mut undeliverable = 0u64;

        // Liveness transitions apply at the start of the tick, exactly
        // where the simulator applies them in `step_round`; recovered
        // processes re-enter through their `on_recover` hook before any
        // delivery of the tick.
        let transitions = self.lifecycle.begin_tick(tick);
        if transitions.churn_crashes > 0 {
            self.counters
                .add(self.ids.churn_crashes, transitions.churn_crashes);
        }
        if transitions.churn_recoveries > 0 {
            self.counters
                .add(self.ids.churn_recoveries, transitions.churn_recoveries);
        }
        if let Some(trace) = self.trace.as_mut() {
            for &slot in &transitions.crashed {
                let pid = ProcessId::from_index(self.id + slot * self.stride);
                trace
                    .recorder
                    .record(TraceEvent::lifecycle(tick, pid, TraceVerdict::Crashed));
            }
            for &slot in &transitions.recovered {
                let pid = ProcessId::from_index(self.id + slot * self.stride);
                trace
                    .recorder
                    .record(TraceEvent::lifecycle(tick, pid, TraceVerdict::Recovered));
            }
        }
        for i in transitions.recovered {
            let me = self.pid_of(i);
            let (proc_state, rng) = self.store.pair_mut(i, me);
            let mut ctx = LiveCtx {
                me,
                tick,
                rng,
                counters: &mut self.counters,
                ids: &self.ids,
                router: &mut self.faulty,
                sent: &mut sent,
                queued: &mut queued,
                trace: &mut self.trace,
            };
            proc_state.on_recover(&mut ctx);
        }

        if !self.started {
            self.started = true;
            for i in 0..self.store.len() {
                if !self.lifecycle.is_alive(i) {
                    continue; // stillborn (or crashed at tick 0)
                }
                let me = self.pid_of(i);
                let (proc_state, rng) = self.store.pair_mut(i, me);
                let mut ctx = LiveCtx {
                    me,
                    tick,
                    rng,
                    counters: &mut self.counters,
                    ids: &self.ids,
                    router: &mut self.faulty,
                    sent: &mut sent,
                    queued: &mut queued,
                    trace: &mut self.trace,
                };
                proc_state.on_start(&mut ctx);
            }
        }

        // Deliver this tick's dues. One final lane sweep parks every
        // envelope the watermark gate guarantees has arrived, then the
        // wheel releases exactly this tick's dues in (due tick,
        // producer lane, arrival order) sequence — a pure function of
        // (tick, from, to, occurrence), independent of sweep timing and
        // of how batches interleaved on the lanes.
        self.sweep_lanes();
        if let Some(trace) = self.trace.as_mut() {
            trace.lane_depth.record(self.swept);
        }
        self.swept = 0;
        let mut due = std::mem::take(&mut self.due_buf);
        self.wheel.take_due_into(tick, &mut due);
        for env in due.drain(..) {
            debug_assert!(
                env.due_tick == tick,
                "due tick {} missed at local tick {tick}",
                env.due_tick
            );
            if self.deliver(env, tick, &mut sent, &mut queued) {
                delivered += 1;
            } else {
                undeliverable += 1;
            }
        }
        self.due_buf = due;

        // The wheel is stable from here to the flush (round-hook sends
        // travel via the router, never this worker's own wheel), so this
        // is the tick's settled occupancy.
        if let Some(trace) = self.trace.as_mut() {
            trace.wheel_occupancy.record(self.wheel.len() as u64);
        }

        // Round hooks for alive processes, in pid order within the stripe.
        for i in 0..self.store.len() {
            if !self.lifecycle.is_alive(i) {
                continue;
            }
            let me = self.pid_of(i);
            let (proc_state, rng) = self.store.pair_mut(i, me);
            let mut ctx = LiveCtx {
                me,
                tick,
                rng,
                counters: &mut self.counters,
                ids: &self.ids,
                router: &mut self.faulty,
                sent: &mut sent,
                queued: &mut queued,
                trace: &mut self.trace,
            };
            proc_state.on_round(tick, &mut ctx);
        }

        // Ship this tick's output — one coalesced batch per destination
        // worker — and only then raise the watermarks: a peer that
        // observes them is guaranteed to find the batches in its inbox.
        let flush = self.faulty.flush();
        if flush.dropped_closed > 0 {
            self.counters
                .add(self.ids.dropped_closed, flush.dropped_closed);
            if let Some(trace) = self.trace.as_mut() {
                // Closed-inbox drops surface as a flush total, not per
                // envelope — counted, not evented.
                trace
                    .recorder
                    .count_only(TraceVerdict::DroppedClosed, flush.dropped_closed);
            }
        }
        self.sched.marks.publish(self.id, tick + 1);

        WorkerReport {
            tick,
            sent,
            queued,
            delivered,
            dropped_closed: flush.dropped_closed,
            undeliverable,
            pending: self.wheel.len() as u64,
            due_horizon: self.wheel.due_horizon().unwrap_or(0),
        }
    }
}

/// The live runtime: a pool of worker threads executing
/// [`ExecProtocol`] processes as actors under a bounded-lag tick
/// scheduler (per-edge publish watermarks instead of a global barrier),
/// with the shared `da_core` channel fault model applied by the
/// transport.
///
/// The API mirrors `da_simnet::Engine` where the concepts coincide
/// (`step_tick`/`run_ticks`/`run_until_quiescent`, `counters`), and
/// replaces direct process access with [`Runtime::with_process_mut`]
/// (processes live on worker threads) plus [`Runtime::shutdown`] (the
/// graceful path that joins the pool and returns them).
///
/// ```
/// use da_runtime::{Runtime, RuntimeConfig};
/// use damulticast::{ParamMap, StaticNetwork};
///
/// let net = StaticNetwork::linear(&[3, 9], ParamMap::default(), 1).unwrap();
/// let leaf = net.groups()[1].members[0];
/// let config = RuntimeConfig::default().with_workers(2).with_seed(1);
/// let mut rt = Runtime::spawn(config, net.into_processes());
///
/// let id = rt.with_process_mut(leaf, |p| p.publish("tick"));
/// rt.run_until_quiescent(48);
///
/// let out = rt.shutdown();
/// assert!(out.processes.iter().filter(|p| p.has_delivered(id)).count() > 1);
/// ```
pub struct Runtime<P: ExecProtocol> {
    controls: Vec<Sender<Control<P>>>,
    reports: Receiver<WorkerReport>,
    handles: Vec<JoinHandle<Vec<(ProcessId, P, ProcessStatus)>>>,
    counters: Arc<ShardedCounters>,
    /// Shared flight-recorder sink — `None` when tracing is off.
    trace: Option<Arc<TraceSink>>,
    sched: Arc<SchedulerState>,
    population: usize,
    /// The next tick to hand the caller (every tick below it is
    /// finalized: all workers reported it).
    tick: u64,
    /// Coordinator-side mirror of the shared horizon.
    granted: u64,
    /// Reports for granted-but-not-yet-finalized ticks.
    backlog: BTreeMap<u64, PartialTick>,
    /// Envelopes queued on the transport and not yet delivered (or
    /// dropped on a closed inbox) as of the finalized frontier — the
    /// exact in-flight ledger behind quiescence detection.
    in_flight: u64,
    tick_timeout: Duration,
}

/// What a graceful [`Runtime::shutdown`] leaves behind.
#[derive(Debug)]
pub struct Shutdown<P> {
    /// Every protocol instance, in pid order — the live counterpart of
    /// `Engine::into_processes`.
    pub processes: Vec<P>,
    /// Final liveness of every process under the failure plan, in pid
    /// order — the live counterpart of `Engine::status`.
    pub statuses: Vec<ProcessStatus>,
    /// Final merged metrics snapshot. Messages still in flight when the
    /// pool stopped (possible under latency models above one tick) are
    /// counted under `rt.dropped_shutdown`.
    pub counters: Counters,
    /// Merged flight-recorder log (events across all workers, verdict
    /// counts, `delivery_latency_ticks` / `wheel_occupancy` /
    /// `watermark_lag` histograms) — `None` when tracing was off.
    /// Canonicalize the events before comparing against another
    /// substrate's stream.
    pub trace: Option<TraceLog>,
}

impl<P> Runtime<P>
where
    P: ExecProtocol + Send + 'static,
    P::Msg: WireSize + Send + 'static,
{
    /// Spawns the worker pool over `processes` (process `i` gets
    /// `ProcessId(i)`, as under the simulator) and distributes them
    /// round-robin across workers.
    ///
    /// # Panics
    ///
    /// Panics when the OS refuses to spawn a worker thread, or when the
    /// population exceeds the `u32` process-id space (use
    /// [`Runtime::try_spawn`] to get the latter as a typed error).
    #[must_use]
    pub fn spawn(config: RuntimeConfig, processes: Vec<P>) -> Self {
        Self::try_spawn(config, processes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`Runtime::spawn`]: validates the population
    /// against the `u32` process-id space once, here at the spawn
    /// boundary, so an oversized configuration comes back as a typed
    /// [`ProcessIndexError`] instead of a panic deep in striping.
    ///
    /// # Panics
    ///
    /// Panics when the OS refuses to spawn a worker thread.
    pub fn try_spawn(config: RuntimeConfig, processes: Vec<P>) -> Result<Self, ProcessIndexError> {
        let population = processes.len();
        if population > 0 {
            // Every pid the pool will ever mint is below the population,
            // so this single check covers all of striping.
            ProcessId::try_from_index(population - 1)?;
        }
        let workers = config.effective_workers(population);

        // Lane capacity: the watermark gate bounds any (producer,
        // consumer) lane at `lag + 1` unswept batches (a producer at
        // tick `p` requires the consumer to have published `p + 1 -
        // lag`, so `p - c <= lag`; one batch per producer tick on a
        // lane), so `lag + 2` never blocks in steady state.
        // `mailbox_capacity` acts as a floor override for callers who
        // want deeper lanes (it can only raise the bound — shrinking
        // below `lag + 2` would deadlock the gate).
        let lane_capacity = usize::try_from(config.effective_lag())
            .unwrap_or(usize::MAX)
            .saturating_add(2)
            .max(config.mailbox_capacity.unwrap_or(0));
        let (hubs, inbox_rxs) = lane_matrix::<P::Msg>(workers, lane_capacity);
        let counters = Arc::new(ShardedCounters::new(workers));
        let trace_sink = config
            .trace
            .is_enabled()
            .then(|| Arc::new(TraceSink::new(workers, &config.trace)));
        let sched = Arc::new(SchedulerState {
            horizon: AtomicU64::new(0),
            marks: EdgeWatermarks::new(workers),
            parked: (0..workers).map(|_| AtomicBool::new(false)).collect(),
        });
        let (report_tx, report_rx) = channel::unbounded();

        // One materialisation of the failure plan, shared by every
        // worker's LifecycleController: same seed, same fates — and the
        // same fates the simulator would draw.
        let plan = Arc::new(config.faults.failure.materialize(population, config.seed));

        // Stripe processes across per-worker stores: a dense slab per
        // stripe, RNG streams derived lazily on first draw (the seed is
        // pure in `(master, pid)`, so nothing is precomputed here).
        let stripe_capacity = population.div_ceil(workers.max(1));
        let mut stores: Vec<ProcessStore<P>> = (0..workers)
            .map(|_| ProcessStore::with_capacity(config.seed, stripe_capacity))
            .collect();
        for (i, p) in processes.into_iter().enumerate() {
            stores[i % workers].push(p);
        }

        // Size each delay wheel's ring to the worst due-tick distance an
        // envelope can arrive with: a peer running `lag` ahead sends at
        // most `lag` ticks into the future, plus the network's latency
        // ceiling (+1 because the window includes the current tick).
        let wheel_capacity =
            usize::try_from(config.faults.network.max_latency() + config.effective_lag() + 1)
                .unwrap_or(usize::MAX);

        let mut controls = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for (id, ((store, inbox), hub)) in stores.into_iter().zip(inbox_rxs).zip(hubs).enumerate() {
            let (control_tx, control_rx) = channel::unbounded();
            let mut local = Counters::new();
            let ids = HotIds::register(&mut local);
            let lifecycle = LifecycleController::new(Arc::clone(&plan), id, workers, store.len());
            let worker = Worker {
                id,
                stride: workers,
                store,
                control: control_rx,
                inbox,
                faulty: FaultyRouter::new(hub, config.faults.network.clone(), config.seed),
                reports: report_tx.clone(),
                shards: Arc::clone(&counters),
                counters: local,
                ids,
                lifecycle,
                wheel: DelayWheel::with_capacity(wheel_capacity, workers),
                due_buf: Vec::new(),
                swept: 0,
                trace: trace_sink
                    .as_ref()
                    .and_then(|sink| WorkerTrace::new(&config.trace, Arc::clone(sink))),
                sched: Arc::clone(&sched),
                lag: config.effective_lag(),
                next_tick: 0,
                started: false,
            };
            let handle = std::thread::Builder::new()
                .name(format!("da-runtime-{id}"))
                .spawn(move || worker.run())
                .expect("failed to spawn a runtime worker");
            controls.push(control_tx);
            handles.push(handle);
        }

        Ok(Runtime {
            controls,
            reports: report_rx,
            handles,
            counters,
            trace: trace_sink,
            sched,
            population,
            tick: 0,
            granted: 0,
            backlog: BTreeMap::new(),
            in_flight: 0,
            tick_timeout: config.tick_timeout(),
        })
    }

    /// Number of processes hosted by the pool.
    #[must_use]
    pub fn population(&self) -> usize {
        self.population
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.controls.len()
    }

    /// The next tick to execute.
    #[must_use]
    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Extends the grant horizon and wakes any worker that parked
    /// waiting for it. Monotonic and idempotent.
    fn grant(&mut self, horizon: u64) {
        if horizon <= self.granted {
            return;
        }
        self.granted = horizon;
        self.sched.horizon.store(horizon, Ordering::SeqCst);
        for (w, flag) in self.sched.parked.iter().enumerate() {
            if flag.swap(false, Ordering::SeqCst) {
                let _ = self.controls[w].send(Control::Sync);
            }
        }
    }

    /// Blocks until every worker has reported `tick`, folding reports
    /// into the backlog as they arrive, then finalizes the tick: folds
    /// it out of the backlog, settles the in-flight ledger, and returns
    /// the aggregate. `lookahead_cap`, when set, lets the collector
    /// turn every absorbed report into a grant (capped): a loud tick
    /// `u` proves horizon `u + 2` safe, and a wheel holding an envelope
    /// due at `d` proves horizon `d + 1` safe — which is how
    /// `run_until_quiescent` keeps workers up to a full latency window
    /// ahead of report collection without ever overshooting the
    /// quiescent tick.
    ///
    /// The wait polls in short slices so a worker that *died* (panicked
    /// out of its thread) is diagnosed promptly instead of after the
    /// full tick timeout — with no per-tick coordinator→worker send
    /// left to fail fast, the join handles are the only death signal.
    ///
    /// # Panics
    ///
    /// Panics when a worker has died, or fails to report within the
    /// tick timeout.
    fn collect_tick(&mut self, tick: u64, lookahead_cap: Option<u64>) -> TickReport {
        let workers = self.controls.len();
        let deadline = std::time::Instant::now() + self.tick_timeout;
        const DEATH_POLL: Duration = Duration::from_millis(100);
        loop {
            if let Some(cap) = lookahead_cap {
                if self.backlog.get(&tick).is_some_and(|t| t.loud) {
                    self.grant((tick + 2).min(cap));
                }
            }
            if self.backlog.get(&tick).map(|t| t.reports) == Some(workers) {
                break;
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.reports.recv_timeout(remaining.min(DEATH_POLL)) {
                Ok(report) => {
                    if let Some(cap) = lookahead_cap {
                        // Each report is its own non-quiescence proof,
                        // whatever tick it is for: a loud tick `u` puts
                        // the quiescent tick at `u + 1` or later
                        // (horizon `u + 2` is safe), and a parked
                        // envelope due at `d` keeps every tick before
                        // `d` loud via `pending > 0` (horizon `d + 1`
                        // is safe). Granting here — not just when the
                        // collected tick finalizes — lets workers run
                        // multi-tick-latency windows without parking
                        // once per tick.
                        let mut proof = if report.is_loud() { report.tick + 2 } else { 0 };
                        if report.due_horizon > 0 {
                            proof = proof.max(report.due_horizon + 1);
                        }
                        if proof > 0 {
                            self.grant(proof.min(cap));
                        }
                    }
                    self.backlog.entry(report.tick).or_default().absorb(report);
                }
                Err(e) => {
                    if let Some(w) = self.handles.iter().position(JoinHandle::is_finished) {
                        // The thread is gone but its tick never arrived:
                        // it panicked (a clean stop always reports first).
                        panic!("runtime worker {w} died before acking tick {tick}");
                    }
                    assert!(
                        remaining > DEATH_POLL,
                        "worker failed to ack tick {tick}: {e}"
                    );
                }
            }
        }
        let agg = self.backlog.remove(&tick).expect("tick was just finalized");
        self.in_flight = (self.in_flight + agg.queued)
            .checked_sub(agg.delivered + agg.dropped_closed + agg.undeliverable)
            .expect("delivery ledger went negative");
        TickReport {
            tick,
            sent: agg.sent,
            delivered: agg.delivered,
            pending: agg.pending,
        }
    }

    /// Executes one tick across the pool and aggregates the workers'
    /// reports.
    ///
    /// # Panics
    ///
    /// Panics when a worker has died or fails to report within the
    /// configured tick timeout.
    pub fn step_tick(&mut self) -> TickReport {
        let tick = self.tick;
        self.grant(tick + 1);
        let report = self.collect_tick(tick, None);
        self.tick += 1;
        report
    }

    /// Runs exactly `ticks` ticks and returns their reports. The whole
    /// budget is granted upfront, so workers free-run through it gated
    /// only by the watermark lag while this call collects the reports.
    pub fn run_ticks(&mut self, ticks: u64) -> Vec<TickReport> {
        let first = self.tick;
        self.grant(first + ticks);
        (0..ticks)
            .map(|i| {
                let report = self.collect_tick(first + i, None);
                self.tick += 1;
                report
            })
            .collect()
    }

    /// Runs until a tick is globally quiet (nothing sent, delivered, or
    /// still in flight) or `max_ticks` have executed. Returns the number
    /// of ticks executed.
    ///
    /// Ticks are granted as their predecessor is *proven* non-quiet (a
    /// loud worker report, or queued envelopes still undelivered on the
    /// coordinator's ledger), so the pool pipelines through active
    /// dissemination but never executes a tick past the quiescent one —
    /// exactly the barrier scheduler's observable behaviour.
    pub fn run_until_quiescent(&mut self, max_ticks: u64) -> u64 {
        let first = self.tick;
        let cap = first + max_ticks;
        for executed in 0..max_ticks {
            let tick = first + executed;
            self.grant(tick + 1);
            if self.in_flight > 0 {
                // Something is still travelling, so `tick` cannot be the
                // quiescent one: let the pool run one tick ahead.
                self.grant((tick + 2).min(cap));
            }
            let report = self.collect_tick(tick, Some(cap));
            self.tick += 1;
            if report.is_quiet() && self.in_flight == 0 {
                return executed + 1;
            }
        }
        max_ticks
    }

    /// Runs a closure against the process `pid` on its worker thread and
    /// returns the result — the live substitute for
    /// `Engine::process_mut` (e.g. to inject a publication between
    /// ticks).
    ///
    /// # Panics
    ///
    /// Panics when `pid` is out of range or its worker has died.
    pub fn with_process_mut<R, F>(&mut self, pid: ProcessId, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut P) -> R + Send + 'static,
    {
        assert!(
            pid.index() < self.population,
            "{pid} out of range for population {}",
            self.population
        );
        let worker = pid.index() % self.controls.len();
        let (tx, rx) = channel::bounded(1);
        let wrapped: Box<dyn FnOnce(&mut P) + Send> = Box::new(move |p| {
            let _ = tx.send(f(p));
        });
        self.controls[worker]
            .send(Control::Apply { pid, f: wrapped })
            .unwrap_or_else(|_| panic!("runtime worker for {pid} terminated"));
        rx.recv().expect("runtime worker dropped an apply")
    }

    /// Fire-and-forget variant of [`Runtime::with_process_mut`]: applies
    /// the closure to `pid` on its worker thread without a reply channel
    /// or a blocking round-trip — one boxed closure is the only
    /// allocation on the injection path. Workers drain their control
    /// queue at the top of every tick, so an injection sent between
    /// driver calls is applied before the next tick that worker
    /// executes; use [`Runtime::with_process_mut`] when the caller needs
    /// a result (or a completion barrier) back.
    ///
    /// # Panics
    ///
    /// Panics when `pid` is out of range or its worker has died.
    pub fn inject<F>(&mut self, pid: ProcessId, f: F)
    where
        F: FnOnce(&mut P) + Send + 'static,
    {
        assert!(
            pid.index() < self.population,
            "{pid} out of range for population {}",
            self.population
        );
        let worker = pid.index() % self.controls.len();
        self.controls[worker]
            .send(Control::Apply {
                pid,
                f: Box::new(f),
            })
            .unwrap_or_else(|_| panic!("runtime worker for {pid} terminated"));
    }

    /// Merged metrics snapshot across all worker shards, each as of that
    /// worker's most recently completed tick (exact whenever the pool is
    /// idle between driver calls).
    #[must_use]
    pub fn counters(&self) -> Counters {
        self.counters.merged()
    }

    /// Merged flight-recorder snapshot across all worker shards, each as
    /// of that worker's most recent tick-boundary publish (exact
    /// whenever the pool is idle between driver calls) — `None` when
    /// tracing is off. The live twin of `Engine::trace_log`.
    #[must_use]
    pub fn trace_log(&self) -> Option<TraceLog> {
        self.trace.as_ref().map(|sink| sink.merged())
    }

    /// Graceful shutdown: stops every worker, joins the pool, and
    /// returns the protocol instances (pid order) with the final metrics.
    /// In-flight messages (delay wheels, undrained inboxes) are counted
    /// as `rt.dropped_shutdown` — never silently lost, never waited for.
    ///
    /// # Panics
    ///
    /// Panics when a worker thread panicked.
    #[must_use]
    pub fn shutdown(mut self) -> Shutdown<P> {
        for control in &self.controls {
            let _ = control.send(Control::Stop);
        }
        let mut tagged: Vec<(ProcessId, P, ProcessStatus)> = self
            .handles
            .drain(..)
            .flat_map(|h| h.join().expect("runtime worker panicked"))
            .collect();
        tagged.sort_by_key(|(pid, _, _)| *pid);
        let mut processes = Vec::with_capacity(tagged.len());
        let mut statuses = Vec::with_capacity(tagged.len());
        for (_, p, status) in tagged {
            processes.push(p);
            statuses.push(status);
        }
        Shutdown {
            processes,
            statuses,
            counters: self.counters.merged(),
            trace: self.trace.as_ref().map(|sink| sink.merged()),
        }
    }
}

/// Dropping the runtime without [`Runtime::shutdown`] still stops and
/// joins every worker (discarding the processes), so tests and callers
/// can never leak a pool.
impl<P: ExecProtocol> Drop for Runtime<P> {
    fn drop(&mut self) {
        for control in &self.controls {
            let _ = control.send(Control::Stop);
        }
        if std::thread::panicking() {
            // Reached while unwinding — typically from the tick watchdog
            // reporting a wedged worker. That worker can never ack Stop,
            // so joining here would turn the diagnostic panic back into
            // the very hang it exists to prevent. Leave the pool to die
            // with the process.
            return;
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_core::channel::{ChannelConfig, Latency};

    /// Every process sends one token to the next pid each tick and
    /// records the tick of each receipt.
    struct Relay {
        population: u32,
        received: Vec<u64>,
    }

    #[derive(Clone, Debug)]
    struct Token {
        sent_at: u64,
    }
    impl WireSize for Token {
        fn wire_size(&self) -> usize {
            8
        }
    }

    impl ExecProtocol for Relay {
        type Msg = Token;

        fn on_message<X: Exec<Msg = Token>>(&mut self, _from: ProcessId, msg: Token, ctx: &mut X) {
            assert!(
                msg.sent_at < ctx.round(),
                "deliveries are strictly later than their send tick"
            );
            self.received.push(ctx.round());
        }

        fn on_round<X: Exec<Msg = Token>>(&mut self, round: u64, ctx: &mut X) {
            if round < 5 {
                let next = ProcessId((ctx.me().0 + 1) % self.population);
                ctx.send(next, Token { sent_at: round });
            }
        }
    }

    fn relay_procs(n: u32) -> Vec<Relay> {
        (0..n)
            .map(|_| Relay {
                population: n,
                received: Vec::new(),
            })
            .collect()
    }

    fn relay_runtime(n: u32, workers: usize) -> Runtime<Relay> {
        Runtime::spawn(
            RuntimeConfig::default().with_workers(workers).with_seed(1),
            relay_procs(n),
        )
    }

    #[test]
    fn messages_delivered_exactly_next_tick() {
        let mut rt = relay_runtime(8, 3);
        let r0 = rt.step_tick();
        assert_eq!(r0.sent, 8);
        assert_eq!(r0.delivered, 0, "nothing in flight during tick 0");
        let r1 = rt.step_tick();
        assert_eq!(r1.delivered, 8);
        let out = rt.shutdown();
        // The on_message assertion above checked per-delivery latency.
        assert_eq!(out.counters.get("rt.delivered"), 8);
    }

    #[test]
    fn quiescence_detected_and_counts_balance() {
        let mut rt = relay_runtime(10, 4);
        let executed = rt.run_until_quiescent(64);
        assert!(executed < 64, "relay goes quiet after tick 5");
        let out = rt.shutdown();
        // 10 processes × ticks 0..5 = 50 sends, all delivered.
        assert_eq!(out.counters.get("rt.sent"), 50);
        assert_eq!(out.counters.get("rt.delivered"), 50);
        assert_eq!(out.counters.get("rt.bytes_sent"), 400);
        assert_eq!(out.counters.get("rt.dropped_channel"), 0);
        assert_eq!(out.counters.get("rt.dropped_shutdown"), 0);
        let total: usize = out.processes.iter().map(|p| p.received.len()).sum();
        assert_eq!(total, 50);
    }

    /// The quiescent tick is never overshot: no worker executes a round
    /// hook past the tick `run_until_quiescent` reports, however far the
    /// pipelined grants ran. A protocol that would send again *after*
    /// the quiet tick must not get the chance on either substrate.
    #[test]
    fn quiescence_never_overshoots() {
        struct Sleeper {
            rounds_seen: u64,
        }
        #[derive(Clone, Debug)]
        struct M;
        impl WireSize for M {
            fn wire_size(&self) -> usize {
                1
            }
        }
        impl ExecProtocol for Sleeper {
            type Msg = M;
            fn on_message<X: Exec<Msg = M>>(&mut self, _f: ProcessId, _m: M, _c: &mut X) {}
            fn on_round<X: Exec<Msg = M>>(&mut self, round: u64, ctx: &mut X) {
                self.rounds_seen = round + 1;
                // Would wake the pool again — but quiescence at tick 0
                // must stop the run long before.
                if round == 30 {
                    ctx.send(ctx.me(), M);
                }
            }
        }
        let procs = (0..6).map(|_| Sleeper { rounds_seen: 0 }).collect();
        let mut rt = Runtime::spawn(RuntimeConfig::default().with_workers(3).with_seed(1), procs);
        let executed = rt.run_until_quiescent(64);
        assert_eq!(executed, 1, "tick 0 is already quiet");
        let out = rt.shutdown();
        for p in &out.processes {
            assert_eq!(p.rounds_seen, 1, "no hook ran past the quiet tick");
        }
        assert_eq!(out.counters.get("rt.sent"), 0);
    }

    #[test]
    fn shutdown_returns_processes_in_pid_order() {
        struct Tag(usize);
        #[derive(Clone, Debug)]
        struct Never;
        impl WireSize for Never {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl ExecProtocol for Tag {
            type Msg = Never;
            fn on_message<X: Exec<Msg = Never>>(&mut self, _f: ProcessId, _m: Never, _c: &mut X) {}
        }
        let procs = (0..23).map(Tag).collect();
        let mut rt = Runtime::spawn(RuntimeConfig::default().with_workers(5), procs);
        rt.run_ticks(2);
        let out = rt.shutdown();
        let tags: Vec<usize> = out.processes.iter().map(|t| t.0).collect();
        assert_eq!(tags, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn with_process_mut_round_trips_a_result() {
        let mut rt = relay_runtime(6, 2);
        rt.run_ticks(3);
        let seen = rt.with_process_mut(ProcessId(4), |p| p.received.len());
        assert!(seen > 0);
        assert_eq!(rt.population(), 6);
        assert_eq!(rt.workers(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_process_mut_rejects_unknown_pid() {
        let mut rt = relay_runtime(3, 2);
        rt.with_process_mut(ProcessId(99), |_| ());
    }

    #[test]
    fn inject_lands_before_the_next_executed_tick() {
        let mut rt = relay_runtime(6, 3);
        rt.run_ticks(1);
        // Fire-and-forget: no reply, no barrier — the control drain at
        // the top of the worker's next tick must still apply it first.
        rt.inject(ProcessId(4), |p| p.received.push(0xBEEF));
        rt.run_ticks(1);
        let seen = rt.with_process_mut(ProcessId(4), |p| p.received.clone());
        assert!(
            seen.contains(&0xBEEF),
            "injected mutation visible after one more tick: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inject_rejects_unknown_pid() {
        let mut rt = relay_runtime(3, 2);
        rt.inject(ProcessId(99), |_| ());
    }

    #[test]
    fn drop_without_shutdown_joins_cleanly() {
        let mut rt = relay_runtime(12, 4);
        rt.run_ticks(2);
        drop(rt); // must not hang or panic
    }

    #[test]
    fn single_worker_pool_works() {
        let mut rt = relay_runtime(5, 1);
        rt.run_until_quiescent(32);
        let out = rt.shutdown();
        assert_eq!(out.counters.get("rt.sent"), 25);
    }

    /// Satellite requirement: the zero-latency (perfect) channel config
    /// is byte-for-byte the fault-free data-plane behaviour — same
    /// per-process receipt ticks, same counters — because the explicit
    /// reliable config and the default are the same draw-free path.
    #[test]
    fn explicit_reliable_channel_equals_default_event_set() {
        let run = |config: RuntimeConfig| {
            let mut rt = Runtime::spawn(config.with_workers(3).with_seed(1), relay_procs(9));
            rt.run_until_quiescent(32);
            let out = rt.shutdown();
            let receipts: Vec<Vec<u64>> = out
                .processes
                .into_iter()
                .map(|p| {
                    let mut r = p.received;
                    r.sort_unstable();
                    r
                })
                .collect();
            (
                receipts,
                out.counters.get("rt.sent"),
                out.counters.get("rt.delivered"),
            )
        };
        let default = run(RuntimeConfig::default());
        let explicit = run(RuntimeConfig::default()
            .with_channel(ChannelConfig::reliable().with_latency(Latency::Fixed(1))));
        assert_eq!(default, explicit);
    }

    #[test]
    fn fixed_latency_delivers_exactly_k_ticks_later() {
        /// Process 0 sends one message to process 1 in tick 0; the
        /// receipt tick must honour the configured latency.
        struct OneShot {
            receipt: Option<u64>,
        }
        #[derive(Clone, Debug)]
        struct M;
        impl WireSize for M {
            fn wire_size(&self) -> usize {
                1
            }
        }
        impl ExecProtocol for OneShot {
            type Msg = M;
            fn on_message<X: Exec<Msg = M>>(&mut self, _f: ProcessId, _m: M, ctx: &mut X) {
                self.receipt = Some(ctx.round());
            }
            fn on_round<X: Exec<Msg = M>>(&mut self, round: u64, ctx: &mut X) {
                if round == 0 && ctx.me() == ProcessId(0) {
                    ctx.send(ProcessId(1), M);
                }
            }
        }
        let config = RuntimeConfig::default()
            .with_workers(2)
            .with_channel(ChannelConfig::reliable().with_latency(Latency::Fixed(3)));
        let procs = (0..2).map(|_| OneShot { receipt: None }).collect();
        let mut rt = Runtime::spawn(config, procs);
        let reports = rt.run_ticks(5);
        // Ticks 1 and 2 hold the message pending; tick 3 delivers it.
        assert_eq!(reports[1].pending, 1);
        assert_eq!(reports[2].pending, 1);
        assert_eq!(reports[3].delivered, 1);
        let out = rt.shutdown();
        assert_eq!(out.processes[1].receipt, Some(3));
        assert_eq!(out.counters.get("rt.dropped_shutdown"), 0);
    }

    #[test]
    fn pending_messages_defer_quiescence() {
        let config = RuntimeConfig::default()
            .with_workers(2)
            .with_channel(ChannelConfig::reliable().with_latency(Latency::Fixed(4)));
        let mut rt = Runtime::spawn(config, relay_procs(6));
        let executed = rt.run_until_quiescent(64);
        assert!(executed < 64);
        let out = rt.shutdown();
        // Latency stretches the schedule but loses nothing.
        assert_eq!(out.counters.get("rt.sent"), 30);
        assert_eq!(out.counters.get("rt.delivered"), 30);
    }

    /// Satellite requirement: messages still in flight at `shutdown` are
    /// accounted, not hung on. With latency 5, everything sent in the
    /// two executed ticks is still parked when the pool stops.
    #[test]
    fn shutdown_accounts_in_flight_messages() {
        let config = RuntimeConfig::default()
            .with_workers(3)
            .with_channel(ChannelConfig::reliable().with_latency(Latency::Fixed(5)));
        let mut rt = Runtime::spawn(config, relay_procs(8));
        rt.run_ticks(2);
        let out = rt.shutdown(); // must not hang waiting for due ticks
        let sent = out.counters.get("rt.sent");
        assert_eq!(sent, 16, "8 senders × 2 ticks");
        assert_eq!(out.counters.get("rt.delivered"), 0);
        assert_eq!(out.counters.get("rt.dropped_shutdown"), sent);
    }

    /// Satellite requirement (dropped_shutdown audit): with workers
    /// drifting under a nonzero lag window, a mid-flight shutdown must
    /// still account every queued envelope exactly once — whether it is
    /// parked on a receiver's wheel, sitting in an inbox behind a
    /// watermark, or already delivered.
    #[test]
    fn shutdown_accounting_is_exact_at_nonzero_lag() {
        for (run_ticks, max_lag) in [(1, 4), (2, 4), (4, 2), (7, 3)] {
            let config = RuntimeConfig::default()
                .with_workers(3)
                .with_seed(run_ticks * 31 + max_lag)
                .with_max_lag(max_lag)
                .with_channel(ChannelConfig::reliable().with_latency(Latency::Fixed(3)));
            assert!(config.effective_lag() > 1, "the lag window must be real");
            let mut rt = Runtime::spawn(config, relay_procs(9));
            rt.run_ticks(run_ticks);
            let out = rt.shutdown();
            let sent = out.counters.get("rt.sent");
            let delivered = out.counters.get("rt.delivered");
            let dropped = out.counters.get("rt.dropped_shutdown");
            assert_eq!(sent, 9 * run_ticks.min(5), "run={run_ticks}");
            assert_eq!(
                delivered + dropped,
                sent,
                "run={run_ticks} lag={max_lag}: every envelope exactly once"
            );
            let received: u64 = out.processes.iter().map(|p| p.received.len() as u64).sum();
            assert_eq!(received, delivered, "processes agree with the counters");
        }
    }

    #[test]
    fn lossy_channel_drops_and_still_quiesces() {
        let config = RuntimeConfig::default()
            .with_workers(2)
            .with_seed(9)
            .with_channel(ChannelConfig::reliable().with_success_probability(0.5));
        let mut rt = Runtime::spawn(config, relay_procs(10));
        let executed = rt.run_until_quiescent(64);
        assert!(executed < 64);
        let out = rt.shutdown();
        let sent = out.counters.get("rt.sent");
        let delivered = out.counters.get("rt.delivered");
        let dropped = out.counters.get("rt.dropped_channel");
        assert_eq!(sent, 50);
        assert_eq!(delivered + dropped, sent, "every send is accounted");
        assert!(
            (10..40).contains(&dropped),
            "dropped {dropped} of {sent}, expected ≈ half"
        );
    }

    /// A latency floor above one tick opens a real drift window: the
    /// delivered outcome must not depend on how wide it is.
    #[test]
    fn outcome_is_stable_across_lag_windows() {
        let run = |max_lag: u64| {
            let config = RuntimeConfig::default()
                .with_workers(4)
                .with_seed(5)
                .with_max_lag(max_lag)
                .with_channel(
                    ChannelConfig::reliable()
                        .with_success_probability(0.8)
                        .with_latency(Latency::UniformRounds { min: 2, max: 4 }),
                );
            let mut rt = Runtime::spawn(config, relay_procs(12));
            rt.run_until_quiescent(64);
            let out = rt.shutdown();
            let mut receipts: Vec<Vec<u64>> = out
                .processes
                .into_iter()
                .map(|p| {
                    let mut r = p.received;
                    r.sort_unstable();
                    r
                })
                .collect();
            receipts.sort();
            (
                receipts,
                out.counters.get("rt.delivered"),
                out.counters.get("rt.dropped_channel"),
            )
        };
        // Fates are per-edge and receipt ticks are due-tick-exact, so
        // the entire observable outcome is lag-invariant.
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(4));
    }

    #[test]
    #[should_panic(expected = "failed to ack tick")]
    fn watchdog_panics_instead_of_hanging() {
        struct Wedge;
        #[derive(Clone, Debug)]
        struct Never;
        impl WireSize for Never {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl ExecProtocol for Wedge {
            type Msg = Never;
            fn on_message<X: Exec<Msg = Never>>(&mut self, _f: ProcessId, _m: Never, _c: &mut X) {}
            fn on_round<X: Exec<Msg = Never>>(&mut self, round: u64, _ctx: &mut X) {
                if round == 0 {
                    // Simulate a wedged protocol callback, far beyond the
                    // watchdog (the sleep also bounds how long the leaked
                    // worker outlives the panic).
                    std::thread::sleep(Duration::from_secs(5));
                }
            }
        }
        let mut rt = Runtime::spawn(
            RuntimeConfig::default()
                .with_workers(1)
                .with_tick_timeout_ms(50),
            vec![Wedge],
        );
        // Must panic promptly — and the unwinding Drop must NOT block on
        // joining the wedged worker (that would hang this test).
        rt.step_tick();
    }

    /// A worker that panics out of a protocol hook must be diagnosed
    /// promptly (the join handle is the only death signal left — no
    /// per-tick coordinator→worker send exists to fail fast), not after
    /// sitting out the full tick watchdog.
    #[test]
    #[should_panic(expected = "died before acking tick")]
    fn dead_worker_is_diagnosed_promptly() {
        struct Bomb;
        #[derive(Clone, Debug)]
        struct Never;
        impl WireSize for Never {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl ExecProtocol for Bomb {
            type Msg = Never;
            fn on_message<X: Exec<Msg = Never>>(&mut self, _f: ProcessId, _m: Never, _c: &mut X) {}
            fn on_round<X: Exec<Msg = Never>>(&mut self, round: u64, ctx: &mut X) {
                if round == 1 && ctx.me() == ProcessId(0) {
                    panic!("protocol bug");
                }
            }
        }
        // The watchdog is far out (5 s): only the prompt death check can
        // produce the expected panic; a regression to timeout-only
        // detection fails this test on the message after 5 s.
        let mut rt = Runtime::spawn(
            RuntimeConfig::default()
                .with_workers(2)
                .with_tick_timeout_ms(5_000),
            vec![Bomb, Bomb],
        );
        rt.run_ticks(2);
    }

    #[test]
    fn per_process_rng_streams_follow_the_seed() {
        use rand::Rng as _;
        struct Draw {
            value: u64,
        }
        #[derive(Clone, Debug)]
        struct Never;
        impl WireSize for Never {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl ExecProtocol for Draw {
            type Msg = Never;
            fn on_message<X: Exec<Msg = Never>>(&mut self, _f: ProcessId, _m: Never, _c: &mut X) {}
            fn on_round<X: Exec<Msg = Never>>(&mut self, round: u64, ctx: &mut X) {
                if round == 0 {
                    self.value = ctx.rng().gen();
                }
            }
        }
        let run = |workers: usize| {
            let procs = (0..9).map(|_| Draw { value: 0 }).collect();
            let mut rt = Runtime::spawn(
                RuntimeConfig::default().with_workers(workers).with_seed(42),
                procs,
            );
            rt.run_ticks(1);
            let out = rt.shutdown();
            out.processes.iter().map(|d| d.value).collect::<Vec<u64>>()
        };
        // The stream belongs to the process, not the worker: regrouping
        // the pool must not change the first draw of any process.
        assert_eq!(run(2), run(4));
    }

    /// A protocol probe recording exactly which rounds it executed and
    /// how often it was recovered — the full observable lifecycle
    /// schedule of a process.
    #[derive(Clone, Debug, Default)]
    struct LifeProbe {
        rounds: Vec<u64>,
        started: bool,
        recoveries: u64,
    }

    #[derive(Clone, Debug)]
    struct Nix;
    impl WireSize for Nix {
        fn wire_size(&self) -> usize {
            0
        }
    }

    impl ExecProtocol for LifeProbe {
        type Msg = Nix;
        fn on_start<X: Exec<Msg = Nix>>(&mut self, _ctx: &mut X) {
            self.started = true;
        }
        fn on_message<X: Exec<Msg = Nix>>(&mut self, _f: ProcessId, _m: Nix, _c: &mut X) {}
        fn on_round<X: Exec<Msg = Nix>>(&mut self, round: u64, _ctx: &mut X) {
            self.rounds.push(round);
        }
        fn on_recover<X: Exec<Msg = Nix>>(&mut self, _ctx: &mut X) {
            self.recoveries += 1;
        }
    }

    impl da_simnet::Protocol for LifeProbe {
        type Msg = Nix;
        fn on_start(&mut self, ctx: &mut da_simnet::Ctx<'_, Nix>) {
            ExecProtocol::on_start(self, ctx);
        }
        fn on_message(&mut self, f: ProcessId, m: Nix, c: &mut da_simnet::Ctx<'_, Nix>) {
            ExecProtocol::on_message(self, f, m, c);
        }
        fn on_round(&mut self, round: u64, ctx: &mut da_simnet::Ctx<'_, Nix>) {
            ExecProtocol::on_round(self, round, ctx);
        }
        fn on_recover(&mut self, ctx: &mut da_simnet::Ctx<'_, Nix>) {
            ExecProtocol::on_recover(self, ctx);
        }
    }

    /// Tentpole acceptance: the same seed materialises the same
    /// `FailurePlan` fates on the simulator and on the runtime,
    /// regardless of worker count — every process executes the exact
    /// same set of rounds, is recovered the same number of times, and
    /// ends in the same status.
    #[test]
    fn failure_fates_match_the_simulator_at_any_worker_count() {
        use da_core::failure::FailureModel;
        const N: usize = 12;
        const TICKS: u64 = 40;
        let model = || FailureModel::Churn {
            crash_probability: 0.15,
            recover_probability: 0.3,
        };

        let mut engine = da_simnet::Engine::new(
            da_simnet::SimConfig::default()
                .with_seed(11)
                .with_failures(model()),
            (0..N).map(|_| LifeProbe::default()).collect(),
        );
        engine.run_rounds(TICKS);
        let sim_statuses: Vec<bool> = (0..N)
            .map(|i| engine.status(ProcessId::from_index(i)).is_alive())
            .collect();
        let sim_crashes = engine.counters().get("sim.churn_crashes");
        let sim_recoveries = engine.counters().get("sim.churn_recoveries");
        let sim_probes: Vec<LifeProbe> = engine.into_processes();

        for workers in [1usize, 4] {
            let config = RuntimeConfig::default()
                .with_workers(workers)
                .with_seed(11)
                .with_failures(model());
            let mut rt = Runtime::spawn(config, (0..N).map(|_| LifeProbe::default()).collect());
            rt.run_ticks(TICKS);
            let out = rt.shutdown();
            for (pid, (sim, live)) in sim_probes.iter().zip(&out.processes).enumerate() {
                assert_eq!(
                    sim.rounds, live.rounds,
                    "process {pid} executed different rounds at {workers} workers"
                );
                assert_eq!(sim.recoveries, live.recoveries, "process {pid} recoveries");
            }
            let live_statuses: Vec<bool> = out.statuses.iter().map(|s| s.is_alive()).collect();
            assert_eq!(
                sim_statuses, live_statuses,
                "{workers} workers: final liveness"
            );
            assert_eq!(out.counters.get("rt.churn_crashes"), sim_crashes);
            assert_eq!(out.counters.get("rt.churn_recoveries"), sim_recoveries);
        }
        assert!(sim_crashes > 0 && sim_recoveries > 0, "the run saw churn");
    }

    /// Stillborn processes are applied at spawn: they never run
    /// `on_start`, never execute a round — and the crashed set is the
    /// plan's, identical to the simulator's.
    #[test]
    fn stillborn_processes_never_start() {
        use da_core::failure::FailureModel;
        let config = RuntimeConfig::default()
            .with_workers(3)
            .with_seed(5)
            .with_failures(FailureModel::Stillborn {
                alive_fraction: 0.5,
            });
        let plan = FailureModel::Stillborn {
            alive_fraction: 0.5,
        }
        .materialize(10, 5);
        let mut rt = Runtime::spawn(config, (0..10).map(|_| LifeProbe::default()).collect());
        rt.run_ticks(5);
        let out = rt.shutdown();
        for (i, p) in out.processes.iter().enumerate() {
            let crashed = plan.is_initially_crashed(ProcessId::from_index(i));
            assert_eq!(p.started, !crashed, "process {i} started");
            assert_eq!(p.rounds.is_empty(), crashed, "process {i} rounds");
            assert_eq!(out.statuses[i].is_alive(), !crashed);
        }
        assert_eq!(out.counters.get("rt.dropped_crashed"), 0);
    }

    /// Mid-flight crash accounting is exact: envelopes owed to a crashed
    /// process drain to `rt.dropped_crashed`, quiescence is still
    /// reached, and every envelope ends in exactly one of delivered /
    /// `rt.dropped_channel` / `rt.dropped_crashed` /
    /// `rt.dropped_shutdown`.
    #[test]
    fn crashed_inbox_drains_to_dropped_crashed() {
        use da_core::failure::{FailureModel, Fate};
        for (workers, max_lag, latency) in [(2, 1, 1), (3, 3, 3)] {
            let config = RuntimeConfig::default()
                .with_workers(workers)
                .with_seed(3)
                .with_max_lag(max_lag)
                .with_channel(ChannelConfig::reliable().with_latency(Latency::Fixed(latency)))
                .with_failures(FailureModel::Schedule(vec![Fate {
                    round: 2,
                    pid: ProcessId(1),
                    crash: true,
                }]));
            let mut rt = Runtime::spawn(config, relay_procs(6));
            let executed = rt.run_until_quiescent(64);
            assert!(executed < 64, "crashed receivers must not wedge the run");
            let out = rt.shutdown();
            let sent = out.counters.get("rt.sent");
            let delivered = out.counters.get("rt.delivered");
            let dropped_crashed = out.counters.get("rt.dropped_crashed");
            let dropped_shutdown = out.counters.get("rt.dropped_shutdown");
            // p1 crashes at tick 2, so it only sends in ticks 0 and 1:
            // 5 x 5 + 2 sends in total.
            assert_eq!(sent, 27, "crashed processes stop sending");
            assert!(
                dropped_crashed > 0,
                "p1's inbox must drain to rt.dropped_crashed"
            );
            assert_eq!(
                delivered + dropped_crashed + dropped_shutdown,
                sent,
                "workers={workers} lag={max_lag}: every envelope exactly once"
            );
            assert!(!out.statuses[1].is_alive());
            let received: u64 = out.processes.iter().map(|p| p.received.len() as u64).sum();
            assert_eq!(received, delivered);
        }
    }

    /// Satellite requirement: with a partition window, loss, latency,
    /// and a mid-run crash all active at once, the envelope ledger is
    /// exact at max_lag ∈ {1, 4} — every send ends in exactly one of
    /// delivered / dropped_channel / dropped_partitioned /
    /// dropped_crashed / dropped_observed_failed / dropped_shutdown /
    /// dropped_closed. Partition drops happen at send time (they never
    /// enter flight), so the coordinator's in-flight ledger needs no
    /// special case.
    #[test]
    fn partition_accounting_is_exact_across_lag_windows() {
        use da_core::failure::{FailureModel, Fate};
        use da_core::topology::{NodeId, Partition, PartitionSchedule, Topology};
        for (workers, max_lag, latency) in [(2, 1, 1), (3, 4, 4)] {
            let config = RuntimeConfig::default()
                .with_workers(workers)
                .with_seed(3)
                .with_max_lag(max_lag)
                .with_channel(
                    ChannelConfig::reliable()
                        .with_success_probability(0.7)
                        .with_latency(Latency::Fixed(latency)),
                )
                .with_topology(
                    // Ring 0→1→…→5→0 with pids 3..6 on node B: the 2→3
                    // and 5→0 hops cross the cut.
                    Topology::with_nodes(["a", "b"]).with_placement_range(3..6, NodeId(1)),
                )
                .with_partitions(PartitionSchedule::none().with_partition(
                    Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], 1).heal_at(3),
                ))
                .with_failures(FailureModel::Schedule(vec![Fate {
                    round: 2,
                    pid: ProcessId(1),
                    crash: true,
                }]));
            let mut rt = Runtime::spawn(config, relay_procs(6));
            let executed = rt.run_until_quiescent(64);
            assert!(executed < 64, "partitions must not wedge the run");
            let out = rt.shutdown();
            let sent = out.counters.get("rt.sent");
            let delivered = out.counters.get("rt.delivered");
            let dropped_partitioned = out.counters.get("rt.dropped_partitioned");
            assert!(
                dropped_partitioned > 0,
                "the cross-node hops at ticks 1..3 must be severed"
            );
            let accounted = delivered
                + out.counters.get("rt.dropped_channel")
                + dropped_partitioned
                + out.counters.get("rt.dropped_crashed")
                + out.counters.get("rt.dropped_observed_failed")
                + out.counters.get("rt.dropped_shutdown")
                + out.counters.get("rt.dropped_closed");
            assert_eq!(
                accounted, sent,
                "workers={workers} lag={max_lag}: every envelope exactly once"
            );
            let received: u64 = out.processes.iter().map(|p| p.received.len() as u64).sum();
            assert_eq!(received, delivered);
        }
    }

    /// The per-observer model (paper Fig. 11) live: every transmission
    /// independently observes its target as failed with probability
    /// `1 - alive_fraction`, nobody is globally crashed, and the
    /// envelope accounting stays exact.
    #[test]
    fn per_observer_drops_fraction_live() {
        use da_core::failure::FailureModel;
        let config = RuntimeConfig::default()
            .with_workers(3)
            .with_seed(13)
            .with_failures(FailureModel::PerObserver {
                alive_fraction: 0.7,
            });
        let mut rt = Runtime::spawn(config, relay_procs(10));
        let executed = rt.run_until_quiescent(64);
        assert!(executed < 64);
        let out = rt.shutdown();
        let sent = out.counters.get("rt.sent");
        let delivered = out.counters.get("rt.delivered");
        let observed = out.counters.get("rt.dropped_observed_failed");
        assert_eq!(sent, 50, "10 senders x ticks 0..5");
        assert_eq!(delivered + observed, sent, "every envelope accounted");
        assert!(
            (5..25).contains(&observed),
            "observer drops {observed}/{sent}, expected ≈ 15"
        );
        // Nobody is actually crashed in this model.
        assert!(out.statuses.iter().all(|s| s.is_alive()));
        assert_eq!(out.counters.get("rt.dropped_crashed"), 0);
    }

    /// Channel fates key off the edge, not the worker: the multiset of
    /// per-process loss counts is identical however the pool is striped.
    #[test]
    fn channel_fates_are_stripe_independent() {
        let run = |workers: usize| {
            let config = RuntimeConfig::default()
                .with_workers(workers)
                .with_seed(7)
                .with_channel(ChannelConfig::reliable().with_success_probability(0.6));
            let mut rt = Runtime::spawn(config, relay_procs(12));
            rt.run_until_quiescent(64);
            let out = rt.shutdown();
            (
                out.counters.get("rt.dropped_channel"),
                out.counters.get("rt.delivered"),
            )
        };
        // The relay's send pattern is deterministic (next-pid ring), so
        // per-edge draws — and with them the global loss totals — must
        // not move when the worker count changes.
        assert_eq!(run(1), run(4));
    }

    use da_core::trace::TraceConfig;

    #[test]
    fn tracing_is_off_by_default() {
        let mut rt = relay_runtime(6, 2);
        rt.run_ticks(2);
        assert!(rt.trace_log().is_none());
        assert!(rt.shutdown().trace.is_none());
    }

    /// Tentpole acceptance: the flight recorder's verdict counts are the
    /// envelope ledger — every trace count equals its counter, the
    /// event buffer holds one event per count, and the latency histogram
    /// saw every delivery.
    #[test]
    fn full_trace_mirrors_the_counters() {
        let config = RuntimeConfig::default()
            .with_workers(3)
            .with_seed(9)
            .with_channel(ChannelConfig::reliable().with_success_probability(0.6))
            .with_trace(TraceConfig::full());
        let mut rt = Runtime::spawn(config, relay_procs(10));
        rt.run_until_quiescent(64);
        let out = rt.shutdown();
        let log = out.trace.expect("tracing was on");
        assert_eq!(log.count(TraceVerdict::Sent), out.counters.get("rt.sent"));
        assert_eq!(
            log.count(TraceVerdict::Delivered),
            out.counters.get("rt.delivered")
        );
        assert_eq!(
            log.count(TraceVerdict::DroppedChannel),
            out.counters.get("rt.dropped_channel")
        );
        assert!(
            log.count(TraceVerdict::DroppedChannel) > 0,
            "the run lost messages"
        );
        assert_eq!(
            log.events.len() as u64,
            log.verdict_counts.iter().sum::<u64>(),
            "full mode buffers one event per counted verdict"
        );
        assert_eq!(log.dropped_events, 0);
        let latency = log.histogram("delivery_latency_ticks").expect("histogram");
        assert_eq!(latency.count(), out.counters.get("rt.delivered"));
        assert_eq!(latency.max(), 1, "the relay runs on latency-1 channels");
        assert!(log.histogram("wheel_occupancy").is_some());
        assert!(log.histogram("watermark_lag").is_some());
        let lane_depth = log.histogram("lane_depth").expect("histogram");
        assert!(
            lane_depth.count() > 0,
            "every executed tick samples the lanes swept"
        );
    }

    #[test]
    fn counters_only_keeps_the_ledger_without_events() {
        let config = RuntimeConfig::default()
            .with_workers(2)
            .with_seed(1)
            .with_trace(TraceConfig::counters_only());
        let mut rt = Runtime::spawn(config, relay_procs(6));
        rt.run_until_quiescent(64);
        let out = rt.shutdown();
        let log = out.trace.expect("tracing was on");
        assert!(log.events.is_empty(), "counters-only buffers nothing");
        assert_eq!(log.count(TraceVerdict::Sent), 30);
        assert_eq!(log.count(TraceVerdict::Delivered), 30);
    }

    /// Lifecycle events land in the stream: one `crashed` per downward
    /// transition, one `recovered` per upward one, self-edged, matching
    /// the churn counters.
    #[test]
    fn lifecycle_events_match_churn_counters() {
        use da_core::failure::FailureModel;
        let config = RuntimeConfig::default()
            .with_workers(3)
            .with_seed(11)
            .with_failures(FailureModel::Churn {
                crash_probability: 0.15,
                recover_probability: 0.3,
            })
            .with_trace(TraceConfig::full());
        let mut rt = Runtime::spawn(config, (0..12).map(|_| LifeProbe::default()).collect());
        rt.run_ticks(40);
        let out = rt.shutdown();
        let log = out.trace.expect("tracing was on");
        assert_eq!(
            log.count(TraceVerdict::Crashed),
            out.counters.get("rt.churn_crashes"),
            "churn is the only crash source here"
        );
        assert_eq!(
            log.count(TraceVerdict::Recovered),
            out.counters.get("rt.churn_recoveries")
        );
        assert!(log.count(TraceVerdict::Crashed) > 0, "the run saw churn");
        for e in log
            .events
            .iter()
            .filter(|e| e.verdict == TraceVerdict::Crashed)
        {
            assert_eq!(e.from, e.to, "lifecycle events are self-edged");
            assert_eq!(e.payload, 0);
        }
    }

    /// The canonical trace stream is a worker-count invariant: loss,
    /// latency, and churn draws all key off (edge, tick) or (pid, tick),
    /// so regrouping the pool permutes only the within-tick interleaving
    /// that canonicalization erases.
    #[test]
    fn canonical_trace_is_worker_count_invariant() {
        use da_core::failure::FailureModel;
        let run = |workers: usize| {
            let config = RuntimeConfig::default()
                .with_workers(workers)
                .with_seed(7)
                .with_channel(
                    ChannelConfig::reliable()
                        .with_success_probability(0.7)
                        .with_latency(Latency::UniformRounds { min: 1, max: 3 }),
                )
                .with_failures(FailureModel::Churn {
                    crash_probability: 0.1,
                    recover_probability: 0.4,
                })
                .with_trace(TraceConfig::full());
            let mut rt = Runtime::spawn(config, relay_procs(12));
            rt.run_until_quiescent(64);
            let out = rt.shutdown();
            out.trace.expect("tracing was on").canonical_events()
        };
        let single = run(1);
        assert!(!single.is_empty());
        assert_eq!(single, run(3));
        assert_eq!(single, run(4));
    }
}
