//! The worker pool, the tick scheduler, and the live execution context.

use crate::config::RuntimeConfig;
use crate::metrics::ShardedCounters;
use crate::transport::{Batch, FaultyRouter, Router, SendFate};
use crate::wheel::DelayWheel;
use crossbeam::channel::{self, Receiver, Sender};
use da_simnet::{rng_for_process, Counters, ProcessId, WireSize};
use damulticast::{Exec, ExecProtocol};
use rand::rngs::SmallRng;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The live execution context handed to protocol hooks — the runtime's
/// counterpart of `da_simnet::Ctx`, implementing the same
/// [`Exec`] capability surface over the threaded transport.
struct LiveCtx<'a, M> {
    me: ProcessId,
    tick: u64,
    rng: &'a mut SmallRng,
    counters: &'a mut Counters,
    router: &'a mut FaultyRouter<M>,
    sent: &'a mut u64,
}

impl<M: WireSize> Exec for LiveCtx<'_, M> {
    type Msg = M;

    fn me(&self) -> ProcessId {
        self.me
    }

    fn round(&self) -> u64 {
        self.tick
    }

    fn send(&mut self, to: ProcessId, msg: M) {
        *self.sent += 1;
        self.counters.bump("rt.sent");
        self.counters
            .add_named("rt.bytes_sent", msg.wire_size() as u64);
        match self.router.send(self.me, to, self.tick, msg) {
            SendFate::Queued { .. } => {}
            SendFate::DroppedChannel => self.counters.bump("rt.dropped_channel"),
        }
    }

    fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    fn bump(&mut self, label: &str) {
        self.counters.bump(label);
    }

    fn add(&mut self, label: &str, delta: u64) {
        self.counters.add_named(label, delta);
    }
}

/// Coordinator → worker commands.
enum Control<P> {
    /// Run one tick of the given number.
    Tick(u64),
    /// Run a closure against one owned process (state injection /
    /// inspection between ticks).
    Apply {
        pid: ProcessId,
        f: Box<dyn FnOnce(&mut P) + Send>,
    },
    /// Drain down and return the owned processes.
    Stop,
}

/// Per-worker tick accounting, aggregated by the coordinator into a
/// [`TickReport`].
#[derive(Debug, Clone, Copy)]
struct WorkerReport {
    sent: u64,
    delivered: u64,
    pending: u64,
}

/// Aggregate summary of one executed tick — the live counterpart of
/// `da_simnet::RoundReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// The tick that was executed.
    pub tick: u64,
    /// Messages handed to the transport during this tick (including
    /// ones the unreliable channel then lost).
    pub sent: u64,
    /// Messages handed to `on_message` during this tick.
    pub delivered: u64,
    /// Messages parked in delay wheels, due in a later tick.
    pub pending: u64,
}

impl TickReport {
    /// True when the tick neither delivered nor produced nor holds
    /// pending messages — the quiescence criterion.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.sent == 0 && self.delivered == 0 && self.pending == 0
    }
}

/// One worker thread: owns a stripe of processes (`pid ≡ id mod stride`),
/// their RNG streams, its inbox, its outgoing [`FaultyRouter`] (with the
/// per-tick coalescing buffers), and its delay wheel; executes ticks on
/// command.
struct Worker<P: ExecProtocol> {
    id: usize,
    stride: usize,
    procs: Vec<P>,
    rngs: Vec<SmallRng>,
    control: Receiver<Control<P>>,
    inbox: Receiver<Batch<P::Msg>>,
    faulty: FaultyRouter<P::Msg>,
    reports: Sender<WorkerReport>,
    counters: Arc<ShardedCounters>,
    /// Envelopes that survived the channel but carry latency > 1: parked
    /// here until the scheduler reaches their due tick.
    wheel: DelayWheel<P::Msg>,
    started: bool,
}

impl<P> Worker<P>
where
    P: ExecProtocol,
    P::Msg: WireSize,
{
    fn pid_of(&self, local: usize) -> ProcessId {
        ProcessId::from_index(self.id + local * self.stride)
    }

    fn local_index(&self, pid: ProcessId) -> usize {
        debug_assert_eq!(pid.index() % self.stride, self.id, "misrouted {pid}");
        (pid.index() - self.id) / self.stride
    }

    /// The worker main loop: block on control, execute, ack.
    fn run(mut self) -> Vec<(ProcessId, P)> {
        loop {
            match self.control.recv() {
                Ok(Control::Tick(tick)) => {
                    let report = self.run_tick(tick);
                    if self.reports.send(report).is_err() {
                        break; // Coordinator is gone: shut down.
                    }
                }
                Ok(Control::Apply { pid, f }) => {
                    let local = self.local_index(pid);
                    f(&mut self.procs[local]);
                }
                Ok(Control::Stop) | Err(_) => break,
            }
        }
        self.account_shutdown_in_flight();
        let (id, stride) = (self.id, self.stride);
        self.procs
            .into_iter()
            .enumerate()
            .map(|(i, p)| (ProcessId::from_index(id + i * stride), p))
            .collect()
    }

    /// Messages still travelling when the pool stops (parked in the
    /// wheel, or in the inbox with a future due tick) are accounted as
    /// `rt.dropped_shutdown` rather than silently vanishing — the live
    /// analogue of the simulator's in-flight queue being discarded.
    ///
    /// The drain is complete: Stop is only sent between ticks, when every
    /// worker is parked on its control channel and all per-tick batches
    /// have been flushed.
    fn account_shutdown_in_flight(&mut self) {
        let mut in_flight = self.wheel.discard_all() as u64;
        while let Ok(batch) = self.inbox.try_recv() {
            in_flight += batch.len() as u64;
        }
        if in_flight > 0 {
            let shard = Arc::clone(&self.counters);
            shard
                .shard(self.id)
                .lock()
                .expect("metrics shard poisoned")
                .add_named("rt.dropped_shutdown", in_flight);
        }
    }

    /// One tick: release delay-wheel messages due now, drain the inbox
    /// (delivering due envelopes, parking delayed ones), run the round
    /// hooks, then flush this tick's coalesced outgoing batches before
    /// acking. The coordinator's barrier guarantees every batch sent
    /// during tick `n` is in its destination inbox before tick `n + 1`
    /// starts.
    fn run_tick(&mut self, tick: u64) -> WorkerReport {
        let shard = Arc::clone(&self.counters);
        let mut counters = shard.shard(self.id).lock().expect("metrics shard poisoned");
        let mut sent = 0u64;
        let mut delivered = 0u64;

        if !self.started {
            self.started = true;
            for i in 0..self.procs.len() {
                let me = self.pid_of(i);
                let mut ctx = LiveCtx {
                    me,
                    tick,
                    rng: &mut self.rngs[i],
                    counters: &mut counters,
                    router: &mut self.faulty,
                    sent: &mut sent,
                };
                self.procs[i].on_start(&mut ctx);
            }
        }

        // Collect this tick's deliveries: whatever the wheel owes now,
        // plus every inbox envelope that is already due. Envelopes with
        // a later due tick are parked on the wheel — that covers both
        // sampled latencies above one tick and the same-tick race where
        // a faster worker already flushed the tick being drained (its
        // output is due next tick by construction).
        let mut due = self.wheel.take_due(tick);
        while let Ok(batch) = self.inbox.try_recv() {
            for env in batch {
                debug_assert!(env.sent_tick <= tick, "envelope from the future");
                if env.due_tick <= tick {
                    due.push(env);
                } else {
                    self.wheel.schedule(env);
                }
            }
        }

        for env in due {
            let local = self.local_index(env.to);
            delivered += 1;
            counters.bump("rt.delivered");
            let mut ctx = LiveCtx {
                me: env.to,
                tick,
                rng: &mut self.rngs[local],
                counters: &mut counters,
                router: &mut self.faulty,
                sent: &mut sent,
            };
            self.procs[local].on_message(env.from, env.msg, &mut ctx);
        }

        // Round hooks, in pid order within the stripe.
        for i in 0..self.procs.len() {
            let me = self.pid_of(i);
            let mut ctx = LiveCtx {
                me,
                tick,
                rng: &mut self.rngs[i],
                counters: &mut counters,
                router: &mut self.faulty,
                sent: &mut sent,
            };
            self.procs[i].on_round(tick, &mut ctx);
        }

        // Ship this tick's output: one coalesced batch per destination
        // worker, inside the barrier so receivers see it next tick.
        let flush = self.faulty.flush();
        if flush.dropped_closed > 0 {
            counters.add_named("rt.dropped_closed", flush.dropped_closed);
        }

        WorkerReport {
            sent,
            delivered,
            pending: self.wheel.len() as u64,
        }
    }
}

/// The live runtime: a pool of worker threads executing
/// [`ExecProtocol`] processes as actors under a barrier-synchronised
/// tick scheduler, with the shared `da_core` channel fault model applied
/// by the transport.
///
/// The API mirrors `da_simnet::Engine` where the concepts coincide
/// (`step_tick`/`run_ticks`/`run_until_quiescent`, `counters`), and
/// replaces direct process access with [`Runtime::with_process_mut`]
/// (processes live on worker threads) plus [`Runtime::shutdown`] (the
/// graceful path that joins the pool and returns them).
///
/// ```
/// use da_runtime::{Runtime, RuntimeConfig};
/// use damulticast::{ParamMap, StaticNetwork};
///
/// let net = StaticNetwork::linear(&[3, 9], ParamMap::default(), 1).unwrap();
/// let leaf = net.groups()[1].members[0];
/// let config = RuntimeConfig::default().with_workers(2).with_seed(1);
/// let mut rt = Runtime::spawn(config, net.into_processes());
///
/// let id = rt.with_process_mut(leaf, |p| p.publish("tick"));
/// rt.run_until_quiescent(48);
///
/// let out = rt.shutdown();
/// assert!(out.processes.iter().filter(|p| p.has_delivered(id)).count() > 1);
/// ```
pub struct Runtime<P: ExecProtocol> {
    controls: Vec<Sender<Control<P>>>,
    reports: Receiver<WorkerReport>,
    handles: Vec<JoinHandle<Vec<(ProcessId, P)>>>,
    counters: Arc<ShardedCounters>,
    population: usize,
    tick: u64,
    tick_timeout: Duration,
}

/// What a graceful [`Runtime::shutdown`] leaves behind.
#[derive(Debug)]
pub struct Shutdown<P> {
    /// Every protocol instance, in pid order — the live counterpart of
    /// `Engine::into_processes`.
    pub processes: Vec<P>,
    /// Final merged metrics snapshot. Messages still in flight when the
    /// pool stopped (possible under latency models above one tick) are
    /// counted under `rt.dropped_shutdown`.
    pub counters: Counters,
}

impl<P> Runtime<P>
where
    P: ExecProtocol + Send + 'static,
    P::Msg: WireSize + Send + 'static,
{
    /// Spawns the worker pool over `processes` (process `i` gets
    /// `ProcessId(i)`, as under the simulator) and distributes them
    /// round-robin across workers.
    ///
    /// # Panics
    ///
    /// Panics when the OS refuses to spawn a worker thread.
    #[must_use]
    pub fn spawn(config: RuntimeConfig, processes: Vec<P>) -> Self {
        let population = processes.len();
        let workers = config.effective_workers(population);

        let mut inbox_txs = Vec::with_capacity(workers);
        let mut inbox_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = match config.mailbox_capacity {
                Some(cap) => channel::bounded(cap),
                None => channel::unbounded(),
            };
            inbox_txs.push(tx);
            inbox_rxs.push(rx);
        }
        let router = Router::new(inbox_txs);
        let counters = Arc::new(ShardedCounters::new(workers));
        let (report_tx, report_rx) = channel::unbounded();

        // Stripe processes and their seeded RNG streams across workers.
        let mut proc_stripes: Vec<Vec<P>> = (0..workers).map(|_| Vec::new()).collect();
        let mut rng_stripes: Vec<Vec<SmallRng>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, p) in processes.into_iter().enumerate() {
            proc_stripes[i % workers].push(p);
            rng_stripes[i % workers].push(rng_for_process(config.seed, ProcessId::from_index(i)));
        }

        let mut controls = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for (id, ((procs, rngs), inbox)) in proc_stripes
            .into_iter()
            .zip(rng_stripes)
            .zip(inbox_rxs)
            .enumerate()
        {
            let (control_tx, control_rx) = channel::unbounded();
            let worker = Worker {
                id,
                stride: workers,
                procs,
                rngs,
                control: control_rx,
                inbox,
                faulty: FaultyRouter::new(router.clone(), config.channel, config.seed),
                reports: report_tx.clone(),
                counters: Arc::clone(&counters),
                wheel: DelayWheel::new(),
                started: false,
            };
            let handle = std::thread::Builder::new()
                .name(format!("da-runtime-{id}"))
                .spawn(move || worker.run())
                .expect("failed to spawn a runtime worker");
            controls.push(control_tx);
            handles.push(handle);
        }

        Runtime {
            controls,
            reports: report_rx,
            handles,
            counters,
            population,
            tick: 0,
            tick_timeout: config.tick_timeout(),
        }
    }

    /// Number of processes hosted by the pool.
    #[must_use]
    pub fn population(&self) -> usize {
        self.population
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.controls.len()
    }

    /// The next tick to execute.
    #[must_use]
    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Executes one tick across the pool and aggregates the workers'
    /// reports.
    ///
    /// # Panics
    ///
    /// Panics when a worker has died or fails to ack within the
    /// configured tick timeout.
    pub fn step_tick(&mut self) -> TickReport {
        let tick = self.tick;
        for control in &self.controls {
            control
                .send(Control::Tick(tick))
                .unwrap_or_else(|_| panic!("runtime worker terminated before tick {tick}"));
        }
        let mut agg = TickReport {
            tick,
            ..TickReport::default()
        };
        for _ in 0..self.controls.len() {
            let report = self
                .reports
                .recv_timeout(self.tick_timeout)
                .unwrap_or_else(|e| panic!("worker failed to ack tick {tick}: {e}"));
            agg.sent += report.sent;
            agg.delivered += report.delivered;
            agg.pending += report.pending;
        }
        self.tick += 1;
        agg
    }

    /// Runs exactly `ticks` ticks and returns their reports.
    pub fn run_ticks(&mut self, ticks: u64) -> Vec<TickReport> {
        (0..ticks).map(|_| self.step_tick()).collect()
    }

    /// Runs until a tick is globally quiet (nothing sent, delivered, or
    /// pending) or `max_ticks` have executed. Returns the number of
    /// ticks executed.
    pub fn run_until_quiescent(&mut self, max_ticks: u64) -> u64 {
        for executed in 0..max_ticks {
            if self.step_tick().is_quiet() {
                return executed + 1;
            }
        }
        max_ticks
    }

    /// Runs a closure against the process `pid` on its worker thread and
    /// returns the result — the live substitute for
    /// `Engine::process_mut` (e.g. to inject a publication between
    /// ticks).
    ///
    /// # Panics
    ///
    /// Panics when `pid` is out of range or its worker has died.
    pub fn with_process_mut<R, F>(&mut self, pid: ProcessId, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut P) -> R + Send + 'static,
    {
        assert!(
            pid.index() < self.population,
            "{pid} out of range for population {}",
            self.population
        );
        let worker = pid.index() % self.controls.len();
        let (tx, rx) = channel::bounded(1);
        let wrapped: Box<dyn FnOnce(&mut P) + Send> = Box::new(move |p| {
            let _ = tx.send(f(p));
        });
        self.controls[worker]
            .send(Control::Apply { pid, f: wrapped })
            .unwrap_or_else(|_| panic!("runtime worker for {pid} terminated"));
        rx.recv().expect("runtime worker dropped an apply")
    }

    /// Merged metrics snapshot across all worker shards.
    #[must_use]
    pub fn counters(&self) -> Counters {
        self.counters.merged()
    }

    /// Graceful shutdown: stops every worker, joins the pool, and
    /// returns the protocol instances (pid order) with the final metrics.
    /// In-flight messages (delay wheels, undrained inboxes) are counted
    /// as `rt.dropped_shutdown` — never silently lost, never waited for.
    ///
    /// # Panics
    ///
    /// Panics when a worker thread panicked.
    #[must_use]
    pub fn shutdown(mut self) -> Shutdown<P> {
        for control in &self.controls {
            let _ = control.send(Control::Stop);
        }
        let mut tagged: Vec<(ProcessId, P)> = self
            .handles
            .drain(..)
            .flat_map(|h| h.join().expect("runtime worker panicked"))
            .collect();
        tagged.sort_by_key(|(pid, _)| *pid);
        Shutdown {
            processes: tagged.into_iter().map(|(_, p)| p).collect(),
            counters: self.counters.merged(),
        }
    }
}

/// Dropping the runtime without [`Runtime::shutdown`] still stops and
/// joins every worker (discarding the processes), so tests and callers
/// can never leak a pool.
impl<P: ExecProtocol> Drop for Runtime<P> {
    fn drop(&mut self) {
        for control in &self.controls {
            let _ = control.send(Control::Stop);
        }
        if std::thread::panicking() {
            // Reached while unwinding — typically from the tick watchdog
            // reporting a wedged worker. That worker can never ack Stop,
            // so joining here would turn the diagnostic panic back into
            // the very hang it exists to prevent. Leave the pool to die
            // with the process.
            return;
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_core::channel::{ChannelConfig, Latency};

    /// Every process sends one token to the next pid each tick and
    /// records the tick of each receipt.
    struct Relay {
        population: u32,
        received: Vec<u64>,
    }

    #[derive(Clone, Debug)]
    struct Token {
        sent_at: u64,
    }
    impl WireSize for Token {
        fn wire_size(&self) -> usize {
            8
        }
    }

    impl ExecProtocol for Relay {
        type Msg = Token;

        fn on_message<X: Exec<Msg = Token>>(&mut self, _from: ProcessId, msg: Token, ctx: &mut X) {
            assert!(
                msg.sent_at < ctx.round(),
                "deliveries are strictly later than their send tick"
            );
            self.received.push(ctx.round());
        }

        fn on_round<X: Exec<Msg = Token>>(&mut self, round: u64, ctx: &mut X) {
            if round < 5 {
                let next = ProcessId((ctx.me().0 + 1) % self.population);
                ctx.send(next, Token { sent_at: round });
            }
        }
    }

    fn relay_procs(n: u32) -> Vec<Relay> {
        (0..n)
            .map(|_| Relay {
                population: n,
                received: Vec::new(),
            })
            .collect()
    }

    fn relay_runtime(n: u32, workers: usize) -> Runtime<Relay> {
        Runtime::spawn(
            RuntimeConfig::default().with_workers(workers).with_seed(1),
            relay_procs(n),
        )
    }

    #[test]
    fn messages_delivered_exactly_next_tick() {
        let mut rt = relay_runtime(8, 3);
        let r0 = rt.step_tick();
        assert_eq!(r0.sent, 8);
        assert_eq!(r0.delivered, 0, "nothing in flight during tick 0");
        let r1 = rt.step_tick();
        assert_eq!(r1.delivered, 8);
        let out = rt.shutdown();
        // The on_message assertion above checked per-delivery latency.
        assert_eq!(out.counters.get("rt.delivered"), 8);
    }

    #[test]
    fn quiescence_detected_and_counts_balance() {
        let mut rt = relay_runtime(10, 4);
        let executed = rt.run_until_quiescent(64);
        assert!(executed < 64, "relay goes quiet after tick 5");
        let out = rt.shutdown();
        // 10 processes × ticks 0..5 = 50 sends, all delivered.
        assert_eq!(out.counters.get("rt.sent"), 50);
        assert_eq!(out.counters.get("rt.delivered"), 50);
        assert_eq!(out.counters.get("rt.bytes_sent"), 400);
        assert_eq!(out.counters.get("rt.dropped_channel"), 0);
        assert_eq!(out.counters.get("rt.dropped_shutdown"), 0);
        let total: usize = out.processes.iter().map(|p| p.received.len()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn shutdown_returns_processes_in_pid_order() {
        struct Tag(usize);
        #[derive(Clone, Debug)]
        struct Never;
        impl WireSize for Never {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl ExecProtocol for Tag {
            type Msg = Never;
            fn on_message<X: Exec<Msg = Never>>(&mut self, _f: ProcessId, _m: Never, _c: &mut X) {}
        }
        let procs = (0..23).map(Tag).collect();
        let mut rt = Runtime::spawn(RuntimeConfig::default().with_workers(5), procs);
        rt.run_ticks(2);
        let out = rt.shutdown();
        let tags: Vec<usize> = out.processes.iter().map(|t| t.0).collect();
        assert_eq!(tags, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn with_process_mut_round_trips_a_result() {
        let mut rt = relay_runtime(6, 2);
        rt.run_ticks(3);
        let seen = rt.with_process_mut(ProcessId(4), |p| p.received.len());
        assert!(seen > 0);
        assert_eq!(rt.population(), 6);
        assert_eq!(rt.workers(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_process_mut_rejects_unknown_pid() {
        let mut rt = relay_runtime(3, 2);
        rt.with_process_mut(ProcessId(99), |_| ());
    }

    #[test]
    fn drop_without_shutdown_joins_cleanly() {
        let mut rt = relay_runtime(12, 4);
        rt.run_ticks(2);
        drop(rt); // must not hang or panic
    }

    #[test]
    fn single_worker_pool_works() {
        let mut rt = relay_runtime(5, 1);
        rt.run_until_quiescent(32);
        let out = rt.shutdown();
        assert_eq!(out.counters.get("rt.sent"), 25);
    }

    /// Satellite requirement: the zero-latency (perfect) channel config
    /// is byte-for-byte the plain-Router behaviour — same per-process
    /// receipt ticks, same counters — because the explicit reliable
    /// config and the default are the same draw-free path.
    #[test]
    fn explicit_reliable_channel_equals_default_event_set() {
        let run = |config: RuntimeConfig| {
            let mut rt = Runtime::spawn(config.with_workers(3).with_seed(1), relay_procs(9));
            rt.run_until_quiescent(32);
            let out = rt.shutdown();
            let receipts: Vec<Vec<u64>> = out
                .processes
                .into_iter()
                .map(|p| {
                    let mut r = p.received;
                    r.sort_unstable();
                    r
                })
                .collect();
            (
                receipts,
                out.counters.get("rt.sent"),
                out.counters.get("rt.delivered"),
            )
        };
        let default = run(RuntimeConfig::default());
        let explicit = run(RuntimeConfig::default()
            .with_channel(ChannelConfig::reliable().with_latency(Latency::Fixed(1))));
        assert_eq!(default, explicit);
    }

    #[test]
    fn fixed_latency_delivers_exactly_k_ticks_later() {
        /// Process 0 sends one message to process 1 in tick 0; the
        /// receipt tick must honour the configured latency.
        struct OneShot {
            receipt: Option<u64>,
        }
        #[derive(Clone, Debug)]
        struct M;
        impl WireSize for M {
            fn wire_size(&self) -> usize {
                1
            }
        }
        impl ExecProtocol for OneShot {
            type Msg = M;
            fn on_message<X: Exec<Msg = M>>(&mut self, _f: ProcessId, _m: M, ctx: &mut X) {
                self.receipt = Some(ctx.round());
            }
            fn on_round<X: Exec<Msg = M>>(&mut self, round: u64, ctx: &mut X) {
                if round == 0 && ctx.me() == ProcessId(0) {
                    ctx.send(ProcessId(1), M);
                }
            }
        }
        let config = RuntimeConfig::default()
            .with_workers(2)
            .with_channel(ChannelConfig::reliable().with_latency(Latency::Fixed(3)));
        let procs = (0..2).map(|_| OneShot { receipt: None }).collect();
        let mut rt = Runtime::spawn(config, procs);
        let reports = rt.run_ticks(5);
        // Ticks 1 and 2 hold the message pending; tick 3 delivers it.
        assert_eq!(reports[1].pending, 1);
        assert_eq!(reports[2].pending, 1);
        assert_eq!(reports[3].delivered, 1);
        let out = rt.shutdown();
        assert_eq!(out.processes[1].receipt, Some(3));
        assert_eq!(out.counters.get("rt.dropped_shutdown"), 0);
    }

    #[test]
    fn pending_messages_defer_quiescence() {
        let config = RuntimeConfig::default()
            .with_workers(2)
            .with_channel(ChannelConfig::reliable().with_latency(Latency::Fixed(4)));
        let mut rt = Runtime::spawn(config, relay_procs(6));
        let executed = rt.run_until_quiescent(64);
        assert!(executed < 64);
        let out = rt.shutdown();
        // Latency stretches the schedule but loses nothing.
        assert_eq!(out.counters.get("rt.sent"), 30);
        assert_eq!(out.counters.get("rt.delivered"), 30);
    }

    /// Satellite requirement: messages still in flight at `shutdown` are
    /// accounted, not hung on. With latency 5, everything sent in the
    /// two executed ticks is still parked when the pool stops.
    #[test]
    fn shutdown_accounts_in_flight_messages() {
        let config = RuntimeConfig::default()
            .with_workers(3)
            .with_channel(ChannelConfig::reliable().with_latency(Latency::Fixed(5)));
        let mut rt = Runtime::spawn(config, relay_procs(8));
        rt.run_ticks(2);
        let out = rt.shutdown(); // must not hang waiting for due ticks
        let sent = out.counters.get("rt.sent");
        assert_eq!(sent, 16, "8 senders × 2 ticks");
        assert_eq!(out.counters.get("rt.delivered"), 0);
        assert_eq!(out.counters.get("rt.dropped_shutdown"), sent);
    }

    #[test]
    fn lossy_channel_drops_and_still_quiesces() {
        let config = RuntimeConfig::default()
            .with_workers(2)
            .with_seed(9)
            .with_channel(ChannelConfig::reliable().with_success_probability(0.5));
        let mut rt = Runtime::spawn(config, relay_procs(10));
        let executed = rt.run_until_quiescent(64);
        assert!(executed < 64);
        let out = rt.shutdown();
        let sent = out.counters.get("rt.sent");
        let delivered = out.counters.get("rt.delivered");
        let dropped = out.counters.get("rt.dropped_channel");
        assert_eq!(sent, 50);
        assert_eq!(delivered + dropped, sent, "every send is accounted");
        assert!(
            (10..40).contains(&dropped),
            "dropped {dropped} of {sent}, expected ≈ half"
        );
    }

    #[test]
    #[should_panic(expected = "failed to ack tick")]
    fn watchdog_panics_instead_of_hanging() {
        struct Wedge;
        #[derive(Clone, Debug)]
        struct Never;
        impl WireSize for Never {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl ExecProtocol for Wedge {
            type Msg = Never;
            fn on_message<X: Exec<Msg = Never>>(&mut self, _f: ProcessId, _m: Never, _c: &mut X) {}
            fn on_round<X: Exec<Msg = Never>>(&mut self, round: u64, _ctx: &mut X) {
                if round == 0 {
                    // Simulate a wedged protocol callback, far beyond the
                    // watchdog (the sleep also bounds how long the leaked
                    // worker outlives the panic).
                    std::thread::sleep(Duration::from_secs(5));
                }
            }
        }
        let mut rt = Runtime::spawn(
            RuntimeConfig::default()
                .with_workers(1)
                .with_tick_timeout_ms(50),
            vec![Wedge],
        );
        // Must panic promptly — and the unwinding Drop must NOT block on
        // joining the wedged worker (that would hang this test).
        rt.step_tick();
    }

    #[test]
    fn per_process_rng_streams_follow_the_seed() {
        use rand::Rng as _;
        struct Draw {
            value: u64,
        }
        #[derive(Clone, Debug)]
        struct Never;
        impl WireSize for Never {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl ExecProtocol for Draw {
            type Msg = Never;
            fn on_message<X: Exec<Msg = Never>>(&mut self, _f: ProcessId, _m: Never, _c: &mut X) {}
            fn on_round<X: Exec<Msg = Never>>(&mut self, round: u64, ctx: &mut X) {
                if round == 0 {
                    self.value = ctx.rng().gen();
                }
            }
        }
        let run = |workers: usize| {
            let procs = (0..9).map(|_| Draw { value: 0 }).collect();
            let mut rt = Runtime::spawn(
                RuntimeConfig::default().with_workers(workers).with_seed(42),
                procs,
            );
            rt.run_ticks(1);
            let out = rt.shutdown();
            out.processes.iter().map(|d| d.value).collect::<Vec<u64>>()
        };
        // The stream belongs to the process, not the worker: regrouping
        // the pool must not change the first draw of any process.
        assert_eq!(run(2), run(4));
    }

    /// Channel fates key off the edge, not the worker: the multiset of
    /// per-process loss counts is identical however the pool is striped.
    #[test]
    fn channel_fates_are_stripe_independent() {
        let run = |workers: usize| {
            let config = RuntimeConfig::default()
                .with_workers(workers)
                .with_seed(7)
                .with_channel(ChannelConfig::reliable().with_success_probability(0.6));
            let mut rt = Runtime::spawn(config, relay_procs(12));
            rt.run_until_quiescent(64);
            let out = rt.shutdown();
            (
                out.counters.get("rt.dropped_channel"),
                out.counters.get("rt.delivered"),
            )
        };
        // The relay's send pattern is deterministic (next-pid ring), so
        // per-edge draws — and with them the global loss totals — must
        // not move when the worker count changes.
        assert_eq!(run(1), run(4));
    }
}
