//! The per-worker delay wheel: envelopes that survived the channel but
//! are not yet due park here until the owning worker's clock reaches
//! their due tick.
//!
//! The wheel is keyed off the worker's *local* clock — under the
//! bounded-lag scheduler there is no global tick counter. A worker
//! drains its inbox at the start of its tick `t` and schedules every
//! envelope whose `due_tick > t`: that covers both sampled latencies
//! above one tick and batches from peer workers whose clocks run ahead
//! of this one (their output is due strictly later than `t` by the
//! watermark invariant, so it parks rather than delivering early).
//! [`DelayWheel::take_due`] then releases exactly the messages the
//! channel contract owes that tick.
//!
//! Storage is a true ring buffer: `capacity` pre-allocated slots, slot
//! `t % capacity` holding the envelopes due at tick `t` for any `t` in
//! the wheel's live window `[next, next + capacity)`. The runtime sizes
//! the window from `network.max_latency()` plus the scheduler's lag
//! bound — every latency model is bounded, so in-horizon envelopes
//! land in the ring with zero per-tick allocation (slot `Vec`s are
//! drained in place and keep their capacity). A `BTreeMap` spillover
//! holds the rare envelope scheduled outside the window (a caller
//! sizing the wheel smaller than its network's true ceiling, or a
//! past-due straggler); because the window only moves forward, every
//! spilled envelope for a tick was scheduled before any ring envelope
//! for the same tick, so releasing spill-then-ring per tick preserves
//! the exact due-order/insertion-order contract of the previous
//! pure-`BTreeMap` wheel (`ring_wheel_matches_btreemap_reference`
//! pins the equivalence down on randomized schedules).

use crate::transport::Envelope;
use std::collections::BTreeMap;

/// Envelopes parked until their delivery tick (one wheel per worker).
#[derive(Debug)]
pub(crate) struct DelayWheel<M> {
    /// `ring[t % capacity]` holds envelopes due at `t` for
    /// `t ∈ [next, next + capacity)`.
    ring: Vec<Vec<Envelope<M>>>,
    /// First tick not yet released — the start of the ring's window.
    next: u64,
    /// Envelopes scheduled outside the ring window, keyed by due tick.
    spill: BTreeMap<u64, Vec<Envelope<M>>>,
    len: usize,
}

impl<M> DelayWheel<M> {
    /// A wheel whose ring covers `capacity` consecutive due ticks
    /// (clamped to at least 1). Size it as `max latency + lag bound`:
    /// at local tick `t` a peer running `lag` ahead can send envelopes
    /// due up to `t + lag + max_latency`, and anything beyond the
    /// window degrades to the spill map, never to a lost envelope.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        DelayWheel {
            ring: (0..capacity).map(|_| Vec::new()).collect(),
            next: 0,
            spill: BTreeMap::new(),
            len: 0,
        }
    }

    /// Parks an envelope until its `due_tick`.
    pub(crate) fn schedule(&mut self, envelope: Envelope<M>) {
        let due = envelope.due_tick;
        if due >= self.next && due - self.next < self.ring.len() as u64 {
            let slot = (due % self.ring.len() as u64) as usize;
            self.ring[slot].push(envelope);
        } else {
            self.spill.entry(due).or_default().push(envelope);
        }
        self.len += 1;
    }

    /// Releases every envelope due at or before `tick`, earliest due
    /// tick first (insertion order within a tick).
    pub(crate) fn take_due(&mut self, tick: u64) -> Vec<Envelope<M>> {
        let mut due = Vec::new();
        // Past-due stragglers (scheduled with due < next): smallest due
        // ticks in the wheel, released first.
        while let Some(entry) = self.spill.first_entry() {
            if *entry.key() >= self.next || *entry.key() > tick {
                break;
            }
            due.extend(entry.remove());
        }
        let capacity = self.ring.len() as u64;
        while self.next <= tick {
            if due.len() == self.len {
                // Wheel is empty: slide the window in one step.
                self.next = tick + 1;
                break;
            }
            let t = self.next;
            if let Some(mut spilled) = self.spill.remove(&t) {
                due.append(&mut spilled);
            }
            // Drain in place so the slot keeps its allocation for the
            // tick `capacity` steps from now.
            due.append(&mut self.ring[(t % capacity) as usize]);
            self.next += 1;
        }
        self.len -= due.len();
        due
    }

    /// Number of parked envelopes.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Number of parked envelopes sitting in the spillover map rather
    /// than the ring (diagnostics: nonzero means the wheel was sized
    /// under the network's true latency ceiling).
    #[cfg(test)]
    pub(crate) fn spilled(&self) -> usize {
        self.spill.values().map(Vec::len).sum()
    }

    /// Empties the wheel, returning how many envelopes were discarded —
    /// the shutdown accounting path.
    pub(crate) fn discard_all(&mut self) -> usize {
        for slot in &mut self.ring {
            slot.clear();
        }
        self.spill.clear();
        std::mem::take(&mut self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::ProcessId;

    fn env(due_tick: u64, msg: u8) -> Envelope<u8> {
        Envelope {
            from: ProcessId(0),
            to: ProcessId(1),
            sent_tick: 0,
            due_tick,
            msg,
        }
    }

    #[test]
    fn releases_in_due_order() {
        let mut wheel = DelayWheel::with_capacity(8);
        wheel.schedule(env(5, 1));
        wheel.schedule(env(3, 2));
        wheel.schedule(env(3, 3));
        wheel.schedule(env(9, 4));
        assert_eq!(wheel.len(), 4);

        assert!(wheel.take_due(2).is_empty());
        let due: Vec<u8> = wheel.take_due(5).into_iter().map(|e| e.msg).collect();
        assert_eq!(due, vec![2, 3, 1], "due tick order, insertion order within");
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.take_due(9).len(), 1);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn take_due_catches_up_past_ticks() {
        let mut wheel = DelayWheel::with_capacity(8);
        wheel.schedule(env(1, 1));
        wheel.schedule(env(2, 2));
        // A driver that skipped ahead still gets everything owed.
        assert_eq!(wheel.take_due(100).len(), 2);
    }

    #[test]
    fn discard_all_counts_and_empties() {
        let mut wheel = DelayWheel::with_capacity(8);
        wheel.schedule(env(7, 1));
        wheel.schedule(env(8, 2));
        assert_eq!(wheel.discard_all(), 2);
        assert_eq!(wheel.len(), 0);
        assert!(wheel.take_due(100).is_empty());
    }

    #[test]
    fn in_window_envelopes_never_spill() {
        let mut wheel = DelayWheel::with_capacity(4);
        for tick in 0..100u64 {
            // Latency 1..=3 with capacity 4: always inside the window.
            wheel.schedule(env(tick + 1, 0));
            wheel.schedule(env(tick + 3, 1));
            assert_eq!(wheel.spilled(), 0, "tick {tick}: ring must absorb all");
            wheel.take_due(tick + 1);
        }
    }

    #[test]
    fn beyond_window_envelopes_spill_and_still_release() {
        let mut wheel = DelayWheel::with_capacity(2);
        wheel.schedule(env(50, 7));
        assert_eq!(wheel.spilled(), 1, "due 50 is far outside [0, 2)");
        assert!(wheel.take_due(49).is_empty());
        let due = wheel.take_due(50);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].msg, 7);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn window_slides_so_reused_slots_stay_distinct() {
        // Due ticks 1 and 5 share slot index 1 at capacity 4; the window
        // position must keep them apart.
        let mut wheel = DelayWheel::with_capacity(4);
        wheel.schedule(env(1, 1));
        let released: Vec<u8> = wheel.take_due(1).into_iter().map(|e| e.msg).collect();
        assert_eq!(released, vec![1]);
        wheel.schedule(env(5, 5));
        assert_eq!(wheel.spilled(), 0, "window is now [2, 6): due 5 fits");
        assert!(wheel.take_due(4).is_empty());
        let released: Vec<u8> = wheel.take_due(5).into_iter().map(|e| e.msg).collect();
        assert_eq!(released, vec![5]);
    }

    /// The old wheel *was* a `BTreeMap<u64, Vec<Envelope>>`; keep it as
    /// the in-test reference model the ring must match exactly.
    struct ReferenceWheel<M> {
        slots: BTreeMap<u64, Vec<Envelope<M>>>,
    }

    impl<M> ReferenceWheel<M> {
        fn new() -> Self {
            ReferenceWheel {
                slots: BTreeMap::new(),
            }
        }

        fn schedule(&mut self, envelope: Envelope<M>) {
            self.slots
                .entry(envelope.due_tick)
                .or_default()
                .push(envelope);
        }

        fn take_due(&mut self, tick: u64) -> Vec<Envelope<M>> {
            let mut due = Vec::new();
            while let Some(entry) = self.slots.first_entry() {
                if *entry.key() > tick {
                    break;
                }
                due.extend(entry.remove());
            }
            due
        }
    }

    /// Satellite requirement: for randomized latency schedules the ring
    /// wheel and the old BTreeMap wheel release identical envelope
    /// sequences — same envelopes, same order, at every drain point —
    /// across capacities both generous and deliberately undersized
    /// (where the ring must lean on its spillover path).
    #[test]
    fn ring_wheel_matches_btreemap_reference() {
        use rand::rngs::SmallRng;
        use rand::{Rng as _, SeedableRng as _};

        for (seed, capacity) in [(1u64, 1usize), (2, 2), (3, 5), (4, 8), (5, 64)] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut ring = DelayWheel::with_capacity(capacity);
            let mut reference = ReferenceWheel::new();
            let mut msg = 0u8;
            for tick in 0..200u64 {
                for _ in 0..rng.gen_range(0..5usize) {
                    // Latencies up to 40 ticks: far beyond the smaller
                    // capacities, so the spill path is exercised hard.
                    let due = tick + rng.gen_range(1..=40u64);
                    ring.schedule(env(due, msg));
                    reference.schedule(env(due, msg));
                    msg = msg.wrapping_add(1);
                }
                // Occasionally skip ticks so catch-up drains are covered.
                if rng.gen_bool(0.2) {
                    continue;
                }
                let got: Vec<(u64, u8)> = ring
                    .take_due(tick)
                    .into_iter()
                    .map(|e| (e.due_tick, e.msg))
                    .collect();
                let want: Vec<(u64, u8)> = reference
                    .take_due(tick)
                    .into_iter()
                    .map(|e| (e.due_tick, e.msg))
                    .collect();
                assert_eq!(got, want, "seed {seed} capacity {capacity} tick {tick}");
            }
            // Final catch-up far past the end releases the stragglers
            // identically too.
            let got: Vec<(u64, u8)> = ring
                .take_due(500)
                .into_iter()
                .map(|e| (e.due_tick, e.msg))
                .collect();
            let want: Vec<(u64, u8)> = reference
                .take_due(500)
                .into_iter()
                .map(|e| (e.due_tick, e.msg))
                .collect();
            assert_eq!(got, want, "seed {seed} capacity {capacity} final drain");
            assert_eq!(ring.len(), 0);
        }
    }
}
