//! The per-worker delay wheel: envelopes that survived the channel but
//! are not yet due park here until the owning worker's clock reaches
//! their due tick.
//!
//! The wheel is keyed off the worker's *local* clock — under the
//! bounded-lag scheduler there is no global tick counter. A worker
//! sweeps its incoming lanes at the start of its tick `t` and schedules
//! every envelope (all are due strictly after their send tick, and
//! peers' clocks may run ahead, so parking is the norm, not the
//! exception); [`DelayWheel::take_due_into`] then releases exactly the
//! messages the channel contract owes that tick.
//!
//! **Buckets are per producer lane.** Since the lane-matrix transport,
//! delivery order within a tick is a structural guarantee, not an
//! accident of thread timing: slot `(t, lane)` holds the envelopes
//! worker `lane` sent here due at `t`, in lane-FIFO (= send) order, and
//! a drain releases tick `t`'s buckets in lane order `0..workers`. No
//! sort, no comparison — the merged delivery sequence is a pure
//! function of `(tick, from, to, occurrence)` because each component
//! order is.
//!
//! Storage is a true ring buffer: `capacity × lanes` pre-allocated
//! buckets, bucket `(t % capacity, lane)` holding lane `lane`'s
//! envelopes due at tick `t` for any `t` in the wheel's live window
//! `[next, next + capacity)`. The runtime sizes the window from
//! `network.max_latency()` plus the scheduler's lag bound — every
//! latency model is bounded, so in-horizon envelopes land in the ring
//! with zero per-tick allocation (buckets are drained in place and keep
//! their capacity). A `BTreeMap` spillover keyed by `(due, lane)` holds
//! the rare envelope scheduled outside the window (a caller sizing the
//! wheel smaller than its network's true ceiling, or a past-due
//! straggler); because the window only moves forward, every spilled
//! envelope for a `(tick, lane)` bucket was scheduled before any ring
//! envelope for the same bucket, so releasing spill-then-ring per
//! bucket preserves the exact per-lane arrival order
//! (`ring_wheel_matches_btreemap_reference` pins the equivalence down
//! on randomized schedules).

use crate::transport::Envelope;
use std::collections::BTreeMap;

/// Envelopes parked until their delivery tick (one wheel per worker),
/// bucketed by the producer lane they arrived on.
#[derive(Debug)]
pub(crate) struct DelayWheel<M> {
    /// Producer lanes feeding this wheel (= workers in the pool).
    lanes: usize,
    /// Due ticks the ring window spans.
    capacity: usize,
    /// Bucket `(t % capacity) * lanes + lane` holds lane `lane`'s
    /// envelopes due at `t` for `t ∈ [next, next + capacity)`.
    ring: Vec<Vec<Envelope<M>>>,
    /// First tick not yet released — the start of the ring's window.
    next: u64,
    /// Envelopes scheduled outside the ring window, keyed by
    /// `(due tick, lane)` — `BTreeMap` order is exactly release order.
    spill: BTreeMap<(u64, usize), Vec<Envelope<M>>>,
    len: usize,
    /// Furthest due tick ever scheduled (monotone; see
    /// [`DelayWheel::due_horizon`] for why monotone is sound).
    max_due: u64,
}

impl<M> DelayWheel<M> {
    /// A wheel whose ring covers `capacity` consecutive due ticks
    /// (clamped to at least 1) for `lanes` producer lanes (clamped to at
    /// least 1). Size the window as `max latency + lag bound`: at local
    /// tick `t` a peer running `lag` ahead can send envelopes due up to
    /// `t + lag + max_latency`, and anything beyond the window degrades
    /// to the spill map, never to a lost envelope.
    pub(crate) fn with_capacity(capacity: usize, lanes: usize) -> Self {
        let capacity = capacity.max(1);
        let lanes = lanes.max(1);
        DelayWheel {
            lanes,
            capacity,
            ring: (0..capacity * lanes).map(|_| Vec::new()).collect(),
            next: 0,
            spill: BTreeMap::new(),
            len: 0,
            max_due: 0,
        }
    }

    /// Parks an envelope until its `due_tick`, in the bucket of the
    /// producer lane it arrived on.
    pub(crate) fn schedule(&mut self, lane: usize, envelope: Envelope<M>) {
        debug_assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        let due = envelope.due_tick;
        if due >= self.next && due - self.next < self.capacity as u64 {
            let bucket = (due % self.capacity as u64) as usize * self.lanes + lane;
            self.ring[bucket].push(envelope);
        } else {
            self.spill.entry((due, lane)).or_default().push(envelope);
        }
        self.len += 1;
        self.max_due = self.max_due.max(due);
    }

    /// Appends every envelope due at or before `tick` to `out`: earliest
    /// due tick first, producer lane order within a tick, arrival order
    /// within a lane. The caller's buffer is reused across ticks, so the
    /// steady-state drain allocates nothing.
    pub(crate) fn take_due_into(&mut self, tick: u64, out: &mut Vec<Envelope<M>>) {
        let start = out.len();
        // Past-due stragglers (scheduled with due < next): smallest
        // (due, lane) keys in the wheel, released first.
        while let Some(entry) = self.spill.first_entry() {
            let (due, _) = *entry.key();
            if due >= self.next || due > tick {
                break;
            }
            let mut spilled = entry.remove();
            out.append(&mut spilled);
        }
        while self.next <= tick {
            if out.len() - start == self.len {
                // Wheel is empty: slide the window in one step.
                self.next = tick + 1;
                break;
            }
            let t = self.next;
            let base = (t % self.capacity as u64) as usize * self.lanes;
            for lane in 0..self.lanes {
                if !self.spill.is_empty() {
                    if let Some(mut spilled) = self.spill.remove(&(t, lane)) {
                        out.append(&mut spilled);
                    }
                }
                // Drain in place so the bucket keeps its allocation for
                // the tick `capacity` steps from now.
                out.append(&mut self.ring[base + lane]);
            }
            self.next += 1;
        }
        self.len -= out.len() - start;
    }

    /// Number of parked envelopes.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The furthest due tick with an envelope *provably* still parked,
    /// `None` when the wheel is empty.
    ///
    /// Tracking the monotone maximum of every scheduled due tick is
    /// enough: envelopes only ever leave the wheel at their own due tick
    /// (shutdown's [`DelayWheel::discard_all`] aside), so while the
    /// wheel is non-empty its pending dues all lie in
    /// `(released.., max_due]` — meaning the envelope that set `max_due`
    /// has not been released yet and stays parked through `max_due − 1`.
    /// The scheduler uses this as a quiescence lower bound: every tick
    /// before `max_due` reports `pending > 0` and is therefore loud.
    pub(crate) fn due_horizon(&self) -> Option<u64> {
        (self.len > 0).then_some(self.max_due)
    }

    /// Number of parked envelopes sitting in the spillover map rather
    /// than the ring (diagnostics: nonzero means the wheel was sized
    /// under the network's true latency ceiling).
    #[cfg(test)]
    pub(crate) fn spilled(&self) -> usize {
        self.spill.values().map(Vec::len).sum()
    }

    /// Empties the wheel, returning how many envelopes were discarded —
    /// the shutdown accounting path.
    pub(crate) fn discard_all(&mut self) -> usize {
        for bucket in &mut self.ring {
            bucket.clear();
        }
        self.spill.clear();
        // Discarding breaks `max_due`'s "still parked" proof — reset it
        // so a refilled wheel starts from honest horizons.
        self.max_due = 0;
        std::mem::take(&mut self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::ProcessId;

    fn env(due_tick: u64, msg: u8) -> Envelope<u8> {
        Envelope {
            from: ProcessId(0),
            to: ProcessId(1),
            sent_tick: 0,
            due_tick,
            msg,
        }
    }

    /// Owned-`Vec` drain for test ergonomics.
    fn take_due(wheel: &mut DelayWheel<u8>, tick: u64) -> Vec<Envelope<u8>> {
        let mut due = Vec::new();
        wheel.take_due_into(tick, &mut due);
        due
    }

    #[test]
    fn releases_in_due_order() {
        let mut wheel = DelayWheel::with_capacity(8, 1);
        wheel.schedule(0, env(5, 1));
        wheel.schedule(0, env(3, 2));
        wheel.schedule(0, env(3, 3));
        wheel.schedule(0, env(9, 4));
        assert_eq!(wheel.len(), 4);

        assert!(take_due(&mut wheel, 2).is_empty());
        let due: Vec<u8> = take_due(&mut wheel, 5).into_iter().map(|e| e.msg).collect();
        assert_eq!(due, vec![2, 3, 1], "due tick order, insertion order within");
        assert_eq!(wheel.len(), 1);
        assert_eq!(take_due(&mut wheel, 9).len(), 1);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn lanes_release_in_worker_id_order_within_a_tick() {
        // Envelopes arrive interleaved across lanes; each tick releases
        // lane 0's arrivals (in order), then lane 1's, then lane 2's.
        let mut wheel = DelayWheel::with_capacity(8, 3);
        wheel.schedule(2, env(4, 20));
        wheel.schedule(0, env(4, 10));
        wheel.schedule(2, env(4, 21));
        wheel.schedule(1, env(5, 30));
        wheel.schedule(0, env(4, 11));
        let due: Vec<u8> = take_due(&mut wheel, 4).into_iter().map(|e| e.msg).collect();
        assert_eq!(
            due,
            vec![10, 11, 20, 21],
            "lane order, arrival order within"
        );
        let due: Vec<u8> = take_due(&mut wheel, 5).into_iter().map(|e| e.msg).collect();
        assert_eq!(due, vec![30]);
    }

    #[test]
    fn take_due_catches_up_past_ticks() {
        let mut wheel = DelayWheel::with_capacity(8, 1);
        wheel.schedule(0, env(1, 1));
        wheel.schedule(0, env(2, 2));
        // A driver that skipped ahead still gets everything owed.
        assert_eq!(take_due(&mut wheel, 100).len(), 2);
    }

    #[test]
    fn due_horizon_tracks_the_furthest_parked_envelope() {
        let mut wheel = DelayWheel::with_capacity(8, 1);
        assert_eq!(wheel.due_horizon(), None);
        wheel.schedule(0, env(3, 1));
        wheel.schedule(0, env(7, 2));
        assert_eq!(wheel.due_horizon(), Some(7));
        take_due(&mut wheel, 3);
        // The due-7 envelope is still parked: the horizon holds.
        assert_eq!(wheel.due_horizon(), Some(7));
        take_due(&mut wheel, 7);
        assert_eq!(wheel.due_horizon(), None, "empty wheel proves nothing");
        wheel.discard_all();
        wheel.schedule(0, env(9, 3));
        assert_eq!(wheel.due_horizon(), Some(9));
    }

    #[test]
    fn discard_all_counts_and_empties() {
        let mut wheel = DelayWheel::with_capacity(8, 2);
        wheel.schedule(0, env(7, 1));
        wheel.schedule(1, env(8, 2));
        assert_eq!(wheel.discard_all(), 2);
        assert_eq!(wheel.len(), 0);
        assert!(take_due(&mut wheel, 100).is_empty());
    }

    #[test]
    fn in_window_envelopes_never_spill() {
        let mut wheel = DelayWheel::with_capacity(4, 2);
        for tick in 0..100u64 {
            // Latency 1..=3 with capacity 4: always inside the window.
            wheel.schedule(0, env(tick + 1, 0));
            wheel.schedule(1, env(tick + 3, 1));
            assert_eq!(wheel.spilled(), 0, "tick {tick}: ring must absorb all");
            take_due(&mut wheel, tick + 1);
        }
    }

    #[test]
    fn beyond_window_envelopes_spill_and_still_release() {
        let mut wheel = DelayWheel::with_capacity(2, 1);
        wheel.schedule(0, env(50, 7));
        assert_eq!(wheel.spilled(), 1, "due 50 is far outside [0, 2)");
        assert!(take_due(&mut wheel, 49).is_empty());
        let due = take_due(&mut wheel, 50);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].msg, 7);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn window_slides_so_reused_slots_stay_distinct() {
        // Due ticks 1 and 5 share slot index 1 at capacity 4; the window
        // position must keep them apart.
        let mut wheel = DelayWheel::with_capacity(4, 1);
        wheel.schedule(0, env(1, 1));
        let released: Vec<u8> = take_due(&mut wheel, 1).into_iter().map(|e| e.msg).collect();
        assert_eq!(released, vec![1]);
        wheel.schedule(0, env(5, 5));
        assert_eq!(wheel.spilled(), 0, "window is now [2, 6): due 5 fits");
        assert!(take_due(&mut wheel, 4).is_empty());
        let released: Vec<u8> = take_due(&mut wheel, 5).into_iter().map(|e| e.msg).collect();
        assert_eq!(released, vec![5]);
    }

    #[test]
    fn reused_drain_buffer_appends_after_existing_contents() {
        let mut wheel = DelayWheel::with_capacity(4, 1);
        wheel.schedule(0, env(1, 9));
        let mut buf = vec![env(0, 1)];
        wheel.take_due_into(1, &mut buf);
        assert_eq!(buf.iter().map(|e| e.msg).collect::<Vec<_>>(), vec![1, 9]);
        assert_eq!(wheel.len(), 0);
    }

    /// The old wheel *was* a `BTreeMap` keyed by due tick; keep its
    /// per-lane generalisation as the in-test reference model the ring
    /// must match exactly.
    struct ReferenceWheel<M> {
        slots: BTreeMap<(u64, usize), Vec<Envelope<M>>>,
    }

    impl<M> ReferenceWheel<M> {
        fn new() -> Self {
            ReferenceWheel {
                slots: BTreeMap::new(),
            }
        }

        fn schedule(&mut self, lane: usize, envelope: Envelope<M>) {
            self.slots
                .entry((envelope.due_tick, lane))
                .or_default()
                .push(envelope);
        }

        fn take_due(&mut self, tick: u64) -> Vec<Envelope<M>> {
            let mut due = Vec::new();
            while let Some(entry) = self.slots.first_entry() {
                if entry.key().0 > tick {
                    break;
                }
                due.extend(entry.remove());
            }
            due
        }
    }

    /// Satellite requirement: for randomized latency schedules the ring
    /// wheel and the BTreeMap reference release identical envelope
    /// sequences — same envelopes, same order, at every drain point —
    /// across lane counts and capacities both generous and deliberately
    /// undersized (where the ring must lean on its spillover path).
    #[test]
    fn ring_wheel_matches_btreemap_reference() {
        use rand::rngs::SmallRng;
        use rand::{Rng as _, SeedableRng as _};

        for (seed, capacity, lanes) in [
            (1u64, 1usize, 1usize),
            (2, 2, 2),
            (3, 5, 3),
            (4, 8, 1),
            (5, 64, 4),
        ] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut ring = DelayWheel::with_capacity(capacity, lanes);
            let mut reference = ReferenceWheel::new();
            let mut msg = 0u8;
            for tick in 0..200u64 {
                for _ in 0..rng.gen_range(0..5usize) {
                    // Latencies up to 40 ticks: far beyond the smaller
                    // capacities, so the spill path is exercised hard.
                    let due = tick + rng.gen_range(1..=40u64);
                    let lane = rng.gen_range(0..lanes);
                    ring.schedule(lane, env(due, msg));
                    reference.schedule(lane, env(due, msg));
                    msg = msg.wrapping_add(1);
                }
                // Occasionally skip ticks so catch-up drains are covered.
                if rng.gen_bool(0.2) {
                    continue;
                }
                let got: Vec<(u64, u8)> = take_due(&mut ring, tick)
                    .into_iter()
                    .map(|e| (e.due_tick, e.msg))
                    .collect();
                let want: Vec<(u64, u8)> = reference
                    .take_due(tick)
                    .into_iter()
                    .map(|e| (e.due_tick, e.msg))
                    .collect();
                assert_eq!(
                    got, want,
                    "seed {seed} capacity {capacity} lanes {lanes} tick {tick}"
                );
            }
            // Final catch-up far past the end releases the stragglers
            // identically too.
            let got: Vec<(u64, u8)> = take_due(&mut ring, 500)
                .into_iter()
                .map(|e| (e.due_tick, e.msg))
                .collect();
            let want: Vec<(u64, u8)> = reference
                .take_due(500)
                .into_iter()
                .map(|e| (e.due_tick, e.msg))
                .collect();
            assert_eq!(got, want, "seed {seed} capacity {capacity} final drain");
            assert_eq!(ring.len(), 0);
        }
    }
}
