//! The per-worker delay wheel: envelopes that survived the channel but
//! are not yet due park here until the owning worker's clock reaches
//! their due tick.
//!
//! The wheel is keyed off the worker's *local* clock — under the
//! bounded-lag scheduler there is no global tick counter. A worker
//! drains its inbox at the start of its tick `t` and schedules every
//! envelope whose `due_tick > t`: that covers both sampled latencies
//! above one tick and batches from peer workers whose clocks run ahead
//! of this one (their output is due strictly later than `t` by the
//! watermark invariant, so it parks rather than delivering early).
//! [`DelayWheel::take_due`] then releases exactly the messages the
//! channel contract owes that tick. Slots are a `BTreeMap` keyed by due
//! tick — per-tick volumes are what one worker stripe receives, so
//! ordered-map overhead is noise next to the protocol hooks.

use crate::transport::Envelope;
use std::collections::BTreeMap;

/// Envelopes parked until their delivery tick (one wheel per worker).
#[derive(Debug)]
pub(crate) struct DelayWheel<M> {
    slots: BTreeMap<u64, Vec<Envelope<M>>>,
    len: usize,
}

impl<M> DelayWheel<M> {
    pub(crate) fn new() -> Self {
        DelayWheel {
            slots: BTreeMap::new(),
            len: 0,
        }
    }

    /// Parks an envelope until its `due_tick`.
    pub(crate) fn schedule(&mut self, envelope: Envelope<M>) {
        self.slots
            .entry(envelope.due_tick)
            .or_default()
            .push(envelope);
        self.len += 1;
    }

    /// Releases every envelope due at or before `tick`, earliest due
    /// tick first (insertion order within a tick).
    pub(crate) fn take_due(&mut self, tick: u64) -> Vec<Envelope<M>> {
        let mut due = Vec::new();
        while let Some(entry) = self.slots.first_entry() {
            if *entry.key() > tick {
                break;
            }
            due.extend(entry.remove());
        }
        self.len -= due.len();
        due
    }

    /// Number of parked envelopes.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Empties the wheel, returning how many envelopes were discarded —
    /// the shutdown accounting path.
    pub(crate) fn discard_all(&mut self) -> usize {
        self.slots.clear();
        std::mem::take(&mut self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::ProcessId;

    fn env(due_tick: u64, msg: u8) -> Envelope<u8> {
        Envelope {
            from: ProcessId(0),
            to: ProcessId(1),
            sent_tick: 0,
            due_tick,
            msg,
        }
    }

    #[test]
    fn releases_in_due_order() {
        let mut wheel = DelayWheel::new();
        wheel.schedule(env(5, 1));
        wheel.schedule(env(3, 2));
        wheel.schedule(env(3, 3));
        wheel.schedule(env(9, 4));
        assert_eq!(wheel.len(), 4);

        assert!(wheel.take_due(2).is_empty());
        let due: Vec<u8> = wheel.take_due(5).into_iter().map(|e| e.msg).collect();
        assert_eq!(due, vec![2, 3, 1], "due tick order, insertion order within");
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.take_due(9).len(), 1);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn take_due_catches_up_past_ticks() {
        let mut wheel = DelayWheel::new();
        wheel.schedule(env(1, 1));
        wheel.schedule(env(2, 2));
        // A driver that skipped ahead still gets everything owed.
        assert_eq!(wheel.take_due(100).len(), 2);
    }

    #[test]
    fn discard_all_counts_and_empties() {
        let mut wheel = DelayWheel::new();
        wheel.schedule(env(7, 1));
        wheel.schedule(env(8, 2));
        assert_eq!(wheel.discard_all(), 2);
        assert_eq!(wheel.len(), 0);
        assert!(wheel.take_due(100).is_empty());
    }
}
