//! The sharded metrics registry.
//!
//! The simulator owns a single `Counters` registry because it is
//! single-threaded. Live, every worker counting into one shared registry
//! would serialise the hot path on a lock; instead each worker gets its
//! own shard (locked only by that worker during a tick, and briefly by
//! snapshot readers) and [`ShardedCounters::merged`] folds the shards
//! into one registry with the same names the harness already reads.

use da_simnet::Counters;
use std::sync::Mutex;

/// Per-worker counter shards with on-demand merging.
///
/// ```
/// use da_runtime::ShardedCounters;
///
/// let sharded = ShardedCounters::new(2);
/// sharded.shard(0).lock().unwrap().bump("rt.sent");
/// sharded.shard(1).lock().unwrap().add_named("rt.sent", 2);
/// assert_eq!(sharded.merged().get("rt.sent"), 3);
/// ```
#[derive(Debug)]
pub struct ShardedCounters {
    shards: Vec<Mutex<Counters>>,
}

impl ShardedCounters {
    /// Creates `shards` empty shards (at least one).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        ShardedCounters {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Counters::new()))
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard behind `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    #[must_use]
    pub fn shard(&self, index: usize) -> &Mutex<Counters> {
        &self.shards[index]
    }

    /// Folds every shard into one registry. A snapshot: shards keep
    /// counting afterwards.
    ///
    /// # Panics
    ///
    /// Panics when a worker died holding its shard lock (poisoned mutex).
    #[must_use]
    pub fn merged(&self) -> Counters {
        let mut out = Counters::new();
        for shard in &self.shards {
            out.merge_from(&shard.lock().expect("metrics shard poisoned"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_folds_all_shards() {
        let s = ShardedCounters::new(3);
        for (i, shard) in (0..3).map(|i| (i, s.shard(i))) {
            shard.lock().unwrap().add_named("x", i as u64 + 1);
        }
        assert_eq!(s.merged().get("x"), 6);
        assert_eq!(s.shards(), 3);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let s = ShardedCounters::new(0);
        assert_eq!(s.shards(), 1);
        assert!(s.merged().is_empty());
    }

    #[test]
    fn merged_is_a_snapshot() {
        let s = ShardedCounters::new(2);
        s.shard(0).lock().unwrap().bump("a");
        let snap = s.merged();
        s.shard(1).lock().unwrap().bump("a");
        assert_eq!(snap.get("a"), 1);
        assert_eq!(s.merged().get("a"), 2);
    }

    #[test]
    fn shards_count_concurrently() {
        let s = std::sync::Arc::new(ShardedCounters::new(4));
        std::thread::scope(|scope| {
            for w in 0..4 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.shard(w).lock().unwrap().bump("hits");
                    }
                });
            }
        });
        assert_eq!(s.merged().get("hits"), 4000);
    }
}
