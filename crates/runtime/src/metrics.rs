//! The sharded metrics registry.
//!
//! The simulator owns a single `Counters` registry because it is
//! single-threaded. Live, every worker counting into one shared registry
//! would serialise the hot path on a lock — and even per-worker
//! `Mutex<Counters>` shards (the PR 2 design) put an atomic
//! acquire/release plus a shared cache line on every `bump`. Under the
//! bounded-lag scheduler each worker instead owns a plain, unsynchronised
//! `Counters` and [publishes](ShardedCounters::publish) a snapshot of it
//! into its shard once per tick; [`ShardedCounters::merged`] folds the
//! shards into one registry with the same names the harness already
//! reads. The hot path is a plain array increment; the per-tick publish
//! is a value `memcpy` whenever the counter set has not grown
//! ([`Counters::copy_values_from`]).

use da_simnet::Counters;
use std::sync::Mutex;

/// Per-worker counter snapshots with on-demand merging.
///
/// Workers count into registries they own outright and push snapshots
/// here at tick boundaries, so a merged read is at most one tick stale
/// per worker — exact again whenever the pool is idle (between driver
/// calls, and at shutdown after the final publish).
///
/// ```
/// use da_runtime::ShardedCounters;
/// use da_simnet::Counters;
///
/// let sharded = ShardedCounters::new(2);
/// let mut local = Counters::new(); // worker 0's owned registry
/// local.bump("rt.sent");
/// sharded.publish(0, &local);
/// local.add_named("rt.sent", 2);
/// sharded.publish(0, &local);
/// assert_eq!(sharded.merged().get("rt.sent"), 3, "snapshots replace, not add");
/// ```
#[derive(Debug)]
pub struct ShardedCounters {
    shards: Vec<Mutex<Counters>>,
}

impl ShardedCounters {
    /// Creates `shards` empty shards (at least one).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        ShardedCounters {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Counters::new()))
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Replaces shard `worker`'s snapshot with the current state of that
    /// worker's owned registry. Values are copied in place when the
    /// counter set has not grown since the last publish (the common
    /// case: counter names stabilise after the first few ticks), and
    /// cloned wholesale when it has.
    ///
    /// # Panics
    ///
    /// Panics when `worker` is out of range or a reader died holding the
    /// shard lock.
    pub fn publish(&self, worker: usize, local: &Counters) {
        let mut shard = self.shards[worker].lock().expect("metrics shard poisoned");
        if shard.len() == local.len() {
            shard.copy_values_from(local);
        } else {
            *shard = local.clone();
        }
    }

    /// Folds every shard into one registry. A snapshot: each worker's
    /// contribution is its registry as of that worker's most recent
    /// [`ShardedCounters::publish`].
    ///
    /// # Panics
    ///
    /// Panics when a worker died holding its shard lock (poisoned mutex).
    #[must_use]
    pub fn merged(&self) -> Counters {
        let mut out = Counters::new();
        for shard in &self.shards {
            out.merge_from(&shard.lock().expect("metrics shard poisoned"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_folds_all_shards() {
        let s = ShardedCounters::new(3);
        for i in 0..3 {
            let mut local = Counters::new();
            local.add_named("x", i as u64 + 1);
            s.publish(i, &local);
        }
        assert_eq!(s.merged().get("x"), 6);
        assert_eq!(s.shards(), 3);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let s = ShardedCounters::new(0);
        assert_eq!(s.shards(), 1);
        assert!(s.merged().is_empty());
    }

    #[test]
    fn merged_is_a_snapshot_of_last_publishes() {
        let s = ShardedCounters::new(2);
        let mut w0 = Counters::new();
        w0.bump("a");
        s.publish(0, &w0);
        let snap = s.merged();
        // Worker 0 keeps counting but has not republished: invisible.
        w0.bump("a");
        let mut w1 = Counters::new();
        w1.bump("a");
        s.publish(1, &w1);
        assert_eq!(snap.get("a"), 1);
        assert_eq!(s.merged().get("a"), 2, "w0's unpublished bump invisible");
        s.publish(0, &w0);
        assert_eq!(s.merged().get("a"), 3);
    }

    #[test]
    fn publish_handles_growing_counter_sets() {
        let s = ShardedCounters::new(1);
        let mut local = Counters::new();
        local.bump("first");
        s.publish(0, &local);
        local.bump("second"); // shape change: clone path
        local.bump("first");
        s.publish(0, &local);
        let merged = s.merged();
        assert_eq!(merged.get("first"), 2);
        assert_eq!(merged.get("second"), 1);
    }

    #[test]
    fn shards_publish_concurrently() {
        let s = std::sync::Arc::new(ShardedCounters::new(4));
        std::thread::scope(|scope| {
            for w in 0..4 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    let mut local = Counters::new();
                    for _ in 0..1000 {
                        local.bump("hits");
                        s.publish(w, &local);
                    }
                });
            }
        });
        assert_eq!(s.merged().get("hits"), 4000);
    }
}
