//! The sharded metrics registry and the sharded flight-recorder sink.
//!
//! The simulator owns a single `Counters` registry because it is
//! single-threaded. Live, every worker counting into one shared registry
//! would serialise the hot path on a lock — and even per-worker
//! `Mutex<Counters>` shards (the PR 2 design) put an atomic
//! acquire/release plus a shared cache line on every `bump`. Under the
//! bounded-lag scheduler each worker instead owns a plain, unsynchronised
//! `Counters` and [publishes](ShardedCounters::publish) a snapshot of it
//! into its shard once per tick; [`ShardedCounters::merged`] folds the
//! shards into one registry with the same names the harness already
//! reads. The hot path is a plain array increment; the per-tick publish
//! is a value `memcpy` whenever the counter set has not grown
//! ([`Counters::copy_values_from`]).
//!
//! [`TraceSink`] gives the flight recorder the same lifecycle: each
//! worker appends trace events into an unsynchronised
//! `da_core::trace::TraceRecorder` it owns, and drains it into its sink
//! shard at tick boundaries; [`TraceSink::merged`] folds the shards into
//! one [`TraceLog`] at shutdown.
//!
//! # Lock poisoning
//!
//! Shard mutexes only ever guard *snapshots* — plain `u64` counter
//! values, copied trace events, cloned histograms — so a thread that
//! panics while holding one cannot leave partially-updated state that
//! later readers would misinterpret. Both sinks therefore *recover* from
//! a poisoned shard lock (`PoisonError::into_inner`) instead of
//! propagating the panic: the merged view stays available while the
//! runtime tears down after a worker panic, which is exactly when the
//! diagnostics matter most.

use da_core::trace::{TraceConfig, TraceEvent, TraceRecorder, TraceVerdict};
use da_simnet::{Counters, Histogram, TraceLog};
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// Error returned when a publish names a worker index outside the shard
/// range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutOfRange {
    /// The offending worker index.
    pub worker: usize,
    /// Number of shards the sink actually has.
    pub shards: usize,
}

impl fmt::Display for ShardOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker {} out of range for {} metric shard(s)",
            self.worker, self.shards
        )
    }
}

impl std::error::Error for ShardOutOfRange {}

/// Per-worker counter snapshots with on-demand merging.
///
/// Workers count into registries they own outright and push snapshots
/// here at tick boundaries, so a merged read is at most one tick stale
/// per worker — exact again whenever the pool is idle (between driver
/// calls, and at shutdown after the final publish).
///
/// ```
/// use da_runtime::ShardedCounters;
/// use da_simnet::Counters;
///
/// let sharded = ShardedCounters::new(2);
/// let mut local = Counters::new(); // worker 0's owned registry
/// local.bump("rt.sent");
/// sharded.publish(0, &local).unwrap();
/// local.add_named("rt.sent", 2);
/// sharded.publish(0, &local).unwrap();
/// assert_eq!(sharded.merged().get("rt.sent"), 3, "snapshots replace, not add");
/// assert!(sharded.publish(7, &local).is_err(), "out of range is an error");
/// ```
#[derive(Debug)]
pub struct ShardedCounters {
    shards: Vec<Mutex<Counters>>,
}

impl ShardedCounters {
    /// Creates `shards` empty shards (at least one).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        ShardedCounters {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Counters::new()))
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Replaces shard `worker`'s snapshot with the current state of that
    /// worker's owned registry. Values are copied in place when the
    /// counter set has not grown since the last publish (the common
    /// case: counter names stabilise after the first few ticks), and
    /// cloned wholesale when it has.
    ///
    /// A poisoned shard lock is recovered, not propagated — see the
    /// module docs on why that is safe here.
    ///
    /// # Errors
    ///
    /// Returns [`ShardOutOfRange`] when `worker` is not a valid shard
    /// index (the snapshot is not published anywhere).
    pub fn publish(&self, worker: usize, local: &Counters) -> Result<(), ShardOutOfRange> {
        let Some(slot) = self.shards.get(worker) else {
            return Err(ShardOutOfRange {
                worker,
                shards: self.shards.len(),
            });
        };
        let mut shard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        if shard.len() == local.len() {
            shard.copy_values_from(local);
        } else {
            *shard = local.clone();
        }
        Ok(())
    }

    /// Folds every shard into one registry. A snapshot: each worker's
    /// contribution is its registry as of that worker's most recent
    /// [`ShardedCounters::publish`]. Poisoned shard locks are recovered,
    /// not propagated (see the module docs).
    #[must_use]
    pub fn merged(&self) -> Counters {
        let mut out = Counters::new();
        for shard in &self.shards {
            out.merge_from(&shard.lock().unwrap_or_else(PoisonError::into_inner));
        }
        out
    }
}

/// One worker's slot in the [`TraceSink`].
#[derive(Debug, Default)]
struct TraceShard {
    /// Drained events, appended publish after publish up to the sink
    /// capacity.
    events: Vec<TraceEvent>,
    /// Events this shard refused because the sink capacity was reached.
    overflow: u64,
    /// The publishing recorder's own overflow count (cumulative).
    recorder_dropped: u64,
    /// Cumulative per-verdict counts as of the last publish.
    counts: [u64; TraceVerdict::COUNT],
    /// Cloned worker histograms as of the last publish.
    histograms: Vec<(String, Histogram)>,
}

/// Per-worker flight-recorder shards, published at tick boundaries
/// exactly like [`ShardedCounters`] and folded into one [`TraceLog`] at
/// shutdown.
///
/// Each worker drains its owned `TraceRecorder` into its shard once per
/// tick ([`TraceSink::publish`] — an append under a per-shard lock no
/// other worker touches), keeping the recording hot path an
/// unsynchronised `Vec` push. The sink bounds the total events retained
/// per shard by the configured capacity; overflow is counted, never
/// blocking.
///
/// ```
/// use da_core::trace::{TraceConfig, TraceEvent, TraceRecorder, TraceVerdict};
/// use da_core::ProcessId;
/// use da_runtime::TraceSink;
///
/// let sink = TraceSink::new(2, &TraceConfig::full());
/// let mut rec = TraceRecorder::new(&TraceConfig::full()).unwrap();
/// rec.record(TraceEvent {
///     tick: 0,
///     from: ProcessId(0),
///     to: ProcessId(1),
///     payload: 4,
///     verdict: TraceVerdict::Sent,
/// });
/// sink.publish(0, &mut rec, &[]).unwrap();
/// let log = sink.merged();
/// assert_eq!(log.events.len(), 1);
/// assert_eq!(log.count(TraceVerdict::Sent), 1);
/// ```
#[derive(Debug)]
pub struct TraceSink {
    capacity: usize,
    shards: Vec<Mutex<TraceShard>>,
}

impl TraceSink {
    /// Creates one shard per worker (at least one), bounding retained
    /// events per shard by `config.capacity`.
    #[must_use]
    pub fn new(workers: usize, config: &TraceConfig) -> Self {
        TraceSink {
            capacity: config.capacity,
            shards: (0..workers.max(1))
                .map(|_| Mutex::new(TraceShard::default()))
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Drains `recorder` into shard `worker`: appends its buffered
    /// events (counting, not storing, anything beyond the sink
    /// capacity) and snapshots its cumulative per-verdict counts, its
    /// overflow count, and the given named histograms. Poisoned shard
    /// locks are recovered, not propagated (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`ShardOutOfRange`] when `worker` is not a valid shard
    /// index (the recorder is left undrained).
    pub fn publish(
        &self,
        worker: usize,
        recorder: &mut TraceRecorder,
        histograms: &[(&str, &Histogram)],
    ) -> Result<(), ShardOutOfRange> {
        let Some(slot) = self.shards.get(worker) else {
            return Err(ShardOutOfRange {
                worker,
                shards: self.shards.len(),
            });
        };
        let mut shard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        for event in recorder.take_events() {
            if shard.events.len() < self.capacity {
                shard.events.push(event);
            } else {
                shard.overflow += 1;
            }
        }
        shard.recorder_dropped = recorder.dropped();
        shard.counts = *recorder.counts();
        shard.histograms = histograms
            .iter()
            .map(|(name, h)| ((*name).to_owned(), (*h).clone()))
            .collect();
        Ok(())
    }

    /// Folds every shard into one [`TraceLog`]: events concatenated in
    /// worker order (canonicalize before comparing streams), counts and
    /// overflow summed, histograms merged by name. Poisoned shard locks
    /// are recovered, not propagated.
    #[must_use]
    pub fn merged(&self) -> TraceLog {
        let mut log = TraceLog::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            log.events.extend_from_slice(&shard.events);
            log.dropped_events += shard.overflow + shard.recorder_dropped;
            for (mine, theirs) in log.verdict_counts.iter_mut().zip(shard.counts.iter()) {
                *mine += theirs;
            }
            for (name, h) in &shard.histograms {
                log.add_histogram(name, h);
            }
        }
        log
    }
}

/// Everything one worker owns when tracing is enabled: the recorder its
/// hot paths append into, the trace histograms it samples per tick, and
/// the shared sink it drains into at tick boundaries.
///
/// The worker stores an `Option<WorkerTrace>` — `None` when tracing is
/// off, so every hot-path hook is one branch.
#[derive(Debug)]
pub(crate) struct WorkerTrace {
    pub recorder: TraceRecorder,
    /// Delivery tick minus send tick, per delivered envelope.
    pub delivery_latency: Histogram,
    /// Delay-wheel occupancy sampled once per tick after the inbox
    /// drain.
    pub wheel_occupancy: Histogram,
    /// How many ticks this worker ran ahead of its slowest peer's
    /// published frontier, sampled once per tick.
    pub watermark_lag: Histogram,
    /// Batches swept off the incoming SPSC lanes per tick (across all
    /// sweeps of that tick, pre-gate and final).
    pub lane_depth: Histogram,
    sink: Arc<TraceSink>,
}

impl WorkerTrace {
    /// A worker-side trace state for `config`, or `None` when tracing is
    /// off.
    pub fn new(config: &TraceConfig, sink: Arc<TraceSink>) -> Option<Self> {
        TraceRecorder::new(config).map(|recorder| WorkerTrace {
            recorder,
            delivery_latency: Histogram::new(),
            wheel_occupancy: Histogram::new(),
            watermark_lag: Histogram::new(),
            lane_depth: Histogram::new(),
            sink,
        })
    }

    /// Tick-boundary publish into the shared sink.
    ///
    /// # Panics
    ///
    /// Panics when `worker` is out of range — worker ids are assigned at
    /// spawn and always in range.
    pub fn publish(&mut self, worker: usize) {
        self.sink
            .publish(
                worker,
                &mut self.recorder,
                &[
                    ("delivery_latency_ticks", &self.delivery_latency),
                    ("wheel_occupancy", &self.wheel_occupancy),
                    ("watermark_lag", &self.watermark_lag),
                    ("lane_depth", &self.lane_depth),
                ],
            )
            .expect("worker id is in range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_core::ProcessId;

    #[test]
    fn merged_folds_all_shards() {
        let s = ShardedCounters::new(3);
        for i in 0..3 {
            let mut local = Counters::new();
            local.add_named("x", i as u64 + 1);
            s.publish(i, &local).unwrap();
        }
        assert_eq!(s.merged().get("x"), 6);
        assert_eq!(s.shards(), 3);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let s = ShardedCounters::new(0);
        assert_eq!(s.shards(), 1);
        assert!(s.merged().is_empty());
    }

    #[test]
    fn out_of_range_publish_is_an_error_not_a_panic() {
        let s = ShardedCounters::new(2);
        let local = Counters::new();
        let err = s.publish(2, &local).unwrap_err();
        assert_eq!(
            err,
            ShardOutOfRange {
                worker: 2,
                shards: 2
            }
        );
        assert!(err.to_string().contains("worker 2"));
        assert!(s.merged().is_empty(), "nothing was published");
    }

    #[test]
    fn merged_is_a_snapshot_of_last_publishes() {
        let s = ShardedCounters::new(2);
        let mut w0 = Counters::new();
        w0.bump("a");
        s.publish(0, &w0).unwrap();
        let snap = s.merged();
        // Worker 0 keeps counting but has not republished: invisible.
        w0.bump("a");
        let mut w1 = Counters::new();
        w1.bump("a");
        s.publish(1, &w1).unwrap();
        assert_eq!(snap.get("a"), 1);
        assert_eq!(s.merged().get("a"), 2, "w0's unpublished bump invisible");
        s.publish(0, &w0).unwrap();
        assert_eq!(s.merged().get("a"), 3);
    }

    #[test]
    fn publish_handles_growing_counter_sets() {
        let s = ShardedCounters::new(1);
        let mut local = Counters::new();
        local.bump("first");
        s.publish(0, &local).unwrap();
        local.bump("second"); // shape change: clone path
        local.bump("first");
        s.publish(0, &local).unwrap();
        let merged = s.merged();
        assert_eq!(merged.get("first"), 2);
        assert_eq!(merged.get("second"), 1);
    }

    #[test]
    fn shards_publish_concurrently() {
        let s = std::sync::Arc::new(ShardedCounters::new(4));
        std::thread::scope(|scope| {
            for w in 0..4 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    let mut local = Counters::new();
                    for _ in 0..1000 {
                        local.bump("hits");
                        s.publish(w, &local).unwrap();
                    }
                });
            }
        });
        assert_eq!(s.merged().get("hits"), 4000);
    }

    #[test]
    fn poisoned_shard_recovers_with_last_snapshot() {
        let s = std::sync::Arc::new(ShardedCounters::new(1));
        let mut local = Counters::new();
        local.bump("before");
        s.publish(0, &local).unwrap();
        let poisoner = std::sync::Arc::clone(&s);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.shards[0].lock().unwrap();
            panic!("poison the shard lock");
        })
        .join();
        // Reads and writes keep working on the recovered lock.
        assert_eq!(s.merged().get("before"), 1);
        local.bump("before");
        s.publish(0, &local).unwrap();
        assert_eq!(s.merged().get("before"), 2);
    }

    fn event(tick: u64, verdict: TraceVerdict) -> TraceEvent {
        TraceEvent {
            tick,
            from: ProcessId(0),
            to: ProcessId(1),
            payload: 4,
            verdict,
        }
    }

    #[test]
    fn trace_sink_folds_worker_shards() {
        let sink = TraceSink::new(2, &TraceConfig::full());
        let mut rec0 = TraceRecorder::new(&TraceConfig::full()).unwrap();
        let mut rec1 = TraceRecorder::new(&TraceConfig::full()).unwrap();
        rec0.record(event(0, TraceVerdict::Sent));
        rec1.record(event(1, TraceVerdict::Delivered));
        let mut latency = Histogram::new();
        latency.record(1);
        sink.publish(0, &mut rec0, &[("delivery_latency_ticks", &latency)])
            .unwrap();
        sink.publish(1, &mut rec1, &[("delivery_latency_ticks", &latency)])
            .unwrap();
        let log = sink.merged();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.count(TraceVerdict::Sent), 1);
        assert_eq!(log.count(TraceVerdict::Delivered), 1);
        assert_eq!(
            log.histogram("delivery_latency_ticks").unwrap().count(),
            2,
            "histograms merge by name across shards"
        );
        assert!(rec0.events().is_empty(), "publish drains the recorder");
    }

    #[test]
    fn trace_sink_publishes_are_cumulative_snapshots() {
        let sink = TraceSink::new(1, &TraceConfig::full());
        let mut rec = TraceRecorder::new(&TraceConfig::full()).unwrap();
        rec.record(event(0, TraceVerdict::Sent));
        sink.publish(0, &mut rec, &[]).unwrap();
        rec.record(event(1, TraceVerdict::Sent));
        sink.publish(0, &mut rec, &[]).unwrap();
        let log = sink.merged();
        assert_eq!(log.events.len(), 2, "events append across publishes");
        assert_eq!(
            log.count(TraceVerdict::Sent),
            2,
            "counts are snapshots of the cumulative recorder totals"
        );
    }

    #[test]
    fn trace_sink_caps_retained_events() {
        let config = TraceConfig::full().with_capacity(2);
        let sink = TraceSink::new(1, &config);
        let mut rec = TraceRecorder::new(&TraceConfig::full()).unwrap();
        for tick in 0..5 {
            rec.record(event(tick, TraceVerdict::Sent));
        }
        sink.publish(0, &mut rec, &[]).unwrap();
        let log = sink.merged();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.dropped_events, 3);
        assert_eq!(log.count(TraceVerdict::Sent), 5);
    }

    #[test]
    fn trace_sink_rejects_out_of_range_worker() {
        let sink = TraceSink::new(1, &TraceConfig::full());
        let mut rec = TraceRecorder::new(&TraceConfig::full()).unwrap();
        rec.record(event(0, TraceVerdict::Sent));
        let err = sink.publish(3, &mut rec, &[]).unwrap_err();
        assert_eq!(err.shards, 1);
        assert_eq!(rec.events().len(), 1, "recorder left undrained");
    }

    #[test]
    fn worker_trace_requires_enabled_config() {
        let sink = Arc::new(TraceSink::new(1, &TraceConfig::full()));
        assert!(WorkerTrace::new(&TraceConfig::off(), Arc::clone(&sink)).is_none());
        let mut wt = WorkerTrace::new(&TraceConfig::full(), sink).unwrap();
        wt.recorder.record(event(0, TraceVerdict::Sent));
        wt.delivery_latency.record(1);
        wt.publish(0);
        assert!(wt.recorder.events().is_empty());
    }
}
