//! The in-memory transport: envelopes, per-tick batches, the
//! worker-addressed [`Router`], the fault-injecting [`FaultyRouter`],
//! and the [`EdgeWatermarks`] publish grid the bounded-lag scheduler
//! reads instead of a barrier.
//!
//! Two transport layers share the same inboxes:
//!
//! * [`Router`] is the perfect wire: it hands envelopes (or whole
//!   batches of them) to the inbox of the worker owning the destination
//!   process, never losing or delaying anything.
//! * [`FaultyRouter`] layers the substrate-neutral network fault model
//!   (`da_core::topology::NetworkModel`: default channel, per-link
//!   topology overrides, partition schedule, scripted drops) on top: a
//!   send crossing an active partition cut is dropped outright (a pure
//!   decision — no randomness), a send matching a scripted drop for its
//!   per-tick occurrence on the edge is likewise dropped draw-free
//!   (this is how model-checker counterexamples replay on the live
//!   runtime), every other send's fate — lost, or delivered after a
//!   sampled latency — is drawn from a stateless RNG keyed by
//!   `(edge, tick, occurrence)` on its link's channel, and survivors
//!   are coalesced per destination worker so one tick costs at most one
//!   channel send per worker pair.
//!
//! A batch handed to an inbox is only *visible* to the scheduler once
//! the sending worker bumps its watermarks: [`EdgeWatermarks::publish`]
//! (a release store per edge) is the transport's "everything through
//! tick `t` is in your inbox" signal, and a receiver's acquire load of
//! its in-edges is what replaces the global tick barrier.

use crossbeam::channel::Sender;
use da_core::channel::{ChannelConfig, EdgeRngs};
use da_core::topology::{NetFate, NetworkModel};
use da_simnet::{FxBuildHasher, ProcessId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One in-flight message on the live transport.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sending process.
    pub from: ProcessId,
    /// Destination process.
    pub to: ProcessId,
    /// Tick during which the message was sent.
    pub sent_tick: u64,
    /// Tick at whose start the message becomes deliverable — always
    /// strictly greater than [`Envelope::sent_tick`], mirroring the
    /// simulator's send-in-round-`n` / deliver-in-round-`n + k` channel
    /// contract (`k = 1` on a perfect channel).
    pub due_tick: u64,
    /// The protocol message.
    pub msg: M,
}

/// What travels through a worker inbox: one envelope, or everything a
/// peer worker sent here during one tick.
///
/// The one-element case stays allocation-free — it is what `Router::send`
/// produces, and what fan-in-of-one batching degenerates to.
#[derive(Debug)]
pub enum Batch<M> {
    /// A single envelope (no heap allocation for the payload).
    One(Envelope<M>),
    /// Every envelope one sending worker coalesced for this inbox during
    /// one tick.
    Many(Vec<Envelope<M>>),
}

impl<M> Batch<M> {
    /// Number of envelopes in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Batch::One(_) => 1,
            Batch::Many(v) => v.len(),
        }
    }

    /// True when the batch holds no envelopes (only possible for an
    /// empty [`Batch::Many`], which the routers never send).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<M> IntoIterator for Batch<M> {
    type Item = Envelope<M>;
    type IntoIter = BatchIter<M>;

    fn into_iter(self) -> Self::IntoIter {
        match self {
            Batch::One(env) => BatchIter::One(Some(env)),
            Batch::Many(v) => BatchIter::Many(v.into_iter()),
        }
    }
}

/// Iterator over a [`Batch`]'s envelopes (the one-envelope case stays
/// allocation-free here too).
#[derive(Debug)]
pub enum BatchIter<M> {
    /// Draining a [`Batch::One`].
    One(Option<Envelope<M>>),
    /// Draining a [`Batch::Many`].
    Many(std::vec::IntoIter<Envelope<M>>),
}

impl<M> Iterator for BatchIter<M> {
    type Item = Envelope<M>;

    fn next(&mut self) -> Option<Envelope<M>> {
        match self {
            BatchIter::One(env) => env.take(),
            BatchIter::Many(iter) => iter.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            BatchIter::One(env) => {
                let n = usize::from(env.is_some());
                (n, Some(n))
            }
            BatchIter::Many(iter) => iter.size_hint(),
        }
    }
}

/// Routes envelopes to the inbox of the worker owning the destination.
///
/// Processes are striped across workers (`worker = pid mod workers`), so
/// routing is a single index computation — no lookup table, no lock.
/// Every worker holds a clone; the router is the only way messages move
/// between threads.
///
/// ```
/// use crossbeam::channel;
/// use da_runtime::{Envelope, Router};
/// use da_simnet::ProcessId;
///
/// let (tx0, rx0) = channel::unbounded();
/// let (tx1, rx1) = channel::unbounded();
/// let router = Router::new(vec![tx0, tx1]);
/// assert_eq!(router.worker_of(ProcessId(5)), 1, "pid mod workers");
/// router.send(Envelope {
///     from: ProcessId(0),
///     to: ProcessId(5),
///     sent_tick: 0,
///     due_tick: 1,
///     msg: "hi",
/// });
/// assert_eq!(rx1.recv().unwrap().len(), 1);
/// assert!(rx0.is_empty());
/// ```
#[derive(Debug)]
pub struct Router<M> {
    inboxes: Vec<Sender<Batch<M>>>,
}

impl<M> Clone for Router<M> {
    fn clone(&self) -> Self {
        Router {
            inboxes: self.inboxes.clone(),
        }
    }
}

impl<M> Router<M> {
    /// Builds a router over one inbox sender per worker.
    #[must_use]
    pub fn new(inboxes: Vec<Sender<Batch<M>>>) -> Self {
        assert!(!inboxes.is_empty(), "a router needs at least one worker");
        Router { inboxes }
    }

    /// Number of workers behind this router.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inboxes.len()
    }

    /// The worker owning `pid`.
    #[must_use]
    pub fn worker_of(&self, pid: ProcessId) -> usize {
        pid.index() % self.inboxes.len()
    }

    /// Hands one envelope to the owning worker's inbox. Returns `false`
    /// when that worker has already shut down (the message is dropped,
    /// like a send to a crashed process).
    pub fn send(&self, envelope: Envelope<M>) -> bool {
        let worker = self.worker_of(envelope.to);
        self.inboxes[worker].send(Batch::One(envelope)).is_ok()
    }

    /// Hands a whole per-tick batch to `worker`'s inbox in one channel
    /// operation — the amortisation the gossip fanout lives off (many
    /// small same-destination sends per tick). Returns `false` when the
    /// worker has already shut down.
    ///
    /// # Panics
    ///
    /// Panics when `worker` is out of range.
    pub fn send_batch(&self, worker: usize, batch: Vec<Envelope<M>>) -> bool {
        debug_assert!(!batch.is_empty(), "empty batches are never sent");
        self.inboxes[worker].send(Batch::Many(batch)).is_ok()
    }
}

/// The fate [`FaultyRouter::send`] reports for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// The message survived the channel and is queued for its
    /// destination worker (delivered at `due_tick`).
    Queued {
        /// Tick at whose start the message becomes deliverable.
        due_tick: u64,
    },
    /// The channel lost the message (Bernoulli loss draw failed).
    DroppedChannel,
    /// A partition cut severed the sender's node from the receiver's
    /// node at the send tick (a pure schedule lookup — no randomness
    /// was consumed).
    DroppedPartitioned,
}

/// What one [`FaultyRouter::flush`] moved and lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Channel operations performed (≤ one per destination worker).
    pub batches: u64,
    /// Envelopes handed over across all batches.
    pub envelopes: u64,
    /// Envelopes lost because their destination worker had already shut
    /// down.
    pub dropped_closed: u64,
}

/// A [`Router`] behind an unreliable network: drops and delays
/// envelopes according to a [`NetworkModel`] (default channel, per-link
/// topology overrides, partition schedule), and coalesces the survivors
/// of each tick into one batch per destination worker. A bare
/// [`ChannelConfig`] converts into the uniform model, so the common
/// case reads exactly as before.
///
/// Partition cuts are decided from the schedule alone — a pure function
/// of the two placements and the send tick, consuming zero randomness —
/// so both substrates sever the same sends. Loss and latency draws come
/// from `da_core`'s stateless [`EdgeRngs`]: each send's RNG is keyed by
/// `(edge, send tick, within-tick occurrence)`, so the fate of "the
/// k-th message from process 3 to process 9 in tick t" depends on
/// neither worker striping *nor* the edge's prior traffic — zero
/// resident RNG state per edge. A perfect configuration
/// ([`NetworkModel::is_perfect`]) takes a draw-free fast path and is
/// byte-for-byte equivalent to the plain [`Router`].
///
/// Each worker owns its own `FaultyRouter` (wrapping a clone of the
/// shared [`Router`]); since a process is owned by exactly one worker,
/// the per-tick occurrence counters never race.
///
/// ```
/// use crossbeam::channel;
/// use da_core::channel::ChannelConfig;
/// use da_runtime::{FaultyRouter, Router, SendFate};
/// use da_simnet::ProcessId;
///
/// let (tx, rx) = channel::unbounded();
/// let router = Router::new(vec![tx]);
/// let mut faulty = FaultyRouter::new(router, ChannelConfig::reliable(), 7);
///
/// // Two sends in tick 0 coalesce into one channel operation.
/// faulty.send(ProcessId(0), ProcessId(1), 0, "a");
/// faulty.send(ProcessId(0), ProcessId(1), 0, "b");
/// let report = faulty.flush();
/// assert_eq!((report.batches, report.envelopes), (1, 2));
/// assert_eq!(rx.recv().unwrap().len(), 2);
///
/// // A fully lossy channel drops everything before it reaches the wire.
/// let (tx, _rx) = channel::unbounded::<da_runtime::Batch<&str>>();
/// let black_hole = ChannelConfig::reliable().with_success_probability(0.0);
/// let mut faulty = FaultyRouter::new(Router::new(vec![tx]), black_hole, 7);
/// let fate = faulty.send(ProcessId(0), ProcessId(1), 0, "gone");
/// assert_eq!(fate, SendFate::DroppedChannel);
/// assert_eq!(faulty.flush().envelopes, 0);
/// ```
#[derive(Debug)]
pub struct FaultyRouter<M> {
    router: Router<M>,
    network: NetworkModel,
    /// `network.is_perfect()`, cached at construction so the reliable
    /// hot path costs one branch instead of a model walk per send.
    perfect: bool,
    rngs: EdgeRngs,
    /// Per-destination-worker coalescing buffers, flushed once per tick.
    slots: Vec<Vec<Envelope<M>>>,
    /// Per-edge send counters for the tick in `occ_tick`, giving each
    /// send its occurrence index — the counter half of the stateless
    /// `(edge, tick, occurrence)` draw key, and the occurrence scripted
    /// drops match on. The perfect fast path never touches it; every
    /// imperfect send needs it (the occurrence disambiguates same-edge
    /// sends within one tick). `clear()` at tick boundaries retains the
    /// allocation, so the map's footprint is bounded by the edges
    /// touched in the *busiest single tick*, not the edges ever used. A
    /// worker sends sequentially and owns its sources, so the count per
    /// edge is deterministic.
    occurrences: HashMap<(ProcessId, ProcessId), u32, FxBuildHasher>,
    /// Tick the occurrence counters belong to; counters reset when a
    /// send arrives for a later tick.
    occ_tick: u64,
}

impl<M> FaultyRouter<M> {
    /// Wraps `router` with the given network model (a bare
    /// [`ChannelConfig`] converts into the uniform model); `master_seed`
    /// roots the per-edge RNG streams (use the runtime's configured seed
    /// so live fault draws are reproducible).
    #[must_use]
    pub fn new(router: Router<M>, network: impl Into<NetworkModel>, master_seed: u64) -> Self {
        let network = network.into();
        let slots = (0..router.workers()).map(|_| Vec::new()).collect();
        FaultyRouter {
            router,
            perfect: network.is_perfect(),
            network,
            rngs: EdgeRngs::new(master_seed),
            slots,
            occurrences: HashMap::default(),
            occ_tick: 0,
        }
    }

    /// The network model's default channel (the whole model in the
    /// uniform case).
    #[must_use]
    pub fn channel(&self) -> &ChannelConfig {
        &self.network.channel
    }

    /// The full network model this router applies.
    #[must_use]
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Number of workers behind the wrapped router.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.router.workers()
    }

    /// Routes one message through the unreliable network: checks the
    /// partition schedule (pure, draw-free), then any scripted drop for
    /// this send's per-tick occurrence on the edge (pure), then samples
    /// the surviving send's fate from a stateless RNG keyed by
    /// `(edge, tick, occurrence)` using its link's channel, and, if it
    /// survives, buffers it for the destination worker until
    /// [`FaultyRouter::flush`].
    pub fn send(&mut self, from: ProcessId, to: ProcessId, sent_tick: u64, msg: M) -> SendFate {
        let fate = if self.perfect {
            // Draw-free fast path: no occurrence counting, no seed
            // derivation on the hot path of a reliable runtime.
            NetFate::Deliver { latency: 1 }
        } else {
            if sent_tick != self.occ_tick {
                // clear() keeps the allocation, so steady-state ticks
                // reuse the same table.
                self.occurrences.clear();
                self.occ_tick = sent_tick;
            }
            let slot = self.occurrences.entry((from, to)).or_insert(0);
            let occurrence = *slot;
            *slot += 1;
            let mut rng = self.rngs.draw_rng(
                u64::from(from.0),
                u64::from(to.0),
                sent_tick,
                u64::from(occurrence),
            );
            self.network
                .decide_fate(from, to, sent_tick, occurrence, &mut rng)
        };
        match fate {
            NetFate::Severed => SendFate::DroppedPartitioned,
            NetFate::Lost => SendFate::DroppedChannel,
            NetFate::Deliver { latency } => {
                let due_tick = sent_tick + latency;
                let worker = self.router.worker_of(to);
                self.slots[worker].push(Envelope {
                    from,
                    to,
                    sent_tick,
                    due_tick,
                    msg,
                });
                SendFate::Queued { due_tick }
            }
        }
    }

    /// Hands every buffered envelope to its destination worker — one
    /// channel operation per non-empty slot. Call once per tick, before
    /// acking the scheduler barrier, so the batch is in the inbox before
    /// any worker starts the next tick.
    pub fn flush(&mut self) -> FlushReport {
        let mut report = FlushReport::default();
        for (worker, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_empty() {
                continue;
            }
            let batch = std::mem::take(slot);
            let count = batch.len() as u64;
            report.batches += 1;
            if self.router.send_batch(worker, batch) {
                report.envelopes += count;
            } else {
                report.dropped_closed += count;
            }
        }
        report
    }
}

/// One cache line of watermark cells. Rows of the grid start on line
/// boundaries, so two *senders'* rows never share a line — the only
/// writer of a line is its row's sender, and false sharing between
/// writers is impossible. Within a line the 8 cells belong to 8
/// receivers of the same sender; a receiver's acquire load may share
/// the line with 7 sibling readers, but read-shared lines cost nothing.
///
/// Compared to the earlier one-padded-atomic-per-cell layout (64 bytes
/// per cell, `workers² × 64` bytes total), this stores 8 cells per line:
/// ~`workers² × 8` bytes for wide pools — the difference between 256 KB
/// and 2 MB at 64 workers — with identical ordering semantics.
#[derive(Debug, Default)]
#[repr(align(64))]
struct WatermarkLine([AtomicU64; CELLS_PER_LINE]);

/// Watermark cells per 64-byte cache line.
const CELLS_PER_LINE: usize = 8;

/// The per-edge publish watermarks that replace the global tick barrier.
///
/// Entry `(sender, receiver)` counts how many ticks `sender` has fully
/// *published* toward `receiver`: after flushing tick `t`'s coalesced
/// batches, a sender stores `t + 1` on each of its out-edges (release),
/// promising "every envelope I will ever hand you from ticks `0..=t` is
/// already in your inbox". A receiver that wants to execute tick `n`
/// acquires its in-edges and waits until each shows at least
/// `n + 1 − lag` published ticks, where `lag` is the scheduler's
/// effective drift bound (`RuntimeConfig::effective_lag`): anything a
/// peer sends later is due strictly after `n`, so no delivery can be
/// missed and no barrier is needed.
///
/// ```
/// use da_runtime::EdgeWatermarks;
///
/// let marks = EdgeWatermarks::new(3);
/// assert!(marks.all_published(1, 0), "tick 0 needs nothing published");
/// marks.publish(0, 1); // worker 0 flushed tick 0 on every out-edge
/// marks.publish(2, 1);
/// assert!(marks.all_published(1, 1), "both peers published tick 0");
/// assert!(!marks.all_published(0, 1), "worker 2 still waits on worker 1");
/// assert_eq!(marks.published(0, 1), 1);
/// ```
#[derive(Debug)]
pub struct EdgeWatermarks {
    workers: usize,
    /// Cache lines per sender row (`⌈workers / CELLS_PER_LINE⌉`).
    lines_per_row: usize,
    /// Row-major `(sender, receiver)` grid, 8 cells per line.
    marks: Vec<WatermarkLine>,
}

impl EdgeWatermarks {
    /// An all-zero grid (nothing published) over a `workers`-wide pool.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let lines_per_row = workers.div_ceil(CELLS_PER_LINE);
        EdgeWatermarks {
            workers,
            lines_per_row,
            marks: (0..workers * lines_per_row)
                .map(|_| WatermarkLine::default())
                .collect(),
        }
    }

    /// Number of workers the grid spans.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn cell(&self, sender: usize, receiver: usize) -> &AtomicU64 {
        let line = sender * self.lines_per_row + receiver / CELLS_PER_LINE;
        &self.marks[line].0[receiver % CELLS_PER_LINE]
    }

    /// Records that `sender` has flushed every outbound batch of ticks
    /// `0..ticks` on every out-edge. Release stores: a receiver that
    /// acquires the new value also sees the flushed batches in its
    /// inbox.
    ///
    /// # Panics
    ///
    /// Panics when `sender` is out of range.
    pub fn publish(&self, sender: usize, ticks: u64) {
        assert!(sender < self.workers, "sender {sender} out of range");
        for receiver in 0..self.workers {
            self.cell(sender, receiver).store(ticks, Ordering::Release);
        }
    }

    /// How many ticks `sender` has published toward `receiver`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    #[must_use]
    pub fn published(&self, sender: usize, receiver: usize) -> u64 {
        assert!(sender < self.workers && receiver < self.workers);
        self.cell(sender, receiver).load(Ordering::Acquire)
    }

    /// True when every *peer* of `receiver` has published at least
    /// `ticks` ticks toward it (a worker never waits on itself — its own
    /// output is flushed before it could matter).
    ///
    /// # Panics
    ///
    /// Panics when `receiver` is out of range.
    #[must_use]
    pub fn all_published(&self, receiver: usize, ticks: u64) -> bool {
        assert!(receiver < self.workers, "receiver {receiver} out of range");
        (0..self.workers).all(|sender| {
            sender == receiver || self.cell(sender, receiver).load(Ordering::Acquire) >= ticks
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;
    use da_core::channel::Latency;

    fn env(to: u32) -> Envelope<u8> {
        Envelope {
            from: ProcessId(0),
            to: ProcessId(to),
            sent_tick: 0,
            due_tick: 1,
            msg: 1,
        }
    }

    #[test]
    fn routes_by_pid_stripe() {
        let (tx0, rx0) = channel::unbounded();
        let (tx1, rx1) = channel::unbounded();
        let router = Router::new(vec![tx0, tx1]);
        assert_eq!(router.workers(), 2);
        assert!(router.send(env(4)));
        assert!(router.send(env(5)));
        assert!(router.send(env(7)));
        assert_eq!(rx0.len(), 1, "pid 4 → worker 0");
        assert_eq!(rx1.len(), 2, "pids 5 and 7 → worker 1");
        let first = rx0.recv().unwrap().into_iter().next().unwrap();
        assert_eq!(first.to, ProcessId(4));
    }

    #[test]
    fn send_to_gone_worker_reports_drop() {
        let (tx, rx) = channel::unbounded::<Batch<u8>>();
        let router = Router::new(vec![tx]);
        drop(rx);
        assert!(!router.send(env(0)));
    }

    #[test]
    fn batch_iterates_both_shapes() {
        let one = Batch::One(env(0));
        assert_eq!(one.len(), 1);
        assert!(!one.is_empty());
        assert_eq!(one.into_iter().count(), 1);
        let many = Batch::Many(vec![env(0), env(1)]);
        assert_eq!(many.len(), 2);
        assert_eq!(many.into_iter().count(), 2);
    }

    /// Satellite requirement: under a perfect channel config the faulty
    /// path must produce the byte-for-byte event set of the plain
    /// [`Router`] — same envelopes, same fields, same per-destination
    /// order.
    #[test]
    fn perfect_faulty_router_matches_plain_router_byte_for_byte() {
        let sends: Vec<(u32, u32, u64, u8)> = vec![
            (0, 3, 0, 10),
            (0, 4, 0, 11),
            (2, 3, 0, 12),
            (0, 3, 1, 13),
            (4, 1, 1, 14),
            (2, 0, 2, 15),
        ];

        let collect = |batches: Vec<Batch<u8>>| -> Vec<(u32, u32, u64, u64, u8)> {
            batches
                .into_iter()
                .flatten()
                .map(|e| (e.from.0, e.to.0, e.sent_tick, e.due_tick, e.msg))
                .collect()
        };

        // Plain router, one channel send per envelope.
        let (tx0, rx0) = channel::unbounded();
        let (tx1, rx1) = channel::unbounded();
        let plain = Router::new(vec![tx0, tx1]);
        for &(from, to, tick, msg) in &sends {
            plain.send(Envelope {
                from: ProcessId(from),
                to: ProcessId(to),
                sent_tick: tick,
                due_tick: tick + 1,
                msg,
            });
        }
        drop(plain);
        let plain_w0 = collect(rx0.try_iter().collect());
        let plain_w1 = collect(rx1.try_iter().collect());

        // Faulty router with the zero-latency perfect config, flushed
        // at each tick boundary like the worker loop does.
        let (tx0, rx0) = channel::unbounded();
        let (tx1, rx1) = channel::unbounded();
        let mut faulty = FaultyRouter::new(
            Router::new(vec![tx0, tx1]),
            ChannelConfig::reliable().with_latency(Latency::Fixed(1)),
            99,
        );
        let mut last_tick = 0;
        for &(from, to, tick, msg) in &sends {
            if tick != last_tick {
                faulty.flush();
                last_tick = tick;
            }
            let fate = faulty.send(ProcessId(from), ProcessId(to), tick, msg);
            assert_eq!(fate, SendFate::Queued { due_tick: tick + 1 });
        }
        let report = faulty.flush();
        assert_eq!(report.dropped_closed, 0);
        drop(faulty);
        let faulty_w0 = collect(rx0.try_iter().collect());
        let faulty_w1 = collect(rx1.try_iter().collect());

        assert_eq!(plain_w0, faulty_w0);
        assert_eq!(plain_w1, faulty_w1);
    }

    /// A model-checker counterexample replays on the live transport: a
    /// scripted drop kills exactly the named per-tick occurrence on its
    /// edge, draw-free, and every other send on a reliable channel
    /// still goes through.
    #[test]
    fn scripted_drop_kills_exact_occurrence_on_live_router() {
        use da_core::topology::{DropSchedule, ScriptedDrop};
        let network =
            NetworkModel::uniform(ChannelConfig::reliable().with_latency(Latency::Fixed(1)))
                .with_drops(DropSchedule::none().with_drop(ScriptedDrop {
                    tick: 5,
                    from: ProcessId(0),
                    to: ProcessId(1),
                    occurrence: 1,
                }));
        let (tx, rx) = channel::unbounded::<Batch<u8>>();
        let mut faulty = FaultyRouter::new(Router::new(vec![tx]), network, 11);

        // Tick 5, edge 0 → 1: only the second send dies.
        let fates: Vec<SendFate> = (0..3)
            .map(|i| faulty.send(ProcessId(0), ProcessId(1), 5, i))
            .collect();
        assert_eq!(
            fates,
            vec![
                SendFate::Queued { due_tick: 6 },
                SendFate::DroppedChannel,
                SendFate::Queued { due_tick: 6 },
            ]
        );
        // Same tick, different edge: untouched.
        assert_eq!(
            faulty.send(ProcessId(2), ProcessId(1), 5, 9),
            SendFate::Queued { due_tick: 6 }
        );
        // Next tick, same edge and occurrence: counters reset, the
        // script names tick 5 only, so everything goes through.
        let fates: Vec<SendFate> = (0..3)
            .map(|i| faulty.send(ProcessId(0), ProcessId(1), 6, i))
            .collect();
        assert!(fates
            .iter()
            .all(|f| matches!(f, SendFate::Queued { due_tick: 7 })));
        faulty.flush();
        let delivered: usize = rx.try_iter().map(|b| b.len()).sum();
        assert_eq!(delivered, 6, "3 sends survived of 4 at tick 5, plus 3 at 6");
    }

    #[test]
    fn flush_coalesces_per_destination_worker() {
        let (tx0, rx0) = channel::unbounded::<Batch<u8>>();
        let (tx1, rx1) = channel::unbounded::<Batch<u8>>();
        let mut faulty =
            FaultyRouter::new(Router::new(vec![tx0, tx1]), ChannelConfig::reliable(), 1);
        for to in [0u32, 1, 2, 3, 4, 5] {
            faulty.send(ProcessId(9), ProcessId(to), 0, to as u8);
        }
        let report = faulty.flush();
        assert_eq!(report.batches, 2, "one channel op per destination worker");
        assert_eq!(report.envelopes, 6);
        assert_eq!(rx0.len(), 1, "worker 0 got one batch");
        assert_eq!(rx1.len(), 1, "worker 1 got one batch");
        assert_eq!(rx0.recv().unwrap().len(), 3);
        assert_eq!(rx1.recv().unwrap().len(), 3);
        // Nothing buffered afterwards: a second flush is a no-op.
        assert_eq!(faulty.flush(), FlushReport::default());
    }

    #[test]
    fn lossy_channel_drops_roughly_fraction() {
        let (tx, rx) = channel::unbounded::<Batch<u8>>();
        let mut faulty = FaultyRouter::new(
            Router::new(vec![tx]),
            ChannelConfig::reliable().with_success_probability(0.5),
            5,
        );
        let mut dropped = 0u64;
        for i in 0..1000u64 {
            // Spread over many edges so several streams are exercised.
            let from = ProcessId((i % 10) as u32);
            if faulty.send(from, ProcessId(((i / 10) % 7) as u32), i, 0) == SendFate::DroppedChannel
            {
                dropped += 1;
            }
            faulty.flush();
        }
        assert!(
            (350..650).contains(&dropped),
            "dropped {dropped} of 1000, expected ≈ half"
        );
        drop(faulty);
        let arrived: usize = rx.try_iter().map(|b| b.len()).sum();
        assert_eq!(arrived as u64 + dropped, 1000);
    }

    #[test]
    fn latency_sampling_stamps_due_ticks_in_bounds() {
        let (tx, rx) = channel::unbounded::<Batch<u8>>();
        let mut faulty = FaultyRouter::new(
            Router::new(vec![tx]),
            ChannelConfig::reliable().with_latency(Latency::UniformRounds { min: 2, max: 4 }),
            3,
        );
        for _ in 0..200 {
            let fate = faulty.send(ProcessId(0), ProcessId(0), 10, 0);
            match fate {
                SendFate::Queued { due_tick } => assert!((12..=14).contains(&due_tick)),
                SendFate::DroppedChannel => panic!("reliable channel lost a message"),
                SendFate::DroppedPartitioned => panic!("no partition is scripted"),
            }
        }
        faulty.flush();
        drop(faulty);
        for batch in rx.try_iter() {
            for envelope in batch {
                assert_eq!(envelope.sent_tick, 10);
                assert!((12..=14).contains(&envelope.due_tick));
            }
        }
    }

    #[test]
    fn fault_draws_are_reproducible_per_edge() {
        let run = || {
            let (tx, _rx) = channel::unbounded::<Batch<u8>>();
            let mut faulty =
                FaultyRouter::new(Router::new(vec![tx]), ChannelConfig::paper_default(), 42);
            (0..64u64)
                .map(|i| faulty.send(ProcessId(1), ProcessId(2), i, 0) == SendFate::DroppedChannel)
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run(), "same seed, same edge, same fates");
    }

    #[test]
    fn same_tick_sends_draw_independent_fates_per_occurrence() {
        // Many sends on one edge within one tick: each gets its own
        // occurrence-keyed draw, so fates are not all correlated copies
        // of the first.
        let (tx, _rx) = channel::unbounded::<Batch<u8>>();
        let mut faulty = FaultyRouter::new(
            Router::new(vec![tx]),
            ChannelConfig::reliable().with_success_probability(0.5),
            42,
        );
        let fates: Vec<bool> = (0..64)
            .map(|i| faulty.send(ProcessId(1), ProcessId(2), 7, i) == SendFate::DroppedChannel)
            .collect();
        let dropped = fates.iter().filter(|&&d| d).count();
        assert!(
            (10..54).contains(&dropped),
            "dropped {dropped} of 64 same-tick sends; occurrence keying must decorrelate them"
        );

        // And the occurrence counter resets per tick: the k-th send of a
        // tick replays the k-th fate of that tick, deterministically.
        let (tx, _rx) = channel::unbounded::<Batch<u8>>();
        let mut again = FaultyRouter::new(
            Router::new(vec![tx]),
            ChannelConfig::reliable().with_success_probability(0.5),
            42,
        );
        let replay: Vec<bool> = (0..64)
            .map(|i| again.send(ProcessId(1), ProcessId(2), 7, i) == SendFate::DroppedChannel)
            .collect();
        assert_eq!(fates, replay);
    }

    #[test]
    fn partition_cut_severs_then_heals_without_consuming_draws() {
        use da_core::topology::{NetworkModel, NodeId, Partition, PartitionSchedule, Topology};
        let network = |partitions| {
            NetworkModel::uniform(ChannelConfig::paper_default())
                .with_topology(
                    Topology::with_nodes(["a", "b"]).with_placement(ProcessId(1), NodeId(1)),
                )
                .with_partitions(partitions)
        };
        let cut = PartitionSchedule::none()
            .with_partition(Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], 10).heal_at(20));

        // Encode each fate latency-relative so runs at different ticks
        // compare: Severed → -2, Lost → -1, Deliver → its latency.
        let run = |partitions: PartitionSchedule| {
            let (tx, _rx) = channel::unbounded::<Batch<u8>>();
            let mut faulty = FaultyRouter::new(Router::new(vec![tx]), network(partitions), 42);
            (0..30u64)
                .map(
                    |tick| match faulty.send(ProcessId(0), ProcessId(1), tick, 0) {
                        SendFate::DroppedPartitioned => -2i64,
                        SendFate::DroppedChannel => -1,
                        SendFate::Queued { due_tick } => (due_tick - tick) as i64,
                    },
                )
                .collect::<Vec<i64>>()
        };
        let severed = run(cut);
        let open = run(PartitionSchedule::none());

        assert!(
            severed[10..20].iter().all(|&f| f == -2),
            "every send inside the window is severed"
        );
        assert_eq!(
            severed[..10],
            open[..10],
            "fates before the cut are untouched"
        );
        // Draws are keyed by (edge, tick, occurrence), not stream
        // position, so post-heal fates are *identical* to the never-cut
        // run at the same ticks — severing a window cannot shift any
        // other send's fate.
        assert_eq!(severed[20..30], open[20..30]);
        assert!(severed[20..].iter().all(|&f| f != -2));
    }

    #[test]
    fn watermarks_gate_per_receiver() {
        let marks = EdgeWatermarks::new(2);
        assert_eq!(marks.workers(), 2);
        assert!(marks.all_published(0, 0));
        assert!(!marks.all_published(0, 1));
        marks.publish(1, 3);
        assert!(marks.all_published(0, 3));
        assert!(!marks.all_published(0, 4));
        assert_eq!(marks.published(1, 0), 3);
        // Worker 1 still waits on worker 0's publishes.
        assert!(!marks.all_published(1, 1));
        assert_eq!(marks.published(0, 1), 0);
    }

    #[test]
    fn single_worker_grid_never_waits() {
        let marks = EdgeWatermarks::new(1);
        assert!(marks.all_published(0, u64::MAX));
    }

    #[test]
    fn wide_grid_keeps_cells_distinct_across_line_packing() {
        // 37 workers: rows span 5 cache lines with a ragged tail, so
        // every packing edge case (first cell, mid-line, line boundary,
        // last partial line) is exercised.
        let workers = 37;
        let marks = EdgeWatermarks::new(workers);
        for sender in 0..workers {
            marks.publish(sender, sender as u64 + 1);
        }
        for sender in 0..workers {
            for receiver in 0..workers {
                assert_eq!(marks.published(sender, receiver), sender as u64 + 1);
            }
        }
        assert!(marks.all_published(0, 1), "every peer published ≥ 1");
        assert!(!marks.all_published(36, 2), "sender 0 only published 1");
    }

    #[test]
    fn watermarks_synchronise_with_inbox_contents() {
        // The release/acquire contract: once a receiver observes the
        // watermark, the flushed batch must already be in its inbox.
        let (tx, rx) = channel::unbounded::<Batch<u64>>();
        let router = Router::new(vec![tx.clone(), tx]);
        let marks = std::sync::Arc::new(EdgeWatermarks::new(2));
        let sender_marks = std::sync::Arc::clone(&marks);
        let handle = std::thread::spawn(move || {
            for tick in 0..200u64 {
                router.send(Envelope {
                    from: ProcessId(1),
                    to: ProcessId(0),
                    sent_tick: tick,
                    due_tick: tick + 1,
                    msg: tick,
                });
                sender_marks.publish(1, tick + 1);
            }
        });
        let mut seen = 0u64;
        while seen < 200 {
            if marks.published(1, 0) > seen {
                let batch = rx.try_recv().expect("published batch must be visible");
                seen += batch.len() as u64;
            } else {
                std::thread::yield_now();
            }
        }
        handle.join().unwrap();
    }

    #[test]
    fn flush_counts_closed_workers() {
        let (tx, rx) = channel::unbounded::<Batch<u8>>();
        let mut faulty = FaultyRouter::new(Router::new(vec![tx]), ChannelConfig::reliable(), 0);
        faulty.send(ProcessId(0), ProcessId(0), 0, 1);
        drop(rx);
        let report = faulty.flush();
        assert_eq!(report.dropped_closed, 1);
        assert_eq!(report.envelopes, 0);
    }
}
