//! The in-memory transport: envelopes, per-tick batches, the lock-free
//! lane-matrix data plane ([`Hub`] / [`EdgeInbox`] / [`BatchPool`]), the
//! fault-injecting [`FaultyRouter`], and the [`EdgeWatermarks`] publish
//! grid the bounded-lag scheduler reads instead of a barrier.
//!
//! ## Data plane: the lane matrix
//!
//! Batches move over a matrix of bounded lock-free SPSC rings
//! (`crossbeam::queue`), one *data lane* per (producer worker, consumer
//! worker) pair plus one *return lane* per pair flowing the other way:
//!
//! * [`Hub`] is worker `p`'s producer row: `send`/`send_batch` push onto
//!   the data lane addressed to the destination's worker — one `Release`
//!   store, no lock, no contention with any other producer. The hub also
//!   owns a [`BatchPool`] recycling `Batch::Many` buffers that come back
//!   over the return lanes, so steady-state ticks allocate nothing.
//! * [`EdgeInbox`] is worker `c`'s consumer column:
//!   [`sweep`](EdgeInbox::sweep) drains every incoming lane once, **in
//!   producer worker-id order**, handing each envelope to the caller
//!   tagged with its producer lane; drained `Batch::Many` buffers go
//!   straight back to their owning producer's pool over the return lane.
//! * [`FaultyRouter`] layers the substrate-neutral network fault model
//!   (`da_core::topology::NetworkModel`: default channel, per-link
//!   topology overrides, partition schedule, scripted drops) on top of a
//!   hub: a send crossing an active partition cut is dropped outright (a
//!   pure decision — no randomness), a send matching a scripted drop for
//!   its per-tick occurrence on the edge is likewise dropped draw-free
//!   (this is how model-checker counterexamples replay on the live
//!   runtime), every other send's fate — lost, or delivered after a
//!   sampled latency — is drawn from a stateless RNG keyed by
//!   `(edge, tick, occurrence)` on its link's channel, and survivors are
//!   coalesced per destination worker so one tick costs at most one lane
//!   push per worker pair.
//!
//! Control messages (`Control::*`, worker reports) stay on the mpsc
//! channels — they are rare, and blocking `recv` is exactly right for a
//! parked worker. Only the per-tick batch traffic rides the lanes.
//!
//! Determinism: a lane is FIFO, each worker's send order within a tick
//! is deterministic (pid-stripe iteration), and fate draws are stateless
//! per `(edge, tick, occurrence)` — so the sequence of envelopes worker
//! `c` observes from lane `p` is a pure function of the config, and
//! sweeping lanes in worker-id order makes the merged delivery order one
//! too. No RNG state rides the transport (PR 9), which is what makes the
//! lock-free swap safe.
//!
//! A batch pushed onto a lane is only *visible* to the scheduler once
//! the sending worker bumps its watermarks: [`EdgeWatermarks::publish`]
//! (a release store per edge) is the transport's "everything through
//! tick `t` is in your lanes" signal, and a receiver's acquire load of
//! its in-edges is what replaces the global tick barrier.

use crossbeam::queue::{self, PushError};
use da_core::channel::{ChannelConfig, EdgeRngs};
use da_core::topology::{NetFate, NetworkModel};
use da_simnet::{FxBuildHasher, ProcessId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// One in-flight message on the live transport.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sending process.
    pub from: ProcessId,
    /// Destination process.
    pub to: ProcessId,
    /// Tick during which the message was sent.
    pub sent_tick: u64,
    /// Tick at whose start the message becomes deliverable — always
    /// strictly greater than [`Envelope::sent_tick`], mirroring the
    /// simulator's send-in-round-`n` / deliver-in-round-`n + k` channel
    /// contract (`k = 1` on a perfect channel).
    pub due_tick: u64,
    /// The protocol message.
    pub msg: M,
}

/// What travels through a data lane: one envelope, or everything a
/// peer worker sent here during one tick.
///
/// The one-element case stays allocation-free — it is what `Hub::send`
/// produces, and what fan-in-of-one batching degenerates to.
#[derive(Debug)]
pub enum Batch<M> {
    /// A single envelope (no heap allocation for the payload).
    One(Envelope<M>),
    /// Every envelope one sending worker coalesced for this inbox during
    /// one tick.
    Many(Vec<Envelope<M>>),
}

impl<M> Batch<M> {
    /// Number of envelopes in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Batch::One(_) => 1,
            Batch::Many(v) => v.len(),
        }
    }

    /// True when the batch holds no envelopes (only possible for an
    /// empty [`Batch::Many`], which the data plane never sends).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<M> IntoIterator for Batch<M> {
    type Item = Envelope<M>;
    type IntoIter = BatchIter<M>;

    fn into_iter(self) -> Self::IntoIter {
        match self {
            Batch::One(env) => BatchIter::One(Some(env)),
            Batch::Many(v) => BatchIter::Many(v.into_iter()),
        }
    }
}

/// Iterator over a [`Batch`]'s envelopes (the one-envelope case stays
/// allocation-free here too).
#[derive(Debug)]
pub enum BatchIter<M> {
    /// Draining a [`Batch::One`].
    One(Option<Envelope<M>>),
    /// Draining a [`Batch::Many`].
    Many(std::vec::IntoIter<Envelope<M>>),
}

impl<M> Iterator for BatchIter<M> {
    type Item = Envelope<M>;

    fn next(&mut self) -> Option<Envelope<M>> {
        match self {
            BatchIter::One(env) => env.take(),
            BatchIter::Many(iter) => iter.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            BatchIter::One(env) => {
                let n = usize::from(env.is_some());
                (n, Some(n))
            }
            BatchIter::Many(iter) => iter.size_hint(),
        }
    }
}

/// Typed error for a refused hand-off: the destination worker's lanes
/// are closed (it already shut down), so the envelopes were dropped.
/// Feed [`LaneClosed::envelopes`] into the ledger (`rt.dropped_closed`)
/// — nothing else will account for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneClosed {
    /// The destination worker whose lanes are closed.
    pub worker: usize,
    /// Envelopes dropped by the refused hand-off.
    pub envelopes: u64,
}

impl fmt::Display for LaneClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dropped {} envelope(s): worker {}'s lanes are closed",
            self.envelopes, self.worker
        )
    }
}

impl Error for LaneClosed {}

/// Recycles `Batch::Many` buffers between a producer and its consumers.
///
/// Every [`Hub`] owns one. [`BatchPool::take`] hands out an empty
/// buffer, preferring (in order) the local free list, buffers that came
/// back over the return lanes from consumers that drained them, and —
/// only when both are dry — a freshly minted `Vec`. Steady-state ticks
/// cycle a fixed working set of buffers and never touch the allocator;
/// [`BatchPool::minted`] counts the lifetime allocations so tests can
/// assert exactly that.
#[derive(Debug)]
pub struct BatchPool<M> {
    free: Vec<Vec<Envelope<M>>>,
    /// Return lanes, one per consumer worker: emptied buffers flowing
    /// back from the [`EdgeInbox`]es that drained our batches.
    returns: Vec<queue::Consumer<Vec<Envelope<M>>>>,
    minted: u64,
}

impl<M> BatchPool<M> {
    /// Pulls every buffer waiting on the return lanes into the free
    /// list.
    fn reclaim(&mut self) {
        for lane in &mut self.returns {
            while let Some(buf) = lane.pop() {
                debug_assert!(buf.is_empty(), "consumers return drained buffers");
                self.free.push(buf);
            }
        }
    }

    /// An empty buffer: recycled if one is available, minted otherwise.
    pub fn take(&mut self) -> Vec<Envelope<M>> {
        if self.free.is_empty() {
            self.reclaim();
        }
        self.free.pop().unwrap_or_else(|| {
            self.minted += 1;
            Vec::new()
        })
    }

    /// Returns a buffer to the local free list (cleared, capacity kept).
    pub fn put(&mut self, mut buf: Vec<Envelope<M>>) {
        buf.clear();
        self.free.push(buf);
    }

    /// Lifetime count of buffers this pool allocated because nothing
    /// was available to recycle. Flat across steady-state ticks.
    #[must_use]
    pub fn minted(&self) -> u64 {
        self.minted
    }

    /// Buffers currently at rest in this pool (free list plus anything
    /// waiting on the return lanes, which this reclaims first).
    pub fn pooled(&mut self) -> usize {
        self.reclaim();
        self.free.len()
    }
}

/// Worker `p`'s producer row of the lane matrix: one bounded SPSC data
/// lane per destination worker, plus the [`BatchPool`] recycling batch
/// buffers that consumers send back.
///
/// Processes are striped across workers (`worker = pid mod workers`), so
/// routing is a single index computation — no lookup table, no lock.
/// Each worker owns its hub exclusively (`!Clone`; the SPSC halves make
/// cloning meaningless) — the lane matrix is the only way messages move
/// between threads.
///
/// ```
/// use da_runtime::{lane_matrix, Envelope};
/// use da_simnet::ProcessId;
///
/// let (mut hubs, mut inboxes) = lane_matrix(2, 8);
/// assert_eq!(hubs[0].worker_of(ProcessId(5)), 1, "pid mod workers");
/// hubs[0]
///     .send(Envelope {
///         from: ProcessId(0),
///         to: ProcessId(5),
///         sent_tick: 0,
///         due_tick: 1,
///         msg: "hi",
///     })
///     .unwrap();
/// let mut got = Vec::new();
/// inboxes[1].sweep(|lane, env| got.push((lane, env.to)));
/// assert_eq!(got, vec![(0, ProcessId(5))]);
/// ```
#[derive(Debug)]
pub struct Hub<M> {
    worker: usize,
    /// Data lanes, indexed by consumer worker.
    lanes: Vec<queue::Producer<Batch<M>>>,
    pool: BatchPool<M>,
}

/// Builds the full lane matrix for a `workers`-wide pool: `workers²`
/// bounded data lanes (capacity `capacity` batches each) and `workers²`
/// return lanes, split into one [`Hub`] (producer row) and one
/// [`EdgeInbox`] (consumer column) per worker.
///
/// `capacity` bounds the batches in flight per (producer, consumer)
/// pair. Under the bounded-lag scheduler at most `lag + 1` per-tick
/// batches can be unswept on a lane, so `effective_lag + 2` never
/// blocks; standalone users should size for their own push/drain
/// pattern (a full lane makes the next push spin-yield until the
/// consumer sweeps).
///
/// # Panics
/// Panics when `workers` is zero or `capacity` is zero.
#[must_use]
pub fn lane_matrix<M>(workers: usize, capacity: usize) -> (Vec<Hub<M>>, Vec<EdgeInbox<M>>) {
    assert!(workers > 0, "a lane matrix needs at least one worker");
    let mut hub_lanes: Vec<Vec<queue::Producer<Batch<M>>>> =
        (0..workers).map(|_| Vec::with_capacity(workers)).collect();
    let mut inbox_lanes: Vec<Vec<queue::Consumer<Batch<M>>>> =
        (0..workers).map(|_| Vec::with_capacity(workers)).collect();
    let mut return_txs: Vec<Vec<queue::Producer<Vec<Envelope<M>>>>> =
        (0..workers).map(|_| Vec::with_capacity(workers)).collect();
    let mut return_rxs: Vec<Vec<queue::Consumer<Vec<Envelope<M>>>>> =
        (0..workers).map(|_| Vec::with_capacity(workers)).collect();
    for producer in 0..workers {
        for consumer in 0..workers {
            let (tx, rx) = queue::spsc(capacity);
            hub_lanes[producer].push(tx);
            inbox_lanes[consumer].push(rx);
            let (tx, rx) = queue::spsc(capacity);
            return_txs[consumer].push(tx);
            return_rxs[producer].push(rx);
        }
    }
    let hubs = hub_lanes
        .into_iter()
        .zip(return_rxs)
        .enumerate()
        .map(|(worker, (lanes, returns))| Hub {
            worker,
            lanes,
            pool: BatchPool {
                free: Vec::new(),
                returns,
                minted: 0,
            },
        })
        .collect();
    let inboxes = inbox_lanes
        .into_iter()
        .zip(return_txs)
        .enumerate()
        .map(|(worker, (lanes, returns))| EdgeInbox {
            worker,
            lanes,
            returns,
        })
        .collect();
    (hubs, inboxes)
}

impl<M> Hub<M> {
    /// Number of workers behind this hub.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// The producer worker this hub belongs to.
    #[must_use]
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The worker owning `pid`.
    #[must_use]
    pub fn worker_of(&self, pid: ProcessId) -> usize {
        pid.index() % self.lanes.len()
    }

    /// This hub's buffer pool.
    pub fn pool(&mut self) -> &mut BatchPool<M> {
        &mut self.pool
    }

    /// Pushes a batch onto `worker`'s lane, yielding while the lane is
    /// full (the consumer is behind; under the runtime's lag-derived
    /// capacity this cannot happen). `Err` hands the batch back once the
    /// consumer is gone for good.
    fn push(&mut self, worker: usize, mut batch: Batch<M>) -> Result<(), Batch<M>> {
        let lane = &mut self.lanes[worker];
        loop {
            match lane.push(batch) {
                Ok(()) => return Ok(()),
                Err(PushError::Full(b)) => {
                    batch = b;
                    std::thread::yield_now();
                }
                Err(PushError::Disconnected(b)) => return Err(b),
            }
        }
    }

    /// Hands one envelope to the owning worker's lane, lock-free.
    ///
    /// # Errors
    /// [`LaneClosed`] when that worker has already shut down — the
    /// envelope is dropped and must be accounted by the caller.
    #[must_use = "a refused send drops the envelope — account it in the ledger"]
    pub fn send(&mut self, envelope: Envelope<M>) -> Result<(), LaneClosed> {
        let worker = self.worker_of(envelope.to);
        self.push(worker, Batch::One(envelope))
            .map_err(|_| LaneClosed {
                worker,
                envelopes: 1,
            })
    }

    /// Hands a whole per-tick batch to `worker`'s lane in one lock-free
    /// push — the amortisation the gossip fanout lives off (many small
    /// same-destination sends per tick). Returns the envelope count on
    /// success.
    ///
    /// # Errors
    /// [`LaneClosed`] when the worker has already shut down: the
    /// envelopes are dropped (their count rides the error — feed it into
    /// the ledger) and the buffer itself is recycled into the pool.
    ///
    /// # Panics
    /// Panics when `worker` is out of range.
    #[must_use = "a refused hand-off drops the whole batch — feed the count into the ledger"]
    pub fn send_batch(
        &mut self,
        worker: usize,
        batch: Vec<Envelope<M>>,
    ) -> Result<u64, LaneClosed> {
        debug_assert!(!batch.is_empty(), "empty batches are never sent");
        let envelopes = batch.len() as u64;
        match self.push(worker, Batch::Many(batch)) {
            Ok(()) => Ok(envelopes),
            Err(batch) => {
                if let Batch::Many(buf) = batch {
                    self.pool.put(buf);
                }
                Err(LaneClosed { worker, envelopes })
            }
        }
    }
}

/// Worker `c`'s consumer column of the lane matrix: one bounded SPSC
/// data lane per producer worker, swept in worker-id order, plus the
/// return lanes handing drained batch buffers back to their producers.
#[derive(Debug)]
pub struct EdgeInbox<M> {
    worker: usize,
    /// Data lanes, indexed by producer worker.
    lanes: Vec<queue::Consumer<Batch<M>>>,
    /// Return lanes, indexed by producer worker.
    returns: Vec<queue::Producer<Vec<Envelope<M>>>>,
}

impl<M> EdgeInbox<M> {
    /// Number of workers feeding this inbox.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// The consumer worker this inbox belongs to.
    #[must_use]
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Drains every incoming lane once, **in producer worker-id order**,
    /// handing each envelope to `visit` tagged with its producer lane.
    /// Within a lane the order is the producer's send order (SPSC FIFO)
    /// — together that makes the visit sequence deterministic. Drained
    /// `Batch::Many` buffers go back to the owning producer's pool over
    /// the return lane (or are simply freed if that lane is full or
    /// closed — never leaked). Returns the number of batches swept, the
    /// `lane_depth` observability signal.
    pub fn sweep(&mut self, mut visit: impl FnMut(usize, Envelope<M>)) -> u64 {
        let mut batches = 0;
        for (producer, lane) in self.lanes.iter_mut().enumerate() {
            while let Some(batch) = lane.pop() {
                batches += 1;
                match batch {
                    Batch::One(env) => visit(producer, env),
                    Batch::Many(mut buf) => {
                        for env in buf.drain(..) {
                            visit(producer, env);
                        }
                        // A refused return (full lane, gone producer)
                        // just frees the buffer — the pool mints a
                        // replacement when it next runs dry.
                        let _ = self.returns[producer].push(buf);
                    }
                }
            }
        }
        batches
    }

    /// Drains everything still in flight on the incoming lanes,
    /// returning the envelope count — the shutdown accounting path
    /// (`rt.dropped_shutdown`).
    pub fn drain(&mut self) -> u64 {
        let mut envelopes = 0;
        self.sweep(|_, _| envelopes += 1);
        envelopes
    }
}

/// The fate [`FaultyRouter::send`] reports for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// The message survived the channel and is queued for its
    /// destination worker (delivered at `due_tick`).
    Queued {
        /// Tick at whose start the message becomes deliverable.
        due_tick: u64,
    },
    /// The channel lost the message (Bernoulli loss draw failed).
    DroppedChannel,
    /// A partition cut severed the sender's node from the receiver's
    /// node at the send tick (a pure schedule lookup — no randomness
    /// was consumed).
    DroppedPartitioned,
}

/// What one [`FaultyRouter::flush`] moved and lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Lane pushes performed (≤ one per destination worker).
    pub batches: u64,
    /// Envelopes handed over across all batches.
    pub envelopes: u64,
    /// Envelopes lost because their destination worker had already shut
    /// down.
    pub dropped_closed: u64,
}

/// A [`Hub`] behind an unreliable network: drops and delays envelopes
/// according to a [`NetworkModel`] (default channel, per-link topology
/// overrides, partition schedule), and coalesces the survivors of each
/// tick into one batch per destination worker, buffered in pooled
/// buffers that recycle for the whole runtime lifetime. A bare
/// [`ChannelConfig`] converts into the uniform model, so the common case
/// reads exactly as before.
///
/// Partition cuts are decided from the schedule alone — a pure function
/// of the two placements and the send tick, consuming zero randomness —
/// so both substrates sever the same sends. Loss and latency draws come
/// from `da_core`'s stateless [`EdgeRngs`]: each send's RNG is keyed by
/// `(edge, send tick, within-tick occurrence)`, so the fate of "the
/// k-th message from process 3 to process 9 in tick t" depends on
/// neither worker striping *nor* the edge's prior traffic — zero
/// resident RNG state per edge. A perfect configuration
/// ([`NetworkModel::is_perfect`]) takes a draw-free fast path and is
/// byte-for-byte equivalent to sending on the plain [`Hub`].
///
/// Each worker owns its own `FaultyRouter` (wrapping its [`Hub`], its
/// row of the lane matrix); since a process is owned by exactly one
/// worker, the per-tick occurrence counters never race.
///
/// ```
/// use da_core::channel::ChannelConfig;
/// use da_runtime::{lane_matrix, FaultyRouter, SendFate};
/// use da_simnet::ProcessId;
///
/// let (mut hubs, mut inboxes) = lane_matrix(1, 8);
/// let mut faulty = FaultyRouter::new(hubs.remove(0), ChannelConfig::reliable(), 7);
///
/// // Two sends in tick 0 coalesce into one lane push.
/// faulty.send(ProcessId(0), ProcessId(1), 0, "a");
/// faulty.send(ProcessId(0), ProcessId(1), 0, "b");
/// let report = faulty.flush();
/// assert_eq!((report.batches, report.envelopes), (1, 2));
/// let mut seen = 0;
/// inboxes[0].sweep(|_, _| seen += 1);
/// assert_eq!(seen, 2);
///
/// // A fully lossy channel drops everything before it reaches the wire.
/// let (mut hubs, _inboxes) = lane_matrix::<&str>(1, 8);
/// let black_hole = ChannelConfig::reliable().with_success_probability(0.0);
/// let mut faulty = FaultyRouter::new(hubs.remove(0), black_hole, 7);
/// let fate = faulty.send(ProcessId(0), ProcessId(1), 0, "gone");
/// assert_eq!(fate, SendFate::DroppedChannel);
/// assert_eq!(faulty.flush().envelopes, 0);
/// ```
#[derive(Debug)]
pub struct FaultyRouter<M> {
    hub: Hub<M>,
    network: NetworkModel,
    /// `network.is_perfect()`, cached at construction so the reliable
    /// hot path costs one branch instead of a model walk per send.
    perfect: bool,
    rngs: EdgeRngs,
    /// Per-destination-worker coalescing buffers, flushed once per tick.
    /// Refilled from the hub's [`BatchPool`] at flush, so the same
    /// buffers cycle producer → lane → consumer → return lane → producer
    /// for the runtime's whole lifetime.
    slots: Vec<Vec<Envelope<M>>>,
    /// Per-edge send counters for the tick in `occ_tick`, giving each
    /// send its occurrence index — the counter half of the stateless
    /// `(edge, tick, occurrence)` draw key, and the occurrence scripted
    /// drops match on. The perfect fast path never touches it; every
    /// imperfect send needs it (the occurrence disambiguates same-edge
    /// sends within one tick). `clear()` at tick boundaries retains the
    /// allocation, so the map's footprint is bounded by the edges
    /// touched in the *busiest single tick*, not the edges ever used. A
    /// worker sends sequentially and owns its sources, so the count per
    /// edge is deterministic.
    occurrences: HashMap<(ProcessId, ProcessId), u32, FxBuildHasher>,
    /// Tick the occurrence counters belong to; counters reset when a
    /// send arrives for a later tick.
    occ_tick: u64,
}

impl<M> FaultyRouter<M> {
    /// Wraps `hub` with the given network model (a bare
    /// [`ChannelConfig`] converts into the uniform model); `master_seed`
    /// roots the per-edge RNG streams (use the runtime's configured seed
    /// so live fault draws are reproducible).
    #[must_use]
    pub fn new(hub: Hub<M>, network: impl Into<NetworkModel>, master_seed: u64) -> Self {
        let network = network.into();
        let slots = (0..hub.workers()).map(|_| Vec::new()).collect();
        FaultyRouter {
            hub,
            perfect: network.is_perfect(),
            network,
            rngs: EdgeRngs::new(master_seed),
            slots,
            occurrences: HashMap::default(),
            occ_tick: 0,
        }
    }

    /// The network model's default channel (the whole model in the
    /// uniform case).
    #[must_use]
    pub fn channel(&self) -> &ChannelConfig {
        &self.network.channel
    }

    /// The full network model this router applies.
    #[must_use]
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Number of workers behind the wrapped hub.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.hub.workers()
    }

    /// The wrapped hub (for pool access and direct sends in tests).
    pub fn hub(&mut self) -> &mut Hub<M> {
        &mut self.hub
    }

    /// Routes one message through the unreliable network: checks the
    /// partition schedule (pure, draw-free), then any scripted drop for
    /// this send's per-tick occurrence on the edge (pure), then samples
    /// the surviving send's fate from a stateless RNG keyed by
    /// `(edge, tick, occurrence)` using its link's channel, and, if it
    /// survives, buffers it for the destination worker until
    /// [`FaultyRouter::flush`].
    pub fn send(&mut self, from: ProcessId, to: ProcessId, sent_tick: u64, msg: M) -> SendFate {
        let fate = if self.perfect {
            // Draw-free fast path: no occurrence counting, no seed
            // derivation on the hot path of a reliable runtime.
            NetFate::Deliver { latency: 1 }
        } else {
            if sent_tick != self.occ_tick {
                // clear() keeps the allocation, so steady-state ticks
                // reuse the same table.
                self.occurrences.clear();
                self.occ_tick = sent_tick;
            }
            let slot = self.occurrences.entry((from, to)).or_insert(0);
            let occurrence = *slot;
            *slot += 1;
            let mut rng = self.rngs.draw_rng(
                u64::from(from.0),
                u64::from(to.0),
                sent_tick,
                u64::from(occurrence),
            );
            self.network
                .decide_fate(from, to, sent_tick, occurrence, &mut rng)
        };
        match fate {
            NetFate::Severed => SendFate::DroppedPartitioned,
            NetFate::Lost => SendFate::DroppedChannel,
            NetFate::Deliver { latency } => {
                let due_tick = sent_tick + latency;
                let worker = self.hub.worker_of(to);
                self.slots[worker].push(Envelope {
                    from,
                    to,
                    sent_tick,
                    due_tick,
                    msg,
                });
                SendFate::Queued { due_tick }
            }
        }
    }

    /// Hands every buffered envelope to its destination worker — one
    /// lane push per non-empty slot, refilling the slot from the buffer
    /// pool (a single-envelope slot degenerates to `Batch::One` and
    /// keeps its buffer). Call once per tick, before publishing the
    /// watermarks, so the batch is on the lane before any worker starts
    /// the next tick. Closed-lane losses are totalled in
    /// [`FlushReport::dropped_closed`] — the caller feeds that into the
    /// ledger.
    pub fn flush(&mut self) -> FlushReport {
        let mut report = FlushReport::default();
        for worker in 0..self.slots.len() {
            let slot = &mut self.slots[worker];
            match slot.len() {
                0 => continue,
                1 => {
                    // Keep the buffer: a one-envelope batch rides the
                    // lane inline, no hand-off round trip needed.
                    let env = slot.pop().expect("len checked");
                    report.batches += 1;
                    match self.hub.send(env) {
                        Ok(()) => report.envelopes += 1,
                        Err(err) => report.dropped_closed += err.envelopes,
                    }
                }
                _ => {
                    let replacement = self.hub.pool.take();
                    let batch = std::mem::replace(slot, replacement);
                    report.batches += 1;
                    match self.hub.send_batch(worker, batch) {
                        Ok(n) => report.envelopes += n,
                        Err(err) => report.dropped_closed += err.envelopes,
                    }
                }
            }
        }
        report
    }
}

/// One cache line of watermark cells. Rows of the grid start on line
/// boundaries, so two *senders'* rows never share a line — the only
/// writer of a line is its row's sender, and false sharing between
/// writers is impossible. Within a line the 8 cells belong to 8
/// receivers of the same sender; a receiver's acquire load may share
/// the line with 7 sibling readers, but read-shared lines cost nothing.
///
/// Compared to the earlier one-padded-atomic-per-cell layout (64 bytes
/// per cell, `workers² × 64` bytes total), this stores 8 cells per line:
/// ~`workers² × 8` bytes for wide pools — the difference between 256 KB
/// and 2 MB at 64 workers — with identical ordering semantics.
#[derive(Debug, Default)]
#[repr(align(64))]
struct WatermarkLine([AtomicU64; CELLS_PER_LINE]);

/// Watermark cells per 64-byte cache line.
const CELLS_PER_LINE: usize = 8;

/// The per-edge publish watermarks that replace the global tick barrier.
///
/// Entry `(sender, receiver)` counts how many ticks `sender` has fully
/// *published* toward `receiver`: after flushing tick `t`'s coalesced
/// batches, a sender stores `t + 1` on each of its out-edges (release),
/// promising "every envelope I will ever hand you from ticks `0..=t` is
/// already in your lanes". A receiver that wants to execute tick `n`
/// acquires its in-edges and waits until each shows at least
/// `n + 1 − lag` published ticks, where `lag` is the scheduler's
/// effective drift bound (`RuntimeConfig::effective_lag`): anything a
/// peer sends later is due strictly after `n`, so no delivery can be
/// missed and no barrier is needed.
///
/// ```
/// use da_runtime::EdgeWatermarks;
///
/// let marks = EdgeWatermarks::new(3);
/// assert!(marks.all_published(1, 0), "tick 0 needs nothing published");
/// marks.publish(0, 1); // worker 0 flushed tick 0 on every out-edge
/// marks.publish(2, 1);
/// assert!(marks.all_published(1, 1), "both peers published tick 0");
/// assert!(!marks.all_published(0, 1), "worker 2 still waits on worker 1");
/// assert_eq!(marks.published(0, 1), 1);
/// ```
#[derive(Debug)]
pub struct EdgeWatermarks {
    workers: usize,
    /// Cache lines per sender row (`⌈workers / CELLS_PER_LINE⌉`).
    lines_per_row: usize,
    /// Row-major `(sender, receiver)` grid, 8 cells per line.
    marks: Vec<WatermarkLine>,
}

impl EdgeWatermarks {
    /// An all-zero grid (nothing published) over a `workers`-wide pool.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let lines_per_row = workers.div_ceil(CELLS_PER_LINE);
        EdgeWatermarks {
            workers,
            lines_per_row,
            marks: (0..workers * lines_per_row)
                .map(|_| WatermarkLine::default())
                .collect(),
        }
    }

    /// Number of workers the grid spans.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn cell(&self, sender: usize, receiver: usize) -> &AtomicU64 {
        let line = sender * self.lines_per_row + receiver / CELLS_PER_LINE;
        &self.marks[line].0[receiver % CELLS_PER_LINE]
    }

    /// Records that `sender` has flushed every outbound batch of ticks
    /// `0..ticks` on every out-edge. Release stores: a receiver that
    /// acquires the new value also sees the flushed batches in its
    /// lanes.
    ///
    /// # Panics
    ///
    /// Panics when `sender` is out of range.
    pub fn publish(&self, sender: usize, ticks: u64) {
        assert!(sender < self.workers, "sender {sender} out of range");
        for receiver in 0..self.workers {
            self.cell(sender, receiver).store(ticks, Ordering::Release);
        }
    }

    /// How many ticks `sender` has published toward `receiver`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    #[must_use]
    pub fn published(&self, sender: usize, receiver: usize) -> u64 {
        assert!(sender < self.workers && receiver < self.workers);
        self.cell(sender, receiver).load(Ordering::Acquire)
    }

    /// True when every *peer* of `receiver` has published at least
    /// `ticks` ticks toward it (a worker never waits on itself — its own
    /// output is flushed before it could matter).
    ///
    /// # Panics
    ///
    /// Panics when `receiver` is out of range.
    #[must_use]
    pub fn all_published(&self, receiver: usize, ticks: u64) -> bool {
        assert!(receiver < self.workers, "receiver {receiver} out of range");
        (0..self.workers).all(|sender| {
            sender == receiver || self.cell(sender, receiver).load(Ordering::Acquire) >= ticks
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_core::channel::Latency;

    fn env(to: u32) -> Envelope<u8> {
        Envelope {
            from: ProcessId(0),
            to: ProcessId(to),
            sent_tick: 0,
            due_tick: 1,
            msg: 1,
        }
    }

    /// Sweeps an inbox into `(lane, from, to, sent, due, msg)` tuples.
    fn collect(inbox: &mut EdgeInbox<u8>) -> Vec<(usize, u32, u32, u64, u64, u8)> {
        let mut got = Vec::new();
        inbox.sweep(|lane, e| got.push((lane, e.from.0, e.to.0, e.sent_tick, e.due_tick, e.msg)));
        got
    }

    #[test]
    fn routes_by_pid_stripe() {
        let (mut hubs, mut inboxes) = lane_matrix(2, 8);
        assert_eq!(hubs[0].workers(), 2);
        hubs[0].send(env(4)).unwrap();
        hubs[0].send(env(5)).unwrap();
        hubs[0].send(env(7)).unwrap();
        let w0 = collect(&mut inboxes[0]);
        let w1 = collect(&mut inboxes[1]);
        assert_eq!(w0.len(), 1, "pid 4 → worker 0");
        assert_eq!(w1.len(), 2, "pids 5 and 7 → worker 1");
        assert_eq!(w0[0].2, 4);
        assert_eq!(w1.iter().map(|e| e.2).collect::<Vec<_>>(), vec![5, 7]);
    }

    #[test]
    fn send_to_gone_worker_reports_typed_drop() {
        let (mut hubs, inboxes) = lane_matrix::<u8>(1, 4);
        drop(inboxes);
        let err = hubs[0].send(env(0)).unwrap_err();
        assert_eq!(
            err,
            LaneClosed {
                worker: 0,
                envelopes: 1
            }
        );
        let err = hubs[0].send_batch(0, vec![env(0), env(0)]).unwrap_err();
        assert_eq!(err.envelopes, 2, "the error carries the dropped count");
        assert!(err.to_string().contains("lanes are closed"));
    }

    #[test]
    fn batch_iterates_both_shapes() {
        let one = Batch::One(env(0));
        assert_eq!(one.len(), 1);
        assert!(!one.is_empty());
        assert_eq!(one.into_iter().count(), 1);
        let many = Batch::Many(vec![env(0), env(1)]);
        assert_eq!(many.len(), 2);
        assert_eq!(many.into_iter().count(), 2);
    }

    #[test]
    fn sweep_visits_lanes_in_worker_id_order() {
        // Three producers push to worker 0 in reverse id order; the
        // sweep still visits lane 0, then 1, then 2 — the deterministic
        // merge order the runtime's delivery schedule is built on.
        let (mut hubs, mut inboxes) = lane_matrix(3, 8);
        for p in (0..3usize).rev() {
            let mut e = env(0);
            e.from = ProcessId(p as u32);
            e.msg = p as u8;
            hubs[p].send(e).unwrap();
        }
        let got = collect(&mut inboxes[0]);
        assert_eq!(
            got.iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "lanes sweep in producer worker-id order regardless of push order"
        );
    }

    #[test]
    fn batch_pool_recycles_buffers_round_trip() {
        let (mut hubs, mut inboxes) = lane_matrix(1, 8);
        let mut faulty = FaultyRouter::new(hubs.remove(0), ChannelConfig::reliable(), 3);
        for tick in 0..100u64 {
            for i in 0..4u32 {
                faulty.send(ProcessId(0), ProcessId(i), tick, 0);
            }
            faulty.flush();
            inboxes[0].sweep(|_, _| {});
        }
        let pool = faulty.hub().pool();
        let minted = pool.minted();
        assert!(
            minted <= 2,
            "steady-state flushing must cycle a tiny working set, minted {minted}"
        );
        // Every minted buffer is at rest again: in the pool or parked as
        // a coalescing slot (slots hold pool buffers once they've cycled).
        assert!(pool.pooled() as u64 <= minted);
    }

    /// Satellite requirement: under a perfect channel config the faulty
    /// path must produce the byte-for-byte event set of the plain
    /// [`Hub`] — same envelopes, same fields, same per-destination
    /// order.
    #[test]
    fn perfect_faulty_router_matches_plain_hub_byte_for_byte() {
        let sends: Vec<(u32, u32, u64, u8)> = vec![
            (0, 3, 0, 10),
            (0, 4, 0, 11),
            (2, 3, 0, 12),
            (0, 3, 1, 13),
            (4, 1, 1, 14),
            (2, 0, 2, 15),
        ];

        // Plain hub, one lane push per envelope.
        let (mut hubs, mut inboxes) = lane_matrix(2, 32);
        for &(from, to, tick, msg) in &sends {
            hubs[0]
                .send(Envelope {
                    from: ProcessId(from),
                    to: ProcessId(to),
                    sent_tick: tick,
                    due_tick: tick + 1,
                    msg,
                })
                .unwrap();
        }
        let plain_w0 = collect(&mut inboxes[0]);
        let plain_w1 = collect(&mut inboxes[1]);

        // Faulty router with the zero-latency perfect config, flushed
        // at each tick boundary like the worker loop does.
        let (mut hubs, mut inboxes) = lane_matrix(2, 32);
        let mut faulty = FaultyRouter::new(
            hubs.remove(0),
            ChannelConfig::reliable().with_latency(Latency::Fixed(1)),
            99,
        );
        let mut last_tick = 0;
        for &(from, to, tick, msg) in &sends {
            if tick != last_tick {
                faulty.flush();
                last_tick = tick;
            }
            let fate = faulty.send(ProcessId(from), ProcessId(to), tick, msg);
            assert_eq!(fate, SendFate::Queued { due_tick: tick + 1 });
        }
        let report = faulty.flush();
        assert_eq!(report.dropped_closed, 0);
        let faulty_w0 = collect(&mut inboxes[0]);
        let faulty_w1 = collect(&mut inboxes[1]);

        assert_eq!(plain_w0, faulty_w0);
        assert_eq!(plain_w1, faulty_w1);
    }

    /// A model-checker counterexample replays on the live transport: a
    /// scripted drop kills exactly the named per-tick occurrence on its
    /// edge, draw-free, and every other send on a reliable channel
    /// still goes through.
    #[test]
    fn scripted_drop_kills_exact_occurrence_on_live_router() {
        use da_core::topology::{DropSchedule, ScriptedDrop};
        let network =
            NetworkModel::uniform(ChannelConfig::reliable().with_latency(Latency::Fixed(1)))
                .with_drops(DropSchedule::none().with_drop(ScriptedDrop {
                    tick: 5,
                    from: ProcessId(0),
                    to: ProcessId(1),
                    occurrence: 1,
                }));
        let (mut hubs, mut inboxes) = lane_matrix::<u8>(1, 16);
        let mut faulty = FaultyRouter::new(hubs.remove(0), network, 11);

        // Tick 5, edge 0 → 1: only the second send dies.
        let fates: Vec<SendFate> = (0..3)
            .map(|i| faulty.send(ProcessId(0), ProcessId(1), 5, i))
            .collect();
        assert_eq!(
            fates,
            vec![
                SendFate::Queued { due_tick: 6 },
                SendFate::DroppedChannel,
                SendFate::Queued { due_tick: 6 },
            ]
        );
        // Same tick, different edge: untouched.
        assert_eq!(
            faulty.send(ProcessId(2), ProcessId(1), 5, 9),
            SendFate::Queued { due_tick: 6 }
        );
        // Next tick, same edge and occurrence: counters reset, the
        // script names tick 5 only, so everything goes through.
        let fates: Vec<SendFate> = (0..3)
            .map(|i| faulty.send(ProcessId(0), ProcessId(1), 6, i))
            .collect();
        assert!(fates
            .iter()
            .all(|f| matches!(f, SendFate::Queued { due_tick: 7 })));
        faulty.flush();
        let delivered = inboxes[0].drain();
        assert_eq!(delivered, 6, "3 sends survived of 4 at tick 5, plus 3 at 6");
    }

    #[test]
    fn flush_coalesces_per_destination_worker() {
        let (mut hubs, mut inboxes) = lane_matrix::<u8>(2, 8);
        let mut faulty = FaultyRouter::new(hubs.remove(0), ChannelConfig::reliable(), 1);
        for to in [0u32, 1, 2, 3, 4, 5] {
            faulty.send(ProcessId(9), ProcessId(to), 0, to as u8);
        }
        let report = faulty.flush();
        assert_eq!(report.batches, 2, "one lane push per destination worker");
        assert_eq!(report.envelopes, 6);
        let w0 = collect(&mut inboxes[0]);
        let w1 = collect(&mut inboxes[1]);
        assert_eq!(w0.len(), 3);
        assert_eq!(w1.len(), 3);
        // Nothing buffered afterwards: a second flush is a no-op.
        assert_eq!(faulty.flush(), FlushReport::default());
    }

    #[test]
    fn lossy_channel_drops_roughly_fraction() {
        let (mut hubs, mut inboxes) = lane_matrix::<u8>(1, 8);
        let mut faulty = FaultyRouter::new(
            hubs.remove(0),
            ChannelConfig::reliable().with_success_probability(0.5),
            5,
        );
        let mut dropped = 0u64;
        let mut arrived = 0u64;
        for i in 0..1000u64 {
            // Spread over many edges so several streams are exercised.
            let from = ProcessId((i % 10) as u32);
            if faulty.send(from, ProcessId(((i / 10) % 7) as u32), i, 0) == SendFate::DroppedChannel
            {
                dropped += 1;
            }
            faulty.flush();
            // Sweep per tick, like the worker loop — the lanes are
            // bounded, a single-threaded pump must drain as it goes.
            arrived += inboxes[0].drain();
        }
        assert!(
            (350..650).contains(&dropped),
            "dropped {dropped} of 1000, expected ≈ half"
        );
        assert_eq!(arrived + dropped, 1000);
    }

    #[test]
    fn latency_sampling_stamps_due_ticks_in_bounds() {
        let (mut hubs, mut inboxes) = lane_matrix::<u8>(1, 8);
        let mut faulty = FaultyRouter::new(
            hubs.remove(0),
            ChannelConfig::reliable().with_latency(Latency::UniformRounds { min: 2, max: 4 }),
            3,
        );
        for _ in 0..200 {
            let fate = faulty.send(ProcessId(0), ProcessId(0), 10, 0);
            match fate {
                SendFate::Queued { due_tick } => assert!((12..=14).contains(&due_tick)),
                SendFate::DroppedChannel => panic!("reliable channel lost a message"),
                SendFate::DroppedPartitioned => panic!("no partition is scripted"),
            }
        }
        faulty.flush();
        let mut count = 0;
        inboxes[0].sweep(|_, envelope| {
            assert_eq!(envelope.sent_tick, 10);
            assert!((12..=14).contains(&envelope.due_tick));
            count += 1;
        });
        assert_eq!(count, 200);
    }

    #[test]
    fn fault_draws_are_reproducible_per_edge() {
        let run = || {
            let (mut hubs, _inboxes) = lane_matrix::<u8>(1, 8);
            let mut faulty = FaultyRouter::new(hubs.remove(0), ChannelConfig::paper_default(), 42);
            (0..64u64)
                .map(|i| faulty.send(ProcessId(1), ProcessId(2), i, 0) == SendFate::DroppedChannel)
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run(), "same seed, same edge, same fates");
    }

    #[test]
    fn same_tick_sends_draw_independent_fates_per_occurrence() {
        // Many sends on one edge within one tick: each gets its own
        // occurrence-keyed draw, so fates are not all correlated copies
        // of the first.
        let (mut hubs, _inboxes) = lane_matrix::<u8>(1, 8);
        let mut faulty = FaultyRouter::new(
            hubs.remove(0),
            ChannelConfig::reliable().with_success_probability(0.5),
            42,
        );
        let fates: Vec<bool> = (0..64)
            .map(|i| faulty.send(ProcessId(1), ProcessId(2), 7, i) == SendFate::DroppedChannel)
            .collect();
        let dropped = fates.iter().filter(|&&d| d).count();
        assert!(
            (10..54).contains(&dropped),
            "dropped {dropped} of 64 same-tick sends; occurrence keying must decorrelate them"
        );

        // And the occurrence counter resets per tick: the k-th send of a
        // tick replays the k-th fate of that tick, deterministically.
        let (mut hubs, _inboxes) = lane_matrix::<u8>(1, 8);
        let mut again = FaultyRouter::new(
            hubs.remove(0),
            ChannelConfig::reliable().with_success_probability(0.5),
            42,
        );
        let replay: Vec<bool> = (0..64)
            .map(|i| again.send(ProcessId(1), ProcessId(2), 7, i) == SendFate::DroppedChannel)
            .collect();
        assert_eq!(fates, replay);
    }

    #[test]
    fn partition_cut_severs_then_heals_without_consuming_draws() {
        use da_core::topology::{NetworkModel, NodeId, Partition, PartitionSchedule, Topology};
        let network = |partitions| {
            NetworkModel::uniform(ChannelConfig::paper_default())
                .with_topology(
                    Topology::with_nodes(["a", "b"]).with_placement(ProcessId(1), NodeId(1)),
                )
                .with_partitions(partitions)
        };
        let cut = PartitionSchedule::none()
            .with_partition(Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], 10).heal_at(20));

        // Encode each fate latency-relative so runs at different ticks
        // compare: Severed → -2, Lost → -1, Deliver → its latency.
        let run = |partitions: PartitionSchedule| {
            let (mut hubs, _inboxes) = lane_matrix::<u8>(1, 8);
            let mut faulty = FaultyRouter::new(hubs.remove(0), network(partitions), 42);
            (0..30u64)
                .map(
                    |tick| match faulty.send(ProcessId(0), ProcessId(1), tick, 0) {
                        SendFate::DroppedPartitioned => -2i64,
                        SendFate::DroppedChannel => -1,
                        SendFate::Queued { due_tick } => (due_tick - tick) as i64,
                    },
                )
                .collect::<Vec<i64>>()
        };
        let severed = run(cut);
        let open = run(PartitionSchedule::none());

        assert!(
            severed[10..20].iter().all(|&f| f == -2),
            "every send inside the window is severed"
        );
        assert_eq!(
            severed[..10],
            open[..10],
            "fates before the cut are untouched"
        );
        // Draws are keyed by (edge, tick, occurrence), not stream
        // position, so post-heal fates are *identical* to the never-cut
        // run at the same ticks — severing a window cannot shift any
        // other send's fate.
        assert_eq!(severed[20..30], open[20..30]);
        assert!(severed[20..].iter().all(|&f| f != -2));
    }

    #[test]
    fn watermarks_gate_per_receiver() {
        let marks = EdgeWatermarks::new(2);
        assert_eq!(marks.workers(), 2);
        assert!(marks.all_published(0, 0));
        assert!(!marks.all_published(0, 1));
        marks.publish(1, 3);
        assert!(marks.all_published(0, 3));
        assert!(!marks.all_published(0, 4));
        assert_eq!(marks.published(1, 0), 3);
        // Worker 1 still waits on worker 0's publishes.
        assert!(!marks.all_published(1, 1));
        assert_eq!(marks.published(0, 1), 0);
    }

    #[test]
    fn single_worker_grid_never_waits() {
        let marks = EdgeWatermarks::new(1);
        assert!(marks.all_published(0, u64::MAX));
    }

    #[test]
    fn wide_grid_keeps_cells_distinct_across_line_packing() {
        // 37 workers: rows span 5 cache lines with a ragged tail, so
        // every packing edge case (first cell, mid-line, line boundary,
        // last partial line) is exercised.
        let workers = 37;
        let marks = EdgeWatermarks::new(workers);
        for sender in 0..workers {
            marks.publish(sender, sender as u64 + 1);
        }
        for sender in 0..workers {
            for receiver in 0..workers {
                assert_eq!(marks.published(sender, receiver), sender as u64 + 1);
            }
        }
        assert!(marks.all_published(0, 1), "every peer published ≥ 1");
        assert!(!marks.all_published(36, 2), "sender 0 only published 1");
    }

    #[test]
    fn watermarks_synchronise_with_lane_contents() {
        // The release/acquire contract: once a receiver observes the
        // watermark, the pushed batch must already be on its lane.
        let (mut hubs, mut inboxes) = lane_matrix::<u64>(2, 4);
        let mut producer_hub = hubs.remove(1);
        let mut inbox0 = inboxes.remove(0);
        let marks = std::sync::Arc::new(EdgeWatermarks::new(2));
        let sender_marks = std::sync::Arc::clone(&marks);
        let handle = std::thread::spawn(move || {
            for tick in 0..200u64 {
                // The lane is bounded: a full push yields inside `send`
                // until the receiver sweeps, which it does concurrently.
                producer_hub
                    .send(Envelope {
                        from: ProcessId(1),
                        to: ProcessId(0),
                        sent_tick: tick,
                        due_tick: tick + 1,
                        msg: tick,
                    })
                    .unwrap();
                sender_marks.publish(1, tick + 1);
            }
        });
        let mut seen = 0u64;
        while seen < 200 {
            if marks.published(1, 0) > seen {
                let before = seen;
                inbox0.sweep(|_, _| seen += 1);
                assert!(seen > before, "published batch must be visible");
            } else {
                std::thread::yield_now();
            }
        }
        handle.join().unwrap();
    }

    #[test]
    fn flush_counts_closed_workers() {
        let (mut hubs, inboxes) = lane_matrix::<u8>(1, 8);
        let mut faulty = FaultyRouter::new(hubs.remove(0), ChannelConfig::reliable(), 0);
        faulty.send(ProcessId(0), ProcessId(0), 0, 1);
        faulty.send(ProcessId(0), ProcessId(0), 0, 2);
        drop(inboxes);
        let report = faulty.flush();
        assert_eq!(report.dropped_closed, 2);
        assert_eq!(report.envelopes, 0);
    }

    #[test]
    fn in_flight_envelopes_drop_exactly_once_on_teardown() {
        // Mid-flight Stop: batches still on the lanes when everything
        // drops must free their envelopes exactly once (the SPSC ring
        // drains `[head, tail)` on drop; pooled buffers are plain Vecs).
        let token = std::sync::Arc::new(());
        let (mut hubs, inboxes) = lane_matrix(2, 8);
        for i in 0..4u32 {
            hubs[0]
                .send(Envelope {
                    from: ProcessId(0),
                    to: ProcessId(i),
                    sent_tick: 0,
                    due_tick: 1,
                    msg: std::sync::Arc::clone(&token),
                })
                .unwrap();
        }
        let _ = hubs[1].send_batch(
            0,
            vec![Envelope {
                from: ProcessId(1),
                to: ProcessId(0),
                sent_tick: 0,
                due_tick: 1,
                msg: std::sync::Arc::clone(&token),
            }],
        );
        assert_eq!(std::sync::Arc::strong_count(&token), 6);
        drop(inboxes);
        drop(hubs);
        assert_eq!(std::sync::Arc::strong_count(&token), 1);
    }
}
