//! The in-memory transport: envelopes and the worker-addressed router.

use crossbeam::channel::Sender;
use da_simnet::ProcessId;

/// One in-flight message on the live transport.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sending process.
    pub from: ProcessId,
    /// Destination process.
    pub to: ProcessId,
    /// Tick during which the message was sent; the scheduler delivers it
    /// in a strictly later tick, mirroring the simulator's one-round
    /// channel latency.
    pub sent_tick: u64,
    /// The protocol message.
    pub msg: M,
}

/// Routes envelopes to the inbox of the worker owning the destination.
///
/// Processes are striped across workers (`worker = pid mod workers`), so
/// routing is a single index computation — no lookup table, no lock.
/// Every worker holds a clone; the router is the only way messages move
/// between threads.
#[derive(Debug)]
pub struct Router<M> {
    inboxes: Vec<Sender<Envelope<M>>>,
}

impl<M> Clone for Router<M> {
    fn clone(&self) -> Self {
        Router {
            inboxes: self.inboxes.clone(),
        }
    }
}

impl<M> Router<M> {
    /// Builds a router over one inbox sender per worker.
    #[must_use]
    pub fn new(inboxes: Vec<Sender<Envelope<M>>>) -> Self {
        assert!(!inboxes.is_empty(), "a router needs at least one worker");
        Router { inboxes }
    }

    /// Number of workers behind this router.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inboxes.len()
    }

    /// The worker owning `pid`.
    #[must_use]
    pub fn worker_of(&self, pid: ProcessId) -> usize {
        pid.index() % self.inboxes.len()
    }

    /// Hands an envelope to the owning worker's inbox. Returns `false`
    /// when that worker has already shut down (the message is dropped,
    /// like a send to a crashed process).
    pub fn send(&self, envelope: Envelope<M>) -> bool {
        let worker = self.worker_of(envelope.to);
        self.inboxes[worker].send(envelope).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;

    fn env(to: u32) -> Envelope<u8> {
        Envelope {
            from: ProcessId(0),
            to: ProcessId(to),
            sent_tick: 0,
            msg: 1,
        }
    }

    #[test]
    fn routes_by_pid_stripe() {
        let (tx0, rx0) = channel::unbounded();
        let (tx1, rx1) = channel::unbounded();
        let router = Router::new(vec![tx0, tx1]);
        assert_eq!(router.workers(), 2);
        assert!(router.send(env(4)));
        assert!(router.send(env(5)));
        assert!(router.send(env(7)));
        assert_eq!(rx0.len(), 1, "pid 4 → worker 0");
        assert_eq!(rx1.len(), 2, "pids 5 and 7 → worker 1");
        assert_eq!(rx0.recv().unwrap().to, ProcessId(4));
    }

    #[test]
    fn send_to_gone_worker_reports_drop() {
        let (tx, rx) = channel::unbounded::<Envelope<u8>>();
        let router = Router::new(vec![tx]);
        drop(rx);
        assert!(!router.send(env(0)));
    }
}
