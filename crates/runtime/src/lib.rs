//! # da-runtime — the concurrent live-execution substrate
//!
//! The paper evaluates daMulticast under a synchronous round simulator
//! (Sec. VII-A); this crate runs the *same protocol code* on real
//! threads with real message passing. Every process that implements
//! `damulticast::ExecProtocol` — [`damulticast::DaProcess`] included,
//! unchanged — runs as an actor on a worker pool:
//!
//! * **transport** — a lock-free data plane over a lane matrix
//!   ([`lane_matrix`]): one bounded SPSC ring (`crossbeam::queue`) per
//!   (producer worker, consumer worker) pair, so batch publication
//!   never takes a lock and never contends with any third worker.
//!   Sends are address-hashed to the owning worker, coalesced per
//!   destination worker into one [`Batch`] per tick, and never copied
//!   twice; drained `Batch::Many` buffers recycle back to the producer
//!   over per-pair return lanes (a [`BatchPool`]), so steady-state
//!   ticks allocate nothing on the data plane. Control messages stay
//!   on mpsc channels;
//! * **network faults** — the [`FaultyRouter`] applies the same
//!   substrate-neutral [`NetworkModel`] the simulator uses
//!   (`da_core::topology`, configured via the unified
//!   [`RuntimeConfig::with_channel`] / [`RuntimeConfig::with_topology`] /
//!   [`RuntimeConfig::with_partitions`] builders on the shared
//!   [`FaultConfig`]): Bernoulli loss and sampled latencies drawn from
//!   deterministic per-edge RNG streams on each link's channel, with
//!   delayed envelopes parked on a per-worker delay wheel until their
//!   due tick. Sends crossing an active [`PartitionSchedule`] cut are
//!   dropped at send time (`rt.dropped_partitioned`) — a pure decision
//!   consuming zero randomness, so both substrates sever the same
//!   sends;
//! * **bounded-lag tick scheduler** — gossip rounds become *ticks*, but
//!   there is no global barrier: each worker advances its own clock,
//!   gated only by per-edge atomic publish watermarks
//!   ([`EdgeWatermarks`]) — it may execute tick `n` once every peer has
//!   *published* (flushed) the batches that could still be due at `n`.
//!   A message sent in tick `n` is still delivered exactly at tick
//!   `n + k` of its sampled latency `k ≥ 1`, preserving the simulator's
//!   virtual-time contract, while slow workers stop gating fast ones up
//!   to the [`RuntimeConfig::effective_lag`] drift window (the `max_lag`
//!   knob, capped by the channel's minimum latency). A coordinator
//!   observes the reported tick frontier to keep `step_tick` /
//!   `run_until_quiescent` semantics exact — including never executing
//!   a tick past the quiescent one;
//! * **process failures** — a per-worker [`LifecycleController`]
//!   applies the same `da_core::failure` plan the simulator
//!   materialises (configured via [`RuntimeConfig::with_failures`]):
//!   stillborn processes never start, scripted fates and churn draws
//!   crash/recover processes at the start of their tick, messages owed
//!   to a crashed process are consumed as `rt.dropped_crashed`,
//!   per-observer transmissions drop as `rt.dropped_observed_failed`,
//!   and a recovered process re-enters through its `on_recover` hook
//!   (the protocol's bootstrap path). All liveness draws are keyed on
//!   `(pid, tick)`, so one seed yields the identical crash/recovery
//!   schedule on both substrates at any worker count;
//! * **sharded metrics** — each worker counts into a registry it owns
//!   outright (plain array increments, id-keyed on the transport hot
//!   path) and publishes per-tick snapshots into [`ShardedCounters`];
//!   snapshots merge on demand into the same `da_simnet::Counters`
//!   registry the harness already reads;
//! * **flight recorder** — with [`RuntimeConfig::with_trace`] enabled,
//!   every send, delivery, drop, and lifecycle transition is appended
//!   (unsynchronised) to the worker's own `da_core::trace` recorder and
//!   drained into a shared [`TraceSink`] at tick boundaries, alongside
//!   delivery-latency / wheel-occupancy / watermark-lag histograms; the
//!   merged `TraceLog` canonicalizes into the exact stream the simulator
//!   records for the same seed. Off by default: the hot-path cost of
//!   disabled tracing is one branch on a `None`;
//! * **graceful shutdown** — [`Runtime::shutdown`] stops the pool,
//!   joins every worker, and hands back the protocol instances (plus
//!   their final liveness) for inspection, exactly like
//!   `Engine::into_processes`.
//!
//! Delivery order *within* a tick is deterministic: each worker sweeps
//! its incoming lanes onto a per-producer-bucketed delay wheel and
//! releases a tick's dues in (due tick, producer worker id, arrival
//! order) sequence — a pure function of `(tick, from, to, occurrence)`,
//! independent of thread interleaving and worker count. The protocol's
//! guarantees (full audience coverage, zero parasite deliveries) hold
//! on both substrates; `tests/runtime_parity.rs` in the workspace root
//! asserts it against the simulator on the paper's topology.
//!
//! ## Quick start
//!
//! ```
//! use da_runtime::{Runtime, RuntimeConfig};
//! use damulticast::{ParamMap, StaticNetwork};
//!
//! # fn main() -> Result<(), damulticast::DaError> {
//! let net = StaticNetwork::linear(&[4, 16], ParamMap::default(), 7)?;
//! let leaf = net.groups()[1].members[0];
//! let config = RuntimeConfig::default().with_workers(2).with_seed(7);
//! let mut rt = Runtime::spawn(config, net.into_processes());
//!
//! let id = rt.with_process_mut(leaf, |p| p.publish("live!"));
//! rt.run_until_quiescent(64);
//!
//! let out = rt.shutdown();
//! let delivered = out.processes.iter().filter(|p| p.has_delivered(id)).count();
//! assert!(delivered >= 12, "gossip blankets the leaf group");
//! assert_eq!(out.counters.get("da.parasite"), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod lifecycle;
mod metrics;
mod runtime;
mod transport;
mod wheel;

pub use config::RuntimeConfig;
pub use da_core::fault::FaultConfig;
pub use da_core::topology::{
    NetFate, NetworkModel, NodeId, Partition, PartitionSchedule, Topology,
};
pub use da_core::trace::{
    canonicalize, first_divergence, TraceCategory, TraceConfig, TraceDivergence, TraceEvent,
    TraceMode, TraceRecorder, TraceVerdict,
};
pub use da_simnet::{Histogram, TraceLog};
pub use lifecycle::{LifecycleController, LifecycleTransitions};
pub use metrics::{ShardOutOfRange, ShardedCounters, TraceSink};
pub use runtime::{Runtime, Shutdown, TickReport};
pub use transport::{
    lane_matrix, Batch, BatchPool, EdgeInbox, EdgeWatermarks, Envelope, FaultyRouter, FlushReport,
    Hub, LaneClosed, SendFate,
};
