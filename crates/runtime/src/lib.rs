//! # da-runtime — the concurrent live-execution substrate
//!
//! The paper evaluates daMulticast under a synchronous round simulator
//! (Sec. VII-A); this crate runs the *same protocol code* on real
//! threads with real message passing. Every process that implements
//! `damulticast::ExecProtocol` — [`damulticast::DaProcess`] included,
//! unchanged — runs as an actor on a worker pool:
//!
//! * **transport** — an in-memory [`Router`] over mpsc channels
//!   (the crossbeam shim): each worker owns one inbox; sends are
//!   address-hashed to the owning worker, coalesced per destination
//!   worker into one [`Batch`] per tick, and never copied twice;
//! * **channel faults** — the [`FaultyRouter`] applies the same
//!   substrate-neutral loss/latency model the simulator uses
//!   (`da_core::channel`, configured via
//!   [`RuntimeConfig::with_channel`]): Bernoulli loss and sampled
//!   latencies drawn from deterministic per-edge RNG streams, with
//!   delayed envelopes parked on a per-worker delay wheel until their
//!   due tick;
//! * **tick scheduler** — gossip rounds become *ticks*: the coordinator
//!   broadcasts a tick, every worker drains the messages sent before it,
//!   runs the round hooks of its processes, and acks; the barrier
//!   guarantees a message sent in tick `n` is delivered in tick `n+1`,
//!   preserving the simulator's virtual-time contract while workers run
//!   concurrently;
//! * **sharded metrics** — each worker counts into its own
//!   [`ShardedCounters`] shard (uncontended lock); snapshots merge on
//!   demand into the same `da_simnet::Counters` registry the harness
//!   already reads;
//! * **graceful shutdown** — [`Runtime::shutdown`] stops the pool,
//!   joins every worker, and hands back the protocol instances for
//!   inspection, exactly like `Engine::into_processes`.
//!
//! Delivery order *within* a tick is whatever the threads produce — the
//! substrate is concurrent, not deterministic — but the protocol's
//! guarantees (full audience coverage, zero parasite deliveries) hold on
//! both substrates; `tests/runtime_parity.rs` in the workspace root
//! asserts it against the simulator on the paper's topology.
//!
//! ## Quick start
//!
//! ```
//! use da_runtime::{Runtime, RuntimeConfig};
//! use damulticast::{ParamMap, StaticNetwork};
//!
//! # fn main() -> Result<(), damulticast::DaError> {
//! let net = StaticNetwork::linear(&[4, 16], ParamMap::default(), 7)?;
//! let leaf = net.groups()[1].members[0];
//! let config = RuntimeConfig::default().with_workers(2).with_seed(7);
//! let mut rt = Runtime::spawn(config, net.into_processes());
//!
//! let id = rt.with_process_mut(leaf, |p| p.publish("live!"));
//! rt.run_until_quiescent(64);
//!
//! let out = rt.shutdown();
//! let delivered = out.processes.iter().filter(|p| p.has_delivered(id)).count();
//! assert!(delivered >= 12, "gossip blankets the leaf group");
//! assert_eq!(out.counters.get("da.parasite"), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod metrics;
mod runtime;
mod transport;
mod wheel;

pub use config::RuntimeConfig;
pub use metrics::ShardedCounters;
pub use runtime::{Runtime, Shutdown, TickReport};
pub use transport::{Batch, Envelope, FaultyRouter, FlushReport, Router, SendFate};
