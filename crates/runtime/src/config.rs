//! Runtime configuration.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Configuration of one live runtime.
///
/// Mirrors `da_simnet::SimConfig`'s builder style; `new()` delegates to
/// the derived `Default`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Worker threads in the pool. `0` (the default) means one per
    /// available CPU, capped by the population.
    pub workers: usize,
    /// Master seed from which every process' RNG stream is derived —
    /// the same derivation as the simulator, so a process keeps its
    /// stream across substrates.
    pub seed: u64,
    /// Per-worker inbox capacity. `None` (the default) is unbounded;
    /// `Some(n)` applies send-side backpressure at `n` queued envelopes.
    /// Bounded inboxes can deadlock a tick when workers flood each other
    /// beyond the cap — use them only with protocols whose per-tick
    /// output is bounded.
    pub mailbox_capacity: Option<usize>,
    /// Watchdog: how long the coordinator waits for a worker to ack a
    /// tick before declaring the pool wedged (panicking with
    /// a diagnostic rather than hanging CI forever).
    pub tick_timeout_ms: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 0,
            seed: 0,
            mailbox_capacity: None,
            tick_timeout_ms: 60_000,
        }
    }
}

impl RuntimeConfig {
    /// Auto-sized worker pool, seed 0, unbounded inboxes.
    #[must_use]
    pub fn new() -> Self {
        RuntimeConfig::default()
    }

    /// Replaces the worker count (`0` = one per available CPU).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Bounds every worker inbox to `capacity` queued envelopes.
    #[must_use]
    pub fn with_mailbox_capacity(mut self, capacity: usize) -> Self {
        self.mailbox_capacity = Some(capacity);
        self
    }

    /// Replaces the tick watchdog timeout.
    #[must_use]
    pub fn with_tick_timeout_ms(mut self, ms: u64) -> Self {
        self.tick_timeout_ms = ms;
        self
    }

    /// The effective pool size for a population: the configured count, or
    /// one worker per CPU when auto-sized — never more workers than
    /// processes, never zero.
    #[must_use]
    pub fn effective_workers(&self, population: usize) -> usize {
        let base = if self.workers == 0 {
            std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
        } else {
            self.workers
        };
        base.min(population.max(1)).max(1)
    }

    /// The tick watchdog as a [`Duration`].
    #[must_use]
    pub fn tick_timeout(&self) -> Duration {
        Duration::from_millis(self.tick_timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_equals_default() {
        assert_eq!(RuntimeConfig::new(), RuntimeConfig::default());
    }

    #[test]
    fn builders_replace_fields() {
        let c = RuntimeConfig::default()
            .with_workers(3)
            .with_seed(9)
            .with_mailbox_capacity(128)
            .with_tick_timeout_ms(5);
        assert_eq!(c.workers, 3);
        assert_eq!(c.seed, 9);
        assert_eq!(c.mailbox_capacity, Some(128));
        assert_eq!(c.tick_timeout(), Duration::from_millis(5));
    }

    #[test]
    fn effective_workers_clamps() {
        let c = RuntimeConfig::default().with_workers(8);
        assert_eq!(c.effective_workers(3), 3, "never more workers than procs");
        assert_eq!(c.effective_workers(100), 8);
        assert_eq!(c.effective_workers(0), 1, "empty population still ticks");
        let auto = RuntimeConfig::default();
        assert!(auto.effective_workers(1_000_000) >= 1);
    }
}
