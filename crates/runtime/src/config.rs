//! Runtime configuration.

use da_core::channel::ChannelConfig;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Configuration of one live runtime.
///
/// Mirrors `da_simnet::SimConfig`'s builder style; `new()` delegates to
/// the derived `Default`. The [`ChannelConfig`] is the same
/// substrate-neutral model the simulator uses, so a reliability sweep
/// carries one config across both substrates:
///
/// ```
/// use da_core::channel::ChannelConfig;
/// use da_runtime::RuntimeConfig;
///
/// let lossy = ChannelConfig::paper_default(); // p_succ = 0.85
/// let config = RuntimeConfig::default()
///     .with_workers(2)
///     .with_seed(42)
///     .with_channel(lossy);
/// assert!((config.channel.success_probability - 0.85).abs() < 1e-12);
/// assert_eq!(RuntimeConfig::new(), RuntimeConfig::default());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Worker threads in the pool. `0` (the default) means one per
    /// available CPU, capped by the population.
    pub workers: usize,
    /// Master seed from which every process' RNG stream is derived —
    /// the same derivation as the simulator, so a process keeps its
    /// stream across substrates. Also roots the per-edge channel fault
    /// streams when the channel model is not perfect.
    pub seed: u64,
    /// Channel loss/latency model applied by the transport
    /// ([`crate::FaultyRouter`]). The default is a perfect channel:
    /// nothing lost, one-tick latency — the PR 2 behaviour.
    pub channel: ChannelConfig,
    /// Per-worker inbox capacity. `None` (the default) is unbounded;
    /// `Some(n)` applies send-side backpressure at `n` queued batches.
    /// Bounded inboxes can deadlock a tick when workers flood each other
    /// beyond the cap — use them only with protocols whose per-tick
    /// output is bounded.
    pub mailbox_capacity: Option<usize>,
    /// Watchdog: how long the coordinator waits for a worker to ack a
    /// tick before declaring the pool wedged (panicking with
    /// a diagnostic rather than hanging CI forever).
    pub tick_timeout_ms: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 0,
            seed: 0,
            channel: ChannelConfig::reliable(),
            mailbox_capacity: None,
            tick_timeout_ms: 60_000,
        }
    }
}

impl RuntimeConfig {
    /// Auto-sized worker pool, seed 0, perfect channels, unbounded
    /// inboxes.
    #[must_use]
    pub fn new() -> Self {
        RuntimeConfig::default()
    }

    /// Replaces the worker count (`0` = one per available CPU).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the channel loss/latency model.
    #[must_use]
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channel = channel;
        self
    }

    /// Bounds every worker inbox to `capacity` queued batches.
    #[must_use]
    pub fn with_mailbox_capacity(mut self, capacity: usize) -> Self {
        self.mailbox_capacity = Some(capacity);
        self
    }

    /// Replaces the tick watchdog timeout.
    #[must_use]
    pub fn with_tick_timeout_ms(mut self, ms: u64) -> Self {
        self.tick_timeout_ms = ms;
        self
    }

    /// The effective pool size for a population: the configured count, or
    /// one worker per CPU when auto-sized — never more workers than
    /// processes, never zero.
    #[must_use]
    pub fn effective_workers(&self, population: usize) -> usize {
        let base = if self.workers == 0 {
            std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
        } else {
            self.workers
        };
        base.min(population.max(1)).max(1)
    }

    /// The tick watchdog as a [`Duration`].
    #[must_use]
    pub fn tick_timeout(&self) -> Duration {
        Duration::from_millis(self.tick_timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_equals_default() {
        assert_eq!(RuntimeConfig::new(), RuntimeConfig::default());
        assert!(RuntimeConfig::default().channel.is_perfect());
    }

    #[test]
    fn builders_replace_fields() {
        let c = RuntimeConfig::default()
            .with_workers(3)
            .with_seed(9)
            .with_channel(ChannelConfig::paper_default())
            .with_mailbox_capacity(128)
            .with_tick_timeout_ms(5);
        assert_eq!(c.workers, 3);
        assert_eq!(c.seed, 9);
        assert_eq!(c.channel, ChannelConfig::paper_default());
        assert_eq!(c.mailbox_capacity, Some(128));
        assert_eq!(c.tick_timeout(), Duration::from_millis(5));
    }

    #[test]
    fn effective_workers_clamps() {
        let c = RuntimeConfig::default().with_workers(8);
        assert_eq!(c.effective_workers(3), 3, "never more workers than procs");
        assert_eq!(c.effective_workers(100), 8);
        assert_eq!(c.effective_workers(0), 1, "empty population still ticks");
        let auto = RuntimeConfig::default();
        assert!(auto.effective_workers(1_000_000) >= 1);
    }
}
