//! Runtime configuration.

use da_core::channel::ChannelConfig;
use da_core::failure::FailureModel;
use da_core::fault::FaultConfig;
use da_core::topology::{NetworkModel, PartitionSchedule, Topology};
use da_core::trace::TraceConfig;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Configuration of one live runtime.
///
/// Mirrors `da_simnet::SimConfig`'s builder style; `new()` delegates to
/// the derived `Default`. The embedded [`FaultConfig`] is the same
/// unified fault surface (network model + failure model) the simulator's
/// config embeds, so one value carries a whole fault scenario across
/// both substrates:
///
/// ```
/// use da_core::channel::ChannelConfig;
/// use da_runtime::RuntimeConfig;
///
/// let lossy = ChannelConfig::paper_default(); // p_succ = 0.85
/// let config = RuntimeConfig::default()
///     .with_workers(2)
///     .with_seed(42)
///     .with_channel(lossy);
/// assert!((config.channel().success_probability - 0.85).abs() < 1e-12);
/// assert_eq!(RuntimeConfig::new(), RuntimeConfig::default());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Worker threads in the pool. `0` (the default) means one per
    /// available CPU, capped by the population.
    pub workers: usize,
    /// Master seed from which every process' RNG stream is derived —
    /// the same derivation as the simulator, so a process keeps its
    /// stream across substrates. Also roots the per-edge channel fault
    /// streams when the network model is not perfect.
    pub seed: u64,
    /// The unified fault surface applied by the transport
    /// ([`crate::FaultyRouter`] consumes `faults.network`: default
    /// channel, per-link topology overrides, partition schedule) and by
    /// the per-worker [`crate::LifecycleController`] (`faults.failure`).
    /// The default is the absence of faults — perfect channels, no
    /// topology, no partitions, no crashes — the PR 2 behaviour.
    pub faults: FaultConfig,
    /// Floor override for the per-lane capacity of the SPSC data
    /// plane. `None` (the default) sizes every (producer, consumer)
    /// lane at `effective_lag() + 2` batches — the proven bound the
    /// watermark gate never exceeds, so the default never blocks.
    /// `Some(n)` raises the capacity to at least `n` (it can only
    /// deepen the lanes; the computed bound is always kept, since
    /// shallower lanes would stall producers inside a tick).
    pub mailbox_capacity: Option<usize>,
    /// Watchdog: how long the coordinator waits for a worker to ack a
    /// tick before declaring the pool wedged (panicking with
    /// a diagnostic rather than hanging CI forever).
    pub tick_timeout_ms: u64,
    /// How many ticks a fast worker may run ahead of the slowest peer's
    /// *published* frontier under the bounded-lag scheduler (minimum 1).
    ///
    /// The scheduler replaces the global tick barrier with per-edge
    /// publish watermarks: a worker may execute tick `n` once every peer
    /// has flushed the outbound batches that could still be due at `n`.
    /// With one-tick channel latency that pins workers within one tick
    /// of each other, so `max_lag` has no effect beyond `1`; under
    /// latency models whose minimum is `k > 1` ticks, workers may drift
    /// up to `min(max_lag, k)` ticks apart without reordering any
    /// delivery (see [`RuntimeConfig::effective_lag`]). Larger values
    /// trade scheduling slack for more in-flight buffering.
    pub max_lag: u64,
    /// Flight-recorder configuration (default: off — workers hold no
    /// recorder and every hot-path trace hook is one branch on a
    /// `None`). Same shape as `da_simnet::SimConfig::trace`, so one
    /// trace setting drives both substrates.
    pub trace: TraceConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 0,
            seed: 0,
            faults: FaultConfig::default(),
            mailbox_capacity: None,
            tick_timeout_ms: 60_000,
            max_lag: 1,
            trace: TraceConfig::off(),
        }
    }
}

impl RuntimeConfig {
    /// Auto-sized worker pool, seed 0, perfect channels, unbounded
    /// inboxes.
    #[must_use]
    pub fn new() -> Self {
        RuntimeConfig::default()
    }

    /// Replaces the worker count (`0` = one per available CPU).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the whole fault surface in one step — handy when a
    /// harness built one [`FaultConfig`] for both substrates.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the network model's default channel, keeping any
    /// topology and partition schedule.
    #[must_use]
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.faults.network.channel = channel;
        self
    }

    /// Installs a topology (process→node placement plus per-link
    /// channel overrides) on the network model.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.faults.network.topology = Some(topology);
        self
    }

    /// Installs a partition schedule (scripted split-brain windows) on
    /// the network model.
    #[must_use]
    pub fn with_partitions(mut self, partitions: PartitionSchedule) -> Self {
        self.faults.network.partitions = partitions;
        self
    }

    /// Replaces the process failure model — stillborn fractions,
    /// per-observer sampling, scripted fates, or continuous churn,
    /// exactly as accepted by `da_simnet::SimConfig::with_failures`. The
    /// plan is materialised once at [`crate::Runtime::spawn`] and
    /// applied per worker stripe by a [`crate::LifecycleController`];
    /// because every liveness draw is keyed on `(pid, tick)` rather
    /// than a shared stream, the same seed produces the same
    /// crash/recovery schedule here as under the simulator, at any
    /// worker count. (Per-observer draws are per transmission by
    /// definition and come from per-worker observation streams —
    /// statistically the paper's Fig. 11 model, with only the
    /// meaningless global draw order differing from the simulator's.)
    ///
    /// ```
    /// use da_core::failure::FailureModel;
    /// use da_runtime::RuntimeConfig;
    ///
    /// let config = RuntimeConfig::default().with_seed(7).with_failures(
    ///     FailureModel::Churn {
    ///         crash_probability: 0.01,
    ///         recover_probability: 0.2,
    ///     },
    /// );
    /// assert!(matches!(config.faults.failure, FailureModel::Churn { .. }));
    /// assert_eq!(*RuntimeConfig::default().failure(), FailureModel::None);
    /// ```
    #[must_use]
    pub fn with_failures(mut self, failure: FailureModel) -> Self {
        self.faults.failure = failure;
        self
    }

    /// Raises every data-plane lane to at least `capacity` queued
    /// batches (see [`RuntimeConfig::mailbox_capacity`]).
    #[must_use]
    pub fn with_mailbox_capacity(mut self, capacity: usize) -> Self {
        self.mailbox_capacity = Some(capacity);
        self
    }

    /// Replaces the tick watchdog timeout.
    #[must_use]
    pub fn with_tick_timeout_ms(mut self, ms: u64) -> Self {
        self.tick_timeout_ms = ms;
        self
    }

    /// Replaces the bounded-lag window (clamped to at least 1 when the
    /// scheduler applies it — see [`RuntimeConfig::effective_lag`]).
    ///
    /// ```
    /// use da_core::channel::{ChannelConfig, Latency};
    /// use da_runtime::RuntimeConfig;
    ///
    /// // Perfect channels deliver next tick, so correctness caps the
    /// // drift at one tick however large the knob is turned.
    /// let eager = RuntimeConfig::default().with_max_lag(8);
    /// assert_eq!(eager.effective_lag(), 1);
    ///
    /// // A 3-tick-minimum latency model leaves real slack to exploit.
    /// let slack = eager.with_channel(
    ///     ChannelConfig::reliable().with_latency(Latency::Fixed(3)),
    /// );
    /// assert_eq!(slack.effective_lag(), 3);
    /// assert_eq!(slack.with_max_lag(2).effective_lag(), 2);
    /// ```
    #[must_use]
    pub fn with_max_lag(mut self, max_lag: u64) -> Self {
        self.max_lag = max_lag;
        self
    }

    /// Replaces the flight-recorder configuration (same shape as
    /// `da_simnet::SimConfig::with_trace`).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// The network model's default channel (convenience accessor).
    #[must_use]
    pub fn channel(&self) -> ChannelConfig {
        self.faults.network.channel
    }

    /// The process failure model (convenience accessor).
    #[must_use]
    pub fn failure(&self) -> &FailureModel {
        &self.faults.failure
    }

    /// The full network model the transport consumes.
    #[must_use]
    pub fn network(&self) -> &NetworkModel {
        &self.faults.network
    }

    /// The worker-drift bound the scheduler actually enforces:
    /// `max(1, min(max_lag, network.min_latency()))`.
    ///
    /// A worker may execute tick `n` once every peer has published its
    /// outbound batches through tick `n - effective_lag()`; anything a
    /// peer sends later is due strictly after `n` (its latency is at
    /// least [`da_core::topology::NetworkModel::min_latency`] — the
    /// minimum over the default channel *and* every per-link override),
    /// so no delivery can be missed. The `max_lag` knob can only
    /// tighten this bound, never stretch it past what the network model
    /// allows.
    #[must_use]
    pub fn effective_lag(&self) -> u64 {
        self.max_lag.clamp(1, self.faults.network.min_latency())
    }

    /// The effective pool size for a population: the configured count, or
    /// one worker per CPU when auto-sized — never more workers than
    /// processes, never zero.
    #[must_use]
    pub fn effective_workers(&self, population: usize) -> usize {
        let base = if self.workers == 0 {
            std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
        } else {
            self.workers
        };
        base.min(population.max(1)).max(1)
    }

    /// The tick watchdog as a [`Duration`].
    #[must_use]
    pub fn tick_timeout(&self) -> Duration {
        Duration::from_millis(self.tick_timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_equals_default() {
        assert_eq!(RuntimeConfig::new(), RuntimeConfig::default());
        assert!(RuntimeConfig::default().channel().is_perfect());
        assert!(RuntimeConfig::default().network().is_perfect());
    }

    #[test]
    fn builders_replace_fields() {
        let c = RuntimeConfig::default()
            .with_workers(3)
            .with_seed(9)
            .with_channel(ChannelConfig::paper_default())
            .with_mailbox_capacity(128)
            .with_tick_timeout_ms(5)
            .with_max_lag(4)
            .with_trace(TraceConfig::full())
            .with_failures(FailureModel::Stillborn {
                alive_fraction: 0.9,
            });
        assert_eq!(c.workers, 3);
        assert_eq!(c.seed, 9);
        assert_eq!(c.channel(), ChannelConfig::paper_default());
        assert_eq!(c.mailbox_capacity, Some(128));
        assert_eq!(c.tick_timeout(), Duration::from_millis(5));
        assert_eq!(c.max_lag, 4);
        assert_eq!(c.trace, TraceConfig::full());
        assert!(!RuntimeConfig::default().trace.is_enabled());
        assert_eq!(
            c.faults.failure,
            FailureModel::Stillborn {
                alive_fraction: 0.9
            }
        );
    }

    #[test]
    fn topology_and_partition_builders_share_the_sim_shape() {
        use da_core::topology::{NodeId, Partition, Topology};
        let topo = Topology::with_nodes(["a", "b"]).with_placement_range(0..2, NodeId(1));
        let cuts = PartitionSchedule::none()
            .with_partition(Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], 4).heal_at(9));
        let c = RuntimeConfig::default()
            .with_topology(topo.clone())
            .with_partitions(cuts.clone());
        assert_eq!(c.faults.network.topology, Some(topo));
        assert_eq!(c.faults.network.partitions, cuts);
        // The identical FaultConfig drops into the simulator's config.
        let sim = da_simnet::SimConfig::default().with_faults(c.faults.clone());
        assert_eq!(sim.faults, c.faults);
    }

    #[test]
    fn effective_lag_is_channel_capped_and_never_zero() {
        use da_core::channel::Latency;
        let base = RuntimeConfig::default();
        assert_eq!(base.max_lag, 1, "default stays small");
        assert_eq!(base.effective_lag(), 1);
        assert_eq!(base.clone().with_max_lag(0).effective_lag(), 1);
        assert_eq!(base.clone().with_max_lag(16).effective_lag(), 1);
        let jittery = base.with_channel(
            ChannelConfig::reliable().with_latency(Latency::UniformRounds { min: 2, max: 6 }),
        );
        assert_eq!(jittery.clone().with_max_lag(16).effective_lag(), 2);
        assert_eq!(jittery.clone().with_max_lag(1).effective_lag(), 1);
        // A faster per-link override tightens the bound below the
        // default channel's floor: the wheel must honour the quickest
        // link anywhere in the topology.
        use da_core::topology::{NodeId, Topology};
        let fast_link = jittery.with_topology(Topology::with_nodes(["a", "b"]).with_link(
            NodeId(0),
            NodeId(1),
            ChannelConfig::reliable().with_latency(Latency::Fixed(1)),
        ));
        assert_eq!(fast_link.with_max_lag(16).effective_lag(), 1);
    }

    #[test]
    fn effective_workers_clamps() {
        let c = RuntimeConfig::default().with_workers(8);
        assert_eq!(c.effective_workers(3), 3, "never more workers than procs");
        assert_eq!(c.effective_workers(100), 8);
        assert_eq!(c.effective_workers(0), 1, "empty population still ticks");
        let auto = RuntimeConfig::default();
        assert!(auto.effective_workers(1_000_000) >= 1);
    }
}
