//! Data-plane allocation discipline, asserted from outside the crate
//! with a counting global allocator (the library itself is
//! `forbid(unsafe_code)`; an integration test can host the `unsafe
//! impl GlobalAlloc` the hook needs).
//!
//! Two invariants of the lock-free lane matrix:
//!
//! * **Zero steady-state allocations** — once the buffer pool has
//!   minted its working set, a send → flush → sweep → return cycle
//!   touches the allocator exactly zero times, at any number of ticks.
//! * **Taken == returned** — every buffer the pool hands out comes back
//!   to rest in it after a full drain, and a mid-flight stop (consumers
//!   dropped with batches still on the lanes) frees the in-transit
//!   envelopes exactly once instead of leaking them.

use da_core::channel::ChannelConfig;
use da_runtime::{lane_matrix, Envelope, FaultyRouter};
use da_simnet::ProcessId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Forwards to the system allocator, counting every allocation (and
/// every growth-reallocation, via the default `realloc` calling back
/// into `alloc`).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// The allocation counter is process-global, so the measuring test must
/// not overlap any other test in this binary.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn steady_state_ticks_allocate_nothing_on_the_data_plane() {
    let _guard = SERIAL.lock().unwrap();
    const WORKERS: usize = 2;
    const FANOUT: u32 = 8;

    let (mut hubs, mut inboxes) = lane_matrix::<u64>(WORKERS, 64);
    let mut router = FaultyRouter::new(hubs.remove(0), ChannelConfig::reliable(), 7);
    // hubs[1] stays alive: a closed lane would re-route the flush into
    // the dropped_closed path instead of the steady-state cycle.

    let mut run_tick = |tick: u64| {
        for to in 0..FANOUT {
            let _ = router.send(ProcessId(0), ProcessId(to), tick, tick);
        }
        let report = router.flush();
        assert_eq!(report.dropped_closed, 0, "all lanes stay open");
        assert_eq!(report.envelopes, u64::from(FANOUT));
        for inbox in &mut inboxes {
            inbox.sweep(|_, env| {
                std::hint::black_box(env.msg);
            });
        }
    };

    // Warm-up: the pool mints its working set, the coalescing slots and
    // the occurrence-free reliable path reach their final footprint.
    for tick in 0..100 {
        run_tick(tick);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for tick in 100..1100 {
        run_tick(tick);
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "1000 steady-state ticks must not touch the allocator"
    );

    let pool = router.hub().pool();
    assert!(pool.minted() > 0, "the warm-up minted a working set");
}

#[test]
fn batch_pool_balances_taken_and_returned_including_mid_flight_stop() {
    let _guard = SERIAL.lock().unwrap();

    // Full round trips: every buffer taken from the pool is back at
    // rest after the consumer drains and the return lane is reclaimed.
    let (mut hubs, mut inboxes) = lane_matrix::<u64>(2, 8);
    let mut hub = hubs.remove(0);
    for round in 0..100u64 {
        let mut buf = hub.pool().take();
        for i in 0..4u32 {
            buf.push(Envelope {
                from: ProcessId(0),
                to: ProcessId(1),
                sent_tick: round,
                due_tick: round + 1,
                msg: u64::from(i),
            });
        }
        hub.send_batch(1, buf).expect("lane open");
        let mut seen = 0;
        inboxes[1].sweep(|_, _| seen += 1);
        assert_eq!(seen, 4);
    }
    let minted = hub.pool().minted();
    assert_eq!(minted, 1, "one buffer cycles through all 100 rounds");
    assert_eq!(
        hub.pool().pooled() as u64,
        minted,
        "everything taken has been returned"
    );

    // Mid-flight stop: batches still on the lanes when the consumer
    // side is torn down are freed exactly once — the Arc token's count
    // returns to 1, so nothing leaked and nothing double-dropped.
    let token = Arc::new(());
    let (mut hubs, inboxes) = lane_matrix::<Arc<()>>(2, 8);
    let mut hub = hubs.remove(0);
    for round in 0..3u64 {
        let mut buf = hub.pool().take();
        for _ in 0..4 {
            buf.push(Envelope {
                from: ProcessId(0),
                to: ProcessId(1),
                sent_tick: round,
                due_tick: round + 1,
                msg: Arc::clone(&token),
            });
        }
        hub.send_batch(1, buf).expect("lane open");
    }
    assert_eq!(Arc::strong_count(&token), 13, "12 envelopes in flight");
    drop(inboxes); // the stop: consumers vanish with the lanes loaded
    drop(hubs);
    drop(hub);
    assert_eq!(
        Arc::strong_count(&token),
        1,
        "in-flight envelopes dropped exactly once at teardown"
    );
}
