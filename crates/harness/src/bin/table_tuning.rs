//! Regenerates the **Sec. VI-E.3 tuning table**: the `c` ranges over which
//! daMulticast can match each baseline's reliability, the matching `c1`
//! constants, and the supertable-size bounds (Appendix eqs. 19, 25, 30).
//!
//! Also regenerates the *measured* side of the comparison: the four
//! algorithms' delivery reliability under stillborn failures.
//!
//! Usage: `cargo run --release -p da-harness --bin table_tuning [--quick]`

use da_harness::experiments::tables::{run_reliability_table, run_tuning_table};
use da_harness::experiments::Effort;
use da_harness::results_dir;

fn main() {
    let effort = Effort::from_args();
    // The paper's topology: t = 3 levels, n = 1110 processes, S_T = 1000,
    // and N = 33 groups for the hierarchical baseline (≈ √n).
    let table = run_tuning_table(3, 1110, 1000, 33);
    print!("{}", table.to_markdown());
    let dir = results_dir();
    table.write_to(&dir).expect("write results");

    let sizes = effort.scenario().group_sizes;
    let reliability = run_reliability_table(
        &sizes,
        &[1.0, 0.9, 0.8, 0.7, 0.6, 0.5],
        effort.trials(),
        0x7AB2E,
    );
    print!("{}", reliability.to_markdown());
    reliability.write_to(&dir).expect("write results");
    println!("\nwritten to {}", dir.display());
}
