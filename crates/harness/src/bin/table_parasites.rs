//! Regenerates the **parasite-freedom comparison** (Sec. I and VI-E):
//! one root-topic publication per algorithm; daMulticast and gossip
//! multicast deliver to exactly the interested processes, broadcast and
//! hierarchical broadcast flood everyone.
//!
//! Usage: `cargo run --release -p da-harness --bin table_parasites
//! [--quick]`

use da_harness::experiments::parasites::run_parasite_table;
use da_harness::experiments::Effort;
use da_harness::results_dir;

fn main() {
    let effort = Effort::from_args();
    let sizes = effort.scenario().group_sizes;
    let table = run_parasite_table(&sizes, effort.trials(), 0x9A7A);
    print!("{}", table.to_markdown());
    let dir = results_dir();
    table.write_to(&dir).expect("write results");
    println!("\nwritten to {}", dir.display());
}
