//! Regenerates **Fig. 8** of the paper: number of events sent within each
//! group (T2/T1/T0) as the fraction of alive processes varies, under
//! stillborn failures.
//!
//! Usage: `cargo run --release -p da-harness --bin fig08_group_messages
//! [--quick]`

use da_harness::experiments::figures::{run_figure, FigureKind};
use da_harness::experiments::{alive_fractions, Effort};
use da_harness::{plot, results_dir};

fn main() {
    let effort = Effort::from_args();
    let table = run_figure(
        FigureKind::Fig08GroupMessages,
        &effort.scenario(),
        &alive_fractions(),
        effort.trials(),
        0xF1608,
    );
    print!("{}", table.to_markdown());
    print!("{}", plot::ascii_plot(&table, 60, 16));
    let dir = results_dir();
    table.write_to(&dir).expect("write results");
    println!(
        "\nwritten to {}/{}.{{csv,md}}",
        dir.display(),
        table.file_stem()
    );
}
