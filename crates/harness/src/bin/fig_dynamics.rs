//! Runs the **temporal-dynamics extensions**: propagation latency
//! (rounds-to-coverage vs group size) and delivery under sustained churn
//! (crash/recovery every round, stationary aliveness 75%).
//!
//! Usage: `cargo run --release -p da-harness --bin fig_dynamics [--quick]`

use da_harness::experiments::dynamics::{run_churn, run_latency};
use da_harness::experiments::Effort;
use da_harness::{plot, results_dir};

fn main() {
    let effort = Effort::from_args();
    let dir = results_dir();
    let sizes: &[usize] = match effort {
        Effort::Quick => &[50, 100, 200],
        Effort::Paper => &[100, 250, 500, 1000, 2000],
    };

    let latency = run_latency(sizes, effort.trials(), 0xD1A);
    print!("{}", latency.to_markdown());
    print!("{}", plot::ascii_plot(&latency, 60, 12));
    latency.write_to(&dir).expect("write results");

    let churn = run_churn(
        &[0.001, 0.005, 0.01, 0.02, 0.05, 0.1],
        effort.trials(),
        0xD1B,
    );
    print!("{}", churn.to_markdown());
    print!("{}", plot::ascii_plot(&churn, 60, 12));
    churn.write_to(&dir).expect("write results");

    println!("\nwritten to {}", dir.display());
}
