//! Bounded model checking of single-group dissemination: drives the
//! protocol through **all** interleavings, per-envelope drop choices
//! and crash points of a small network, asserting the safety
//! invariants in every reachable state.
//!
//! Usage: `cargo run --release -p da-harness --bin mc_explore --
//! [--procs N] [--rounds N] [--drops N] [--crashes N]
//! [--ordering fixed|por|full] [--max-states N] [--mutant]`
//!
//! Defaults reproduce the acceptance scenario: 3 processes, 6 rounds,
//! 1 drop, 1 crash, full ordering. `--mutant` runs the
//! `Mutation::SkipDedup` variant instead, which must *fail*; the exit
//! code is non-zero whenever the run's verdict is unexpected
//! (violation on the shipped protocol, or a clean pass of the mutant).

use da_harness::experiments::mc::{base_config, dissemination_explorer, single_group};
use da_simnet::mc::{McConfig, OrderingMode};
use damulticast::Mutation;
use std::process::ExitCode;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{flag} wants a number, got {v:?}"))
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let population: usize = parse(&args, "--procs", 3);
    let ordering = match arg_value(&args, "--ordering").as_deref() {
        None | Some("full") => OrderingMode::Full,
        Some("por") => OrderingMode::PerDestination,
        Some("fixed") => OrderingMode::Fixed,
        Some(other) => panic!("--ordering wants fixed|por|full, got {other:?}"),
    };
    let mutation = if args.iter().any(|a| a == "--mutant") {
        Mutation::SkipDedup
    } else {
        Mutation::None
    };
    let config = McConfig {
        max_rounds: parse(&args, "--rounds", 6),
        drop_budget: parse(&args, "--drops", 1),
        crash_budget: parse(&args, "--crashes", 1),
        ordering,
        max_states: parse(&args, "--max-states", 1_000_000),
        ..McConfig::default()
    };

    println!(
        "exploring {population}-process dissemination ({mutation:?}): \
         {} round(s), {} drop(s), {} crash(es), {:?} ordering, ≤{} states",
        config.max_rounds, config.drop_budget, config.crash_budget, ordering, config.max_states
    );
    let start = std::time::Instant::now();
    let report =
        dissemination_explorer(config).explore(&base_config(), single_group(population, mutation));
    let elapsed = start.elapsed();

    let s = report.stats;
    println!(
        "states {}  transitions {}  max round {}  dedup hits {}  quiescent leaves {}",
        s.states, s.transitions, s.max_round, s.dedup_hits, s.quiescent_leaves
    );
    println!(
        "exhausted: {}  truncated: {}  ({elapsed:.2?})",
        s.exhausted, s.truncated
    );
    match (&report.violation, mutation) {
        (None, Mutation::None) => {
            println!(
                "verdict: {}",
                if report.verified() {
                    "VERIFIED (exhaustive within bounds)"
                } else {
                    "clean, but the walk was not exhaustive"
                }
            );
            ExitCode::SUCCESS
        }
        (Some(ce), Mutation::None) => {
            println!("verdict: VIOLATION\n{}", ce.summary());
            ExitCode::FAILURE
        }
        (Some(ce), _) => {
            println!("verdict: mutant caught, as it must be\n{}", ce.summary());
            ExitCode::SUCCESS
        }
        (None, _) => {
            println!("verdict: mutant escaped the bounded walk — raise the bounds");
            ExitCode::FAILURE
        }
    }
}
