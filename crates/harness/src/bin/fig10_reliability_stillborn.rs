//! Regenerates **Fig. 10** of the paper: fraction of processes receiving a
//! published event, per group, under stillborn failures (process state
//! drawn once before round 0, never replaced).
//!
//! Usage: `cargo run --release -p da-harness --bin
//! fig10_reliability_stillborn [--quick]`

use da_harness::experiments::figures::{run_figure, FigureKind};
use da_harness::experiments::{alive_fractions, Effort};
use da_harness::{plot, results_dir};

fn main() {
    let effort = Effort::from_args();
    let table = run_figure(
        FigureKind::Fig10ReliabilityStillborn,
        &effort.scenario(),
        &alive_fractions(),
        effort.trials(),
        0xF1610,
    );
    print!("{}", table.to_markdown());
    print!("{}", plot::ascii_plot(&table, 60, 16));
    let dir = results_dir();
    table.write_to(&dir).expect("write results");
    println!(
        "\nwritten to {}/{}.{{csv,md}}",
        dir.display(),
        table.file_stem()
    );
}
