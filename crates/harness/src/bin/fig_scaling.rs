//! Regenerates the **`O(S·ln S)` scaling claim** (Sec. VI-B): total event
//! messages per publication vs the leaf-group size, with the normalised
//! `messages / (S·lnS)` ratio alongside — flat-or-falling confirms the
//! complexity class.
//!
//! Usage: `cargo run --release -p da-harness --bin fig_scaling [--quick]`

use da_harness::experiments::scaling::run_scaling;
use da_harness::experiments::Effort;
use da_harness::{plot, results_dir};

fn main() {
    let effort = Effort::from_args();
    let sizes: &[usize] = match effort {
        Effort::Quick => &[50, 100, 200, 400],
        Effort::Paper => &[100, 250, 500, 1000, 2000, 4000],
    };
    let table = run_scaling(sizes, effort.trials(), 0x5CA1E);
    print!("{}", table.to_markdown());
    print!("{}", plot::ascii_plot(&table, 60, 16));
    let dir = results_dir();
    table.write_to(&dir).expect("write results");
    println!("\nwritten to {}", dir.display());
}
