//! Regenerates **Fig. 9** of the paper: number of inter-group events
//! (T2→T1 and T1→T0) as the fraction of alive processes varies, under
//! stillborn failures. The paper's observation: even with half the
//! processes failed, at least one event reaches the supergroup.
//!
//! Usage: `cargo run --release -p da-harness --bin fig09_intergroup
//! [--quick]`

use da_harness::experiments::figures::{run_figure, FigureKind};
use da_harness::experiments::{alive_fractions, Effort};
use da_harness::{plot, results_dir};

fn main() {
    let effort = Effort::from_args();
    let table = run_figure(
        FigureKind::Fig09Intergroup,
        &effort.scenario(),
        &alive_fractions(),
        effort.trials(),
        0xF1609,
    );
    print!("{}", table.to_markdown());
    print!("{}", plot::ascii_plot(&table, 60, 16));
    let dir = results_dir();
    table.write_to(&dir).expect("write results");
    println!(
        "\nwritten to {}/{}.{{csv,md}}",
        dir.display(),
        table.file_stem()
    );
}
