//! Compares **delivery reliability live vs simulated**: the same
//! topology, parameters, and single-publication workload executed under
//! `da_simnet::Engine` and `da_runtime::Runtime`, tabulating per-level
//! delivered fractions, parasites, and event-message volume.
//!
//! Usage: `cargo run --release -p da-harness --bin live_vs_sim
//! [--quick]`

use da_harness::experiments::live::run_live_vs_sim;
use da_harness::experiments::Effort;
use da_harness::results_dir;
use damulticast::ParamMap;

fn main() {
    let effort = Effort::from_args();
    let sizes = effort.scenario().group_sizes;
    let params = ParamMap::uniform(effort.scenario().params);
    let table = run_live_vs_sim(&sizes, &params, effort.trials(), 0x11FE);
    print!("{}", table.to_markdown());
    let dir = results_dir();
    table.write_to(&dir).expect("write results");
    println!("\nwritten to {}", dir.display());
}
