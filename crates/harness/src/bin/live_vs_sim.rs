//! Compares **delivery reliability live vs simulated**: the same
//! topology, parameters, and single-publication workload executed under
//! `da_simnet::Engine` and `da_runtime::Runtime` — first over perfect
//! channels (per-level delivered fractions, parasites, event-message
//! volume), then as a reliability sweep over the per-link success
//! probability, checking the substrates agree within 3σ at every point.
//!
//! Usage: `cargo run --release -p da-harness --bin live_vs_sim
//! [--quick]`

use da_harness::experiments::live::{
    ratios_agree_within_3_sigma, reliability_sweep_probabilities, run_live_vs_sim,
    run_reliability_sweep,
};
use da_harness::experiments::Effort;
use da_harness::results_dir;
use damulticast::ParamMap;

fn main() {
    let effort = Effort::from_args();
    let sizes = effort.scenario().group_sizes;
    let params = ParamMap::uniform(effort.scenario().params);
    let table = run_live_vs_sim(&sizes, &params, effort.trials(), 0x11FE);
    print!("{}", table.to_markdown());

    let probs = reliability_sweep_probabilities();
    let sweep = run_reliability_sweep(&sizes, &params, &probs, effort.trials(), 0x5EED);
    print!("\n{}", sweep.to_markdown());
    let mut disagreements = 0u32;
    for row in &sweep.rows {
        let (sim, live) = (&row.values[0], &row.values[1]);
        let agree = ratios_agree_within_3_sigma(sim, live, 0.02);
        disagreements += u32::from(!agree);
        println!(
            "p = {:.2}: sim {:.4} vs live {:.4} — {}",
            row.x,
            sim.mean,
            live.mean,
            if agree {
                "within 3σ"
            } else {
                "DISAGREE beyond 3σ"
            }
        );
    }

    let dir = results_dir();
    table.write_to(&dir).expect("write results");
    sweep.write_to(&dir).expect("write sweep results");
    println!("\nwritten to {}", dir.display());
    if disagreements > 0 {
        eprintln!("{disagreements} sweep point(s) disagree beyond 3σ");
        std::process::exit(1);
    }
}
