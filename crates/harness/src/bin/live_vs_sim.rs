//! Compares **delivery reliability live vs simulated**: the same
//! topology, parameters, and single-publication workload executed under
//! `da_simnet::Engine` and `da_runtime::Runtime` — first over perfect
//! channels (per-level delivered fractions, parasites, event-message
//! volume), then as a reliability sweep over the per-link success
//! probability, a churn sweep over the per-tick crash probability, and
//! a partition sweep over the cut-and-heal tick, checking the
//! substrates agree within 3σ at every point. Every sweep drives both
//! substrates through the unified `FaultConfig`. A flight-recorder
//! trace diff closes the run: the same-seed sim/live canonical event
//! streams must be bit-identical, and a deliberately lossy pair must
//! report a correct first-divergent event.
//!
//! Usage: `cargo run --release -p da-harness --bin live_vs_sim
//! [--quick] [--json]`
//!
//! `--json` prints every table as one machine-readable JSON document on
//! stdout (for CI artifacts) instead of the Markdown renderings; the
//! per-row 3σ verdicts move to stderr so stdout stays pure JSON.

use da_harness::experiments::live::{
    churn_sweep_crash_rates, partition_sweep_heal_ticks, ratios_agree_within_3_sigma,
    reliability_sweep_probabilities, run_churn_sweep, run_live_vs_sim, run_partition_sweep,
    run_reliability_sweep,
};
use da_harness::experiments::trace::run_trace_diff;
use da_harness::experiments::Effort;
use da_harness::report::{KeyedTable, SeriesTable};
use da_harness::results_dir;
use da_simnet::{ChannelConfig, FailureModel, FaultConfig, Latency};
use damulticast::ParamMap;

fn check_rows(table: &SeriesTable, label: &str, json: bool, disagreements: &mut u32) {
    for row in &table.rows {
        let (sim, live) = (&row.values[0], &row.values[1]);
        let agree = ratios_agree_within_3_sigma(sim, live, 0.02);
        *disagreements += u32::from(!agree);
        let line = format!(
            "{label} = {:.2}: sim {:.4} vs live {:.4} — {}",
            row.x,
            sim.mean,
            live.mean,
            if agree {
                "within 3σ"
            } else {
                "DISAGREE beyond 3σ"
            }
        );
        // Keep stdout pure JSON in --json mode.
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
}

fn main() {
    let effort = Effort::from_args();
    let json = std::env::args().any(|a| a == "--json");
    let sizes = effort.scenario().group_sizes;
    let params = ParamMap::uniform(effort.scenario().params);
    let table = run_live_vs_sim(&sizes, &params, effort.trials(), 0x11FE);
    if !json {
        print!("{}", table.to_markdown());
    }

    let probs = reliability_sweep_probabilities();
    let mut disagreements = 0u32;
    let mut sweeps: Vec<SeriesTable> = Vec::new();
    // The PR 3 configuration (one-tick latency, lag 1), then a two-tick
    // latency floor with a wide lag window so the barrier-free
    // scheduler's worker drift is exercised by the same sweep.
    for (latency, max_lag) in [(Latency::Fixed(1), 1u64), (Latency::Fixed(2), 4)] {
        let base = FaultConfig::new().with_channel(ChannelConfig::reliable().with_latency(latency));
        let sweep = run_reliability_sweep(
            &sizes,
            &params,
            &probs,
            &base,
            max_lag,
            effort.trials(),
            0x5EED,
        );
        if !json {
            println!("\nlatency {latency:?}, live max_lag {max_lag}:");
            print!("{}", sweep.to_markdown());
        }
        check_rows(&sweep, "p", json, &mut disagreements);
        if max_lag == 1 {
            let dir = results_dir();
            sweep.write_to(&dir).expect("write sweep results");
        }
        sweeps.push(sweep);
    }

    // The churn sweep: the same comparison with the process failure
    // plan (crash/recovery fates shared across substrates) as the axis.
    let churn_base = FaultConfig::new().with_failures(FailureModel::Churn {
        crash_probability: 0.0,
        recover_probability: 0.3,
    });
    let churn = run_churn_sweep(
        &sizes,
        &params,
        &churn_sweep_crash_rates(),
        &churn_base,
        effort.trials(),
        0xC4A0,
    );
    if !json {
        println!("\nchurn sweep (recover probability 0.3):");
        print!("{}", churn.to_markdown());
    }
    check_rows(&churn, "crash", json, &mut disagreements);

    // The partition sweep: a two-island cut healing at the swept tick
    // (x = -1 never heals), with per-trial bit-identical mainland
    // delivered sets enforced inside the experiment.
    let partition_base = FaultConfig::new();
    let partitions = run_partition_sweep(
        &sizes,
        &params,
        &partition_sweep_heal_ticks(),
        &partition_base,
        1,
        effort.trials(),
        0x9A27,
    );
    if !json {
        println!("\npartition sweep (heal tick; -1 = never heals):");
        print!("{}", partitions.to_markdown());
    }
    check_rows(&partitions, "heal", json, &mut disagreements);

    // The flight-recorder diff: asserts bit-identical same-seed streams
    // (and a correctly reported first divergence on a lossy pair)
    // inside the experiment.
    let population = sizes.iter().sum::<usize>().min(24) as u32;
    let trace_base =
        FaultConfig::new().with_channel(ChannelConfig::reliable().with_latency(Latency::Fixed(1)));
    let trace_diff: KeyedTable = run_trace_diff(population, &trace_base, 0xD1FF, 2, 1);
    if !json {
        println!("\nflight-recorder trace diff (first_divergence -1 = streams identical):");
        print!("{}", trace_diff.to_markdown());
    }

    let dir = results_dir();
    partitions.write_to(&dir).expect("write partition sweep");
    churn.write_to(&dir).expect("write churn sweep results");
    trace_diff.write_to(&dir).expect("write trace diff");
    table.write_to(&dir).expect("write results");

    if json {
        let mut tables: Vec<String> = vec![table.to_json()];
        tables.extend(sweeps.iter().map(SeriesTable::to_json));
        tables.push(churn.to_json());
        tables.push(partitions.to_json());
        tables.push(trace_diff.to_json());
        println!("{{\"tables\":[{}]}}", tables.join(","));
        eprintln!("written to {}", dir.display());
    } else {
        println!("\nwritten to {}", dir.display());
    }
    if disagreements > 0 {
        eprintln!("{disagreements} sweep point(s) disagree beyond 3σ");
        std::process::exit(1);
    }
}
