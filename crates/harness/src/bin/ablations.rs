//! Runs the four **ablations** of DESIGN.md: the `g` election weight, the
//! supertable size `z`, the fanout rule, and the maintenance cadence.
//!
//! Usage: `cargo run --release -p da-harness --bin ablations [--quick]`

use da_harness::experiments::ablations::{
    ablation_fanout, ablation_ga, ablation_maintenance, ablation_z,
};
use da_harness::experiments::Effort;
use da_harness::{plot, results_dir};

fn main() {
    let effort = Effort::from_args();
    let base = effort.scenario();
    let trials = effort.trials();
    let dir = results_dir();

    let ga = ablation_ga(&base, &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0], trials, 0xAB1A);
    print!("{}", ga.to_markdown());
    print!("{}", plot::ascii_plot(&ga, 60, 12));
    ga.write_to(&dir).expect("write results");

    let z = ablation_z(&base, &[1, 2, 3, 5, 8], trials, 0xAB1B);
    print!("{}", z.to_markdown());
    z.write_to(&dir).expect("write results");

    let fanout = ablation_fanout(&base, trials, 0xAB1C);
    print!("{}", fanout.to_markdown());
    fanout.write_to(&dir).expect("write results");

    let maintenance = ablation_maintenance(&[2, 5, 10, 20, 40], trials, 0xAB1D);
    print!("{}", maintenance.to_markdown());
    maintenance.write_to(&dir).expect("write results");

    println!("\nwritten to {}", dir.display());
}
