//! Regenerates **Fig. 11** of the paper: fraction of processes receiving a
//! published event, per group, under the *per-observer* failure model ("a
//! process can appear to be failed for a process while appearing alive for
//! another one"). The paper's observation: reliability is markedly better
//! than Fig. 10's stillborn regime at equal aliveness.
//!
//! Usage: `cargo run --release -p da-harness --bin
//! fig11_reliability_dynamic [--quick]`

use da_harness::experiments::figures::{run_figure, FigureKind};
use da_harness::experiments::{alive_fractions, Effort};
use da_harness::{plot, results_dir};

fn main() {
    let effort = Effort::from_args();
    let table = run_figure(
        FigureKind::Fig11ReliabilityDynamic,
        &effort.scenario(),
        &alive_fractions(),
        effort.trials(),
        0xF1611,
    );
    print!("{}", table.to_markdown());
    print!("{}", plot::ascii_plot(&table, 60, 16));
    let dir = results_dir();
    table.write_to(&dir).expect("write results");
    println!(
        "\nwritten to {}/{}.{{csv,md}}",
        dir.display(),
        table.file_stem()
    );
}
