//! Regenerates the **Sec. VI-E.1/VI-E.2 comparison tables**: measured and
//! analytic message counts and per-process memory for daMulticast and the
//! three baselines, on the same topology with the same `ln(S)+c` fanout
//! and reliable channels.
//!
//! Usage: `cargo run --release -p da-harness --bin table_complexity
//! [--quick]`

use da_harness::experiments::tables::run_complexity_table;
use da_harness::experiments::Effort;
use da_harness::results_dir;

fn main() {
    let effort = Effort::from_args();
    let sizes = effort.scenario().group_sizes;
    let table = run_complexity_table(&sizes, effort.trials(), 0x7AB1E);
    print!("{}", table.to_markdown());
    let dir = results_dir();
    table.write_to(&dir).expect("write results");
    println!("\nwritten to {}", dir.display());
}
