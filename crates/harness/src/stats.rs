//! Trial statistics: mean / standard deviation / extrema over repeated
//! simulation runs.

use serde::{Deserialize, Serialize};

/// Summary statistics of one metric across trials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n − 1` denominator; 0 for `n ≤ 1`).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarises `samples`. Returns the zero summary for an empty slice.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Summary {
            count: samples.len(),
            mean,
            std_dev: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// A summary of a single known value (handy for analytic columns).
    #[must_use]
    pub fn exact(value: f64) -> Self {
        Summary {
            count: 1,
            mean: value,
            std_dev: 0.0,
            min: value,
            max: value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[4.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ≈ 2.138.
        assert!((s.std_dev - 2.138_089_935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn exact_summary() {
        let s = Summary::exact(3.5);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
    }
}
