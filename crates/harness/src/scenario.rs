//! The paper's simulation scenario (Sec. VII-A), parameterised.
//!
//! One scenario = one topology (linear chain with per-level group sizes),
//! one parameter set, one failure model, one published event in a chosen
//! group — run to quiescence, with per-group message counts and delivery
//! fractions extracted from the metrics registry.

use crate::stats::Summary;
use da_membership::FanoutRule;
use da_simnet::{ChannelConfig, Engine, FailureModel, ProcessId, SimConfig};
use da_topics::TopicId;
use damulticast::{ParamMap, StaticNetwork, TopicParams};
use serde::{Deserialize, Serialize};

/// Failure regime of a scenario, mirroring the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FailureKind {
    /// Everyone stays alive.
    None,
    /// Fig. 8–10: a fixed fraction is crashed before round 0.
    Stillborn,
    /// Fig. 11: per-transmission aliveness observation.
    PerObserver,
}

impl FailureKind {
    /// Materialises the corresponding [`FailureModel`].
    #[must_use]
    pub fn model(self, alive_fraction: f64) -> FailureModel {
        match self {
            FailureKind::None => FailureModel::None,
            FailureKind::Stillborn => FailureModel::Stillborn { alive_fraction },
            FailureKind::PerObserver => FailureModel::PerObserver { alive_fraction },
        }
    }
}

/// Configuration of one paper scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Group sizes, top-down: `[S_T0, S_T1, …]` (the paper uses
    /// `[10, 100, 1000]`).
    pub group_sizes: Vec<usize>,
    /// Protocol parameters (uniform across topics).
    pub params: TopicParams,
    /// Channel success probability (`0.85` in the paper).
    pub p_succ: f64,
    /// Failure regime.
    pub failure: FailureKind,
    /// Fraction of processes alive (interpretation depends on `failure`).
    pub alive_fraction: f64,
    /// Index of the group the event is published in (the paper publishes
    /// in the bottom-most group).
    pub publish_level: usize,
    /// Safety cap on simulated rounds.
    pub max_rounds: u64,
}

impl ScenarioConfig {
    /// The paper's Sec. VII-A setting: `t = 3`, sizes 10/100/1000,
    /// `b = 3`, `c = 5` (log10 fanout), `g = 5`, `a = 1`, `z = 3`,
    /// `p_succ = 0.85`, events published in `T2`.
    #[must_use]
    pub fn paper_default() -> Self {
        ScenarioConfig {
            group_sizes: vec![10, 100, 1000],
            params: TopicParams::paper_default(),
            p_succ: 0.85,
            failure: FailureKind::Stillborn,
            alive_fraction: 1.0,
            publish_level: 2,
            max_rounds: 64,
        }
    }

    /// A scaled-down variant for quick tests and CI: sizes 5/20/100.
    #[must_use]
    pub fn small() -> Self {
        ScenarioConfig {
            group_sizes: vec![5, 20, 100],
            ..ScenarioConfig::paper_default()
        }
    }

    /// Replaces the failure regime and aliveness.
    #[must_use]
    pub fn with_failure(mut self, failure: FailureKind, alive_fraction: f64) -> Self {
        self.failure = failure;
        self.alive_fraction = alive_fraction;
        self
    }

    /// Replaces the fanout rule.
    #[must_use]
    pub fn with_fanout(mut self, fanout: FanoutRule) -> Self {
        self.params.fanout = fanout;
        self
    }
}

/// Per-group and aggregate measurements of one scenario run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Event messages gossiped inside each group, top-down per level.
    pub intra: Vec<f64>,
    /// Event messages that *arrived* in level `i` from level `i+1`
    /// (length `levels − 1`): `inter_in[0]` is `T1→T0` arrivals
    /// in a 3-level chain... indexed top-down like `group_sizes`.
    pub inter_in: Vec<f64>,
    /// Fraction of **all** group members that delivered the event,
    /// top-down per level — the paper's Fig. 10/11 y-axis ("percentage of
    /// processes receiving a message"); crashed members count against it.
    pub delivered_fraction: Vec<f64>,
    /// Fraction of *alive* group members that delivered the event,
    /// top-down per level — reliability among survivors.
    pub delivered_alive_fraction: Vec<f64>,
    /// Parasite receptions (must be zero for daMulticast).
    pub parasites: f64,
    /// Rounds executed before quiescence (or the cap).
    pub rounds: f64,
    /// Total event messages sent (intra + inter, all groups).
    pub total_event_messages: f64,
}

impl ScenarioOutcome {
    /// Flattens the outcome into the metric vector consumed by
    /// [`crate::runner::run_trials`]: intra per level, then inter_in per
    /// boundary, then delivered fraction per level, then parasites,
    /// rounds, total.
    #[must_use]
    pub fn into_metrics(self) -> Vec<f64> {
        let mut v = self.intra;
        v.extend(self.inter_in);
        v.extend(self.delivered_fraction);
        v.extend(self.delivered_alive_fraction);
        v.push(self.parasites);
        v.push(self.rounds);
        v.push(self.total_event_messages);
        v
    }

    /// Column labels matching [`ScenarioOutcome::into_metrics`] for a
    /// chain of `levels` groups.
    #[must_use]
    pub fn metric_labels(levels: usize) -> Vec<String> {
        let mut labels: Vec<String> = (0..levels).map(|i| format!("intra_t{i}")).collect();
        labels.extend((0..levels - 1).map(|i| format!("inter_t{}_to_t{}", i + 1, i)));
        labels.extend((0..levels).map(|i| format!("delivered_t{i}")));
        labels.extend((0..levels).map(|i| format!("delivered_alive_t{i}")));
        labels.push("parasites".into());
        labels.push("rounds".into());
        labels.push("total_event_messages".into());
        labels
    }
}

/// Runs one seeded scenario and extracts the outcome.
///
/// The publisher is the first *alive* member of the publish-level group
/// (the paper measures dissemination of a published event, so a dead
/// publisher would measure nothing). With stillborn failures the delivery
/// denominator counts alive members only; with per-observer failures
/// everyone is alive.
///
/// # Panics
///
/// Panics when the configuration is invalid (group sizes empty, parameters
/// out of range) — experiment configurations are code, not user input.
#[must_use]
pub fn run_scenario(config: &ScenarioConfig, seed: u64) -> ScenarioOutcome {
    let levels = config.group_sizes.len();
    assert!(levels > 0, "need at least the root group");
    assert!(config.publish_level < levels, "publish level out of range");

    let params = ParamMap::uniform(config.params);
    let net = StaticNetwork::linear(&config.group_sizes, params, seed)
        .expect("scenario topology must be valid");
    let hierarchy = std::sync::Arc::clone(net.hierarchy());
    let groups: Vec<(TopicId, Vec<ProcessId>)> = net
        .groups()
        .iter()
        .map(|g| (g.topic, g.members.clone()))
        .collect();

    let sim = SimConfig::default()
        .with_seed(seed)
        .with_channel(ChannelConfig::default().with_success_probability(config.p_succ))
        .with_failures(config.failure.model(config.alive_fraction));
    let mut engine = Engine::new(sim, net.into_processes());

    // First alive member of the publish group.
    let publisher = groups[config.publish_level]
        .1
        .iter()
        .copied()
        .find(|&p| engine.status(p).is_alive());
    let Some(publisher) = publisher else {
        // The whole publish group is dead: nothing can be measured.
        return ScenarioOutcome {
            intra: vec![0.0; levels],
            inter_in: vec![0.0; levels - 1],
            delivered_fraction: vec![0.0; levels],
            delivered_alive_fraction: vec![0.0; levels],
            parasites: 0.0,
            rounds: 0.0,
            total_event_messages: 0.0,
        };
    };
    let event_id = engine.process_mut(publisher).publish("paper event");
    let rounds = engine.run_until_quiescent(config.max_rounds);

    let mut intra = Vec::with_capacity(levels);
    let mut inter_in = Vec::with_capacity(levels.saturating_sub(1));
    let mut delivered_fraction = Vec::with_capacity(levels);
    let mut delivered_alive_fraction = Vec::with_capacity(levels);
    for (topic, members) in &groups {
        let path = hierarchy.path(*topic).as_str().to_owned();
        intra.push(engine.counters().get(&format!("da.intra.{path}")) as f64);
        let alive: Vec<ProcessId> = members
            .iter()
            .copied()
            .filter(|&p| engine.status(p).is_alive())
            .collect();
        let delivered = alive
            .iter()
            .filter(|&&p| engine.process(p).has_delivered(event_id))
            .count();
        delivered_fraction.push(if members.is_empty() {
            0.0
        } else {
            delivered as f64 / members.len() as f64
        });
        delivered_alive_fraction.push(if alive.is_empty() {
            0.0
        } else {
            delivered as f64 / alive.len() as f64
        });
    }
    for (topic, _) in groups.iter().take(levels - 1) {
        // inter_in at the parent label counts events that crossed into it.
        let path = hierarchy.path(*topic).as_str().to_owned();
        inter_in.push(engine.counters().get(&format!("da.inter_in.{path}")) as f64);
    }

    let total_event_messages = (engine.counters().sum_prefix("da.intra.")
        + engine.counters().sum_prefix("da.inter_out.")) as f64;

    ScenarioOutcome {
        intra,
        inter_in,
        delivered_fraction,
        delivered_alive_fraction,
        parasites: engine.counters().get("da.parasite") as f64,
        rounds: rounds as f64,
        total_event_messages,
    }
}

/// Convenience: run a scenario and flatten the outcome into metric form.
#[must_use]
pub fn run_scenario_metrics(config: &ScenarioConfig, seed: u64) -> Vec<f64> {
    run_scenario(config, seed).into_metrics()
}

/// Summaries → column extraction helper: picks the metric at `index` from
/// each `(x, summaries)` row of a sweep.
#[must_use]
pub fn column(rows: &[(f64, Vec<Summary>)], index: usize) -> Vec<(f64, Summary)> {
    rows.iter().map(|(x, s)| (*x, s[index])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_small_scenario_delivers_everywhere() {
        let config = ScenarioConfig {
            p_succ: 1.0,
            alive_fraction: 1.0,
            ..ScenarioConfig::small()
        };
        let out = run_scenario(&config, 1);
        assert_eq!(out.parasites, 0.0);
        assert!(out.delivered_fraction[2] > 0.99, "leaf group full coverage");
        assert!(out.delivered_fraction[0] > 0.99, "root group full coverage");
        assert!(out.intra[2] > out.intra[1], "bigger groups send more");
        assert!(out.total_event_messages > 0.0);
        assert!(out.rounds > 0.0);
    }

    #[test]
    fn inter_in_counts_boundary_crossings() {
        let config = ScenarioConfig {
            p_succ: 1.0,
            ..ScenarioConfig::small()
        };
        let out = run_scenario(&config, 3);
        assert_eq!(out.inter_in.len(), 2);
        // Both boundaries must have been crossed at least once for the
        // root group to deliver.
        if out.delivered_fraction[0] > 0.0 {
            assert!(out.inter_in[0] >= 1.0, "T1→T0 arrivals");
            assert!(out.inter_in[1] >= 1.0, "T2→T1 arrivals");
        }
    }

    #[test]
    fn stillborn_reduces_messages_and_reliability() {
        let healthy = run_scenario(
            &ScenarioConfig::small().with_failure(FailureKind::Stillborn, 1.0),
            7,
        );
        let half = run_scenario(
            &ScenarioConfig::small().with_failure(FailureKind::Stillborn, 0.5),
            7,
        );
        assert!(half.intra[2] < healthy.intra[2]);
        assert!(half.delivered_fraction[2] <= healthy.delivered_fraction[2] + 1e-9);
    }

    #[test]
    fn fully_dead_population_yields_zero() {
        let out = run_scenario(
            &ScenarioConfig::small().with_failure(FailureKind::Stillborn, 0.0),
            5,
        );
        assert_eq!(out.total_event_messages, 0.0);
        assert_eq!(out.delivered_fraction, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn per_observer_beats_stillborn_at_same_aliveness() {
        // The paper's Fig. 11 vs Fig. 10 claim, averaged over seeds.
        let mut stillborn = 0.0;
        let mut observer = 0.0;
        for seed in 0..8 {
            stillborn += run_scenario(
                &ScenarioConfig::small().with_failure(FailureKind::Stillborn, 0.6),
                seed,
            )
            .delivered_fraction[2];
            observer += run_scenario(
                &ScenarioConfig::small().with_failure(FailureKind::PerObserver, 0.6),
                seed,
            )
            .delivered_fraction[2];
        }
        assert!(
            observer > stillborn,
            "dynamic failures ({observer}) should beat stillborn ({stillborn})"
        );
    }

    #[test]
    fn metrics_roundtrip_matches_labels() {
        let config = ScenarioConfig::small();
        let metrics = run_scenario_metrics(&config, 2);
        let labels = ScenarioOutcome::metric_labels(3);
        assert_eq!(metrics.len(), labels.len());
        assert_eq!(labels[0], "intra_t0");
        assert_eq!(labels[3], "inter_t1_to_t0");
        assert_eq!(labels[5], "delivered_t0");
        assert_eq!(labels[8], "delivered_alive_t0");
        assert_eq!(labels[11], "parasites");
    }

    #[test]
    fn deterministic_per_seed() {
        let config = ScenarioConfig::small();
        assert_eq!(
            run_scenario_metrics(&config, 11),
            run_scenario_metrics(&config, 11)
        );
    }
}
