//! Result tables and their CSV / Markdown renderings.

use crate::stats::Summary;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;

/// A table of summarised series: one row per x-value (e.g. alive
/// fraction), one column per series (e.g. group T2 / T1 / T0).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesTable {
    /// Table title (used as the heading and the output file stem).
    pub title: String,
    /// Label of the x column.
    pub x_label: String,
    /// Labels of the value columns.
    pub columns: Vec<String>,
    /// Rows in ascending x order.
    pub rows: Vec<SeriesRow>,
}

/// One row of a [`SeriesTable`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesRow {
    /// The x value.
    pub x: f64,
    /// One summary per column.
    pub values: Vec<Summary>,
}

impl SeriesTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, columns: Vec<String>) -> Self {
        SeriesTable {
            title: title.into(),
            x_label: x_label.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when `values` has a different length than `columns` — a
    /// programming error in the experiment.
    pub fn push_row(&mut self, x: f64, values: Vec<Summary>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match the column count"
        );
        self.rows.push(SeriesRow { x, values });
    }

    /// Renders the table as CSV with `mean` and `std` columns per series.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", csv_escape(&self.x_label));
        for c in &self.columns {
            let _ = write!(out, ",{}_mean,{}_std", csv_escape(c), csv_escape(c));
        }
        out.push('\n');
        for row in &self.rows {
            let _ = write!(out, "{}", row.x);
            for v in &row.values {
                let _ = write!(out, ",{},{}", fmt_num(v.mean), fmt_num(v.std_dev));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavoured Markdown (mean ± std).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = write!(out, "| {} |", self.x_label);
        for c in &self.columns {
            let _ = write!(out, " {c} |");
        }
        out.push('\n');
        let _ = write!(out, "|---|");
        for _ in &self.columns {
            let _ = write!(out, "---|");
        }
        out.push('\n');
        for row in &self.rows {
            let _ = write!(out, "| {} |", fmt_num(row.x));
            for v in &row.values {
                if v.std_dev > 0.0 {
                    let _ = write!(out, " {} ± {} |", fmt_num(v.mean), fmt_num(v.std_dev));
                } else {
                    let _ = write!(out, " {} |", fmt_num(v.mean));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as a single JSON object — the machine-readable
    /// form CI artifacts consume (`live_vs_sim --json`). Hand-rolled
    /// (the workspace serde shim is marker-only), schema:
    /// `{"title", "x_label", "columns", "rows": [{"x", "values": [summary…]}]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"title\":{},\"x_label\":{},\"columns\":[",
            json_string(&self.title),
            json_string(&self.x_label)
        );
        let _ = write!(out, "{}", json_string_list(&self.columns));
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"x\":{},\"values\":[", json_num(row.x));
            push_summaries(&mut out, &row.values);
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Writes `<stem>.csv` and `<stem>.md` under `dir`, creating the
    /// directory if needed. The stem is the lowercased title with
    /// non-alphanumerics collapsed to `_`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let stem = self.file_stem();
        std::fs::write(dir.join(format!("{stem}.csv")), self.to_csv())?;
        std::fs::write(dir.join(format!("{stem}.md")), self.to_markdown())?;
        Ok(())
    }

    /// The output file stem derived from the title.
    #[must_use]
    pub fn file_stem(&self) -> String {
        file_stem_of(&self.title)
    }
}

/// A table keyed by row label instead of a numeric x — used for the
/// algorithm-comparison tables (Sec. VI-E), where rows are algorithms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeyedTable {
    /// Table title (also the output file stem).
    pub title: String,
    /// Label of the key column.
    pub key_label: String,
    /// Labels of the value columns.
    pub columns: Vec<String>,
    /// `(key, values)` rows.
    pub rows: Vec<(String, Vec<Summary>)>,
}

impl KeyedTable {
    /// Creates an empty keyed table.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        key_label: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        KeyedTable {
            title: title.into(),
            key_label: key_label.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when `values` has a different length than `columns`.
    pub fn push_row(&mut self, key: impl Into<String>, values: Vec<Summary>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match the column count"
        );
        self.rows.push((key.into(), values));
    }

    /// Renders as CSV (mean and std per column).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", csv_escape(&self.key_label));
        for c in &self.columns {
            let _ = write!(out, ",{}_mean,{}_std", csv_escape(c), csv_escape(c));
        }
        out.push('\n');
        for (key, values) in &self.rows {
            let _ = write!(out, "{}", csv_escape(key));
            for v in values {
                let _ = write!(out, ",{},{}", fmt_num(v.mean), fmt_num(v.std_dev));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as GitHub-flavoured Markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = write!(out, "| {} |", self.key_label);
        for c in &self.columns {
            let _ = write!(out, " {c} |");
        }
        out.push('\n');
        let _ = write!(out, "|---|");
        for _ in &self.columns {
            let _ = write!(out, "---|");
        }
        out.push('\n');
        for (key, values) in &self.rows {
            let _ = write!(out, "| {key} |");
            for v in values {
                if v.std_dev > 0.0 {
                    let _ = write!(out, " {} ± {} |", fmt_num(v.mean), fmt_num(v.std_dev));
                } else {
                    let _ = write!(out, " {} |", fmt_num(v.mean));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as a single JSON object (same shape as
    /// [`SeriesTable::to_json`], with `"key"` in place of `"x"`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"title\":{},\"key_label\":{},\"columns\":[",
            json_string(&self.title),
            json_string(&self.key_label)
        );
        let _ = write!(out, "{}", json_string_list(&self.columns));
        out.push_str("],\"rows\":[");
        for (i, (key, values)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"key\":{},\"values\":[", json_string(key));
            push_summaries(&mut out, values);
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Writes `<stem>.csv` and `<stem>.md` under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let stem = file_stem_of(&self.title);
        std::fs::write(dir.join(format!("{stem}.csv")), self.to_csv())?;
        std::fs::write(dir.join(format!("{stem}.md")), self.to_markdown())?;
        Ok(())
    }
}

/// JSON string literal with the escapes the table fields can contain.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_string_list(items: &[String]) -> String {
    items
        .iter()
        .map(|s| json_string(s))
        .collect::<Vec<_>>()
        .join(",")
}

/// Finite floats print naturally; non-finite values (never produced by
/// the experiments, but `f64` admits them) degrade to `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn push_summaries(out: &mut String, values: &[Summary]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"count\":{},\"mean\":{},\"std_dev\":{},\"min\":{},\"max\":{}}}",
            v.count,
            json_num(v.mean),
            json_num(v.std_dev),
            json_num(v.min),
            json_num(v.max)
        );
    }
}

/// Lowercased title with non-alphanumerics collapsed to `_`.
fn file_stem_of(title: &str) -> String {
    let mut stem = String::with_capacity(title.len());
    let mut last_underscore = true;
    for ch in title.chars() {
        if ch.is_ascii_alphanumeric() {
            stem.push(ch.to_ascii_lowercase());
            last_underscore = false;
        } else if !last_underscore {
            stem.push('_');
            last_underscore = true;
        }
    }
    stem.trim_end_matches('_').to_owned()
}

/// Compact numeric formatting: integers verbatim, otherwise 4 significant
/// decimals.
fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> SeriesTable {
        let mut t = SeriesTable::new(
            "Fig 8: events per group",
            "alive_fraction",
            vec!["T2".into(), "T1".into()],
        );
        t.push_row(0.5, vec![Summary::of(&[10.0, 12.0]), Summary::exact(3.0)]);
        t.push_row(1.0, vec![Summary::exact(20.0), Summary::exact(5.0)]);
        t
    }

    #[test]
    fn csv_shape() {
        let csv = sample_table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "alive_fraction,T2_mean,T2_std,T1_mean,T1_std");
        assert!(lines[1].starts_with("0.5,11,"));
        assert!(lines[2].starts_with("1,20,0,5,0"));
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample_table().to_markdown();
        assert!(md.contains("### Fig 8"));
        assert!(md.contains("| alive_fraction | T2 | T1 |"));
        assert!(md.contains("± "), "std dev shown when non-zero");
        assert!(md.contains("| 1 | 20 | 5 |"));
    }

    #[test]
    fn file_stem_sanitised() {
        assert_eq!(sample_table().file_stem(), "fig_8_events_per_group");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = SeriesTable::new("t", "x", vec!["a".into()]);
        t.push_row(0.0, vec![]);
    }

    #[test]
    fn write_creates_files() {
        let dir = std::env::temp_dir().join("da_harness_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        sample_table().write_to(&dir).unwrap();
        assert!(dir.join("fig_8_events_per_group.csv").exists());
        assert!(dir.join("fig_8_events_per_group.md").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_escaping() {
        let mut t = SeriesTable::new("t", "x,with comma", vec!["a\"b".into()]);
        t.push_row(1.0, vec![Summary::exact(1.0)]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"x,with comma\",\"a\"\"b\"_mean"));
    }

    #[test]
    fn keyed_table_renders() {
        let mut t = KeyedTable::new(
            "Message complexity",
            "algorithm",
            vec!["measured".into(), "analytic".into()],
        );
        t.push_row(
            "daMulticast",
            vec![Summary::exact(100.0), Summary::exact(110.0)],
        );
        t.push_row(
            "broadcast",
            vec![Summary::of(&[200.0, 220.0]), Summary::exact(215.0)],
        );
        let md = t.to_markdown();
        assert!(md.contains("| daMulticast | 100 | 110 |"));
        assert!(md.contains("± "));
        let csv = t.to_csv();
        assert!(csv.starts_with("algorithm,measured_mean,measured_std"));
        assert!(csv.contains("daMulticast,100,0,110,0"));
    }

    #[test]
    fn series_json_is_well_formed() {
        let json = sample_table().to_json();
        assert!(json.starts_with("{\"title\":\"Fig 8: events per group\""));
        assert!(json.contains("\"x_label\":\"alive_fraction\""));
        assert!(json.contains("\"columns\":[\"T2\",\"T1\"]"));
        assert!(json.contains("{\"x\":0.5,\"values\":[{\"count\":2,\"mean\":11,"));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("{\"x\":").count(), 2, "one object per row");
    }

    #[test]
    fn keyed_json_escapes_strings() {
        let mut t = KeyedTable::new("a \"quoted\"\ntitle", "k", vec!["v".into()]);
        t.push_row("row\\one", vec![Summary::exact(1.5)]);
        let json = t.to_json();
        assert!(json.contains("\"title\":\"a \\\"quoted\\\"\\ntitle\""));
        assert!(json.contains("{\"key\":\"row\\\\one\",\"values\":[{\"count\":1,\"mean\":1.5,"));
    }

    #[test]
    fn json_numbers_degrade_nonfinite_to_null() {
        assert_eq!(json_num(2.25), "2.25");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }

    #[test]
    fn keyed_table_writes_files() {
        let dir = std::env::temp_dir().join("da_harness_keyed_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = KeyedTable::new("Tiny Keyed", "k", vec!["v".into()]);
        t.push_row("row", vec![Summary::exact(1.0)]);
        t.write_to(&dir).unwrap();
        assert!(dir.join("tiny_keyed.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
