//! Parallel trial execution.
//!
//! Every experiment repeats each configuration over several seeds and
//! reports summary statistics. Trials are independent simulations, so
//! they run on scoped worker threads (crossbeam) — the simulation kernel
//! itself stays single-threaded and deterministic per seed.

use crate::stats::Summary;
use da_simnet::derive_seed;

/// Runs `trials` independent executions of `run` (seeded deterministically
/// from `base_seed`) and summarises each returned metric across trials.
///
/// `run(seed)` must return the same number of metrics on every call.
///
/// # Panics
///
/// Panics if `run` returns inconsistent metric counts or a worker thread
/// panics.
pub fn run_trials<F>(trials: usize, base_seed: u64, run: F) -> Vec<Summary>
where
    F: Fn(u64) -> Vec<f64> + Sync,
{
    if trials == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map_or(4, std::num::NonZeroUsize::get)
        .min(trials);
    let results: Vec<Vec<f64>> = crossbeam::thread::scope(|scope| {
        let run = &run;
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            handles.push(scope.spawn(move |_| {
                let mut mine = Vec::new();
                let mut t = worker;
                while t < trials {
                    mine.push((t, run(derive_seed(base_seed, t as u64))));
                    t += threads;
                }
                mine
            }));
        }
        let mut all: Vec<(usize, Vec<f64>)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("trial worker panicked"))
            .collect();
        // Deterministic aggregation order regardless of thread scheduling.
        all.sort_by_key(|(t, _)| *t);
        all.into_iter().map(|(_, m)| m).collect()
    })
    .expect("crossbeam scope failed");

    let width = results[0].len();
    assert!(
        results.iter().all(|r| r.len() == width),
        "every trial must report the same metrics"
    );
    (0..width)
        .map(|m| {
            let samples: Vec<f64> = results.iter().map(|r| r[m]).collect();
            Summary::of(&samples)
        })
        .collect()
}

/// Sweeps `xs`, running [`run_trials`] at every point. Returns
/// `(x, summaries)` pairs in input order. Each sweep point gets an
/// independent seed stream, so adding points never perturbs existing ones.
pub fn sweep<F>(xs: &[f64], trials: usize, base_seed: u64, run: F) -> Vec<(f64, Vec<Summary>)>
where
    F: Fn(f64, u64) -> Vec<f64> + Sync,
{
    xs.iter()
        .enumerate()
        .map(|(i, &x)| {
            let point_seed = derive_seed(base_seed, 0x5EED_0000 + i as u64);
            let summaries = run_trials(trials, point_seed, |seed| run(x, seed));
            (x, summaries)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_aggregate_deterministically() {
        let f = |seed: u64| vec![(seed % 100) as f64, 1.0];
        let a = run_trials(16, 42, f);
        let b = run_trials(16, 42, f);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].mean, b[0].mean, "same seeds, same result");
        assert_eq!(a[1].mean, 1.0);
        assert_eq!(a[0].count, 16);
    }

    #[test]
    fn different_base_seed_changes_samples() {
        let f = |seed: u64| vec![(seed % 1000) as f64];
        let a = run_trials(8, 1, f);
        let b = run_trials(8, 2, f);
        assert_ne!(a[0].mean, b[0].mean);
    }

    #[test]
    fn zero_trials_empty() {
        assert!(run_trials(0, 1, |_| vec![1.0]).is_empty());
    }

    #[test]
    fn sweep_preserves_order_and_isolation() {
        let rows = sweep(&[0.1, 0.2, 0.3], 4, 7, |x, seed| {
            vec![x * 10.0 + (seed % 2) as f64 * 0.0]
        });
        assert_eq!(rows.len(), 3);
        assert!((rows[0].0 - 0.1).abs() < 1e-12);
        assert!((rows[0].1[0].mean - 1.0).abs() < 1e-9);
        assert!((rows[2].1[0].mean - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "same metrics")]
    fn inconsistent_metric_count_panics() {
        let _ = run_trials(4, 1, |seed| {
            if seed % 2 == 0 {
                vec![1.0]
            } else {
                vec![1.0, 2.0]
            }
        });
    }

    #[test]
    fn parallelism_matches_serial_reference() {
        // The mean of f(seed) must match a serial computation exactly.
        let f = |seed: u64| vec![(seed % 17) as f64];
        let summaries = run_trials(32, 9, f);
        let serial: Vec<f64> = (0..32).map(|t| (derive_seed(9, t) % 17) as f64).collect();
        assert!((summaries[0].mean - Summary::of(&serial).mean).abs() < 1e-12);
    }
}
