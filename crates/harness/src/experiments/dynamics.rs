//! Temporal dynamics (extensions beyond the paper's figures):
//!
//! * **propagation latency** — gossip reaches everyone in `O(log S)`
//!   rounds; we measure rounds-to-50%/95%/full coverage of the leaf group
//!   as it grows, a dimension the paper's message-count figures leave
//!   implicit;
//! * **sustained churn** — the paper assumes "processes might crash and
//!   recover" but evaluates only stillborn/per-observer snapshots; here
//!   the full dynamic stack runs under continuous churn and we measure how
//!   delivery degrades with the churn rate.

use crate::report::SeriesTable;
use crate::runner::sweep;
use da_simnet::{ChannelConfig, Engine, FailureModel, ProcessId, SimConfig};
use damulticast::{DynamicNetwork, ParamMap, StaticNetwork, TopicParams};

/// Rounds until 50% / 95% / 100% of the leaf group has delivered one leaf
/// publication, vs the leaf-group size.
#[must_use]
pub fn run_latency(leaf_sizes: &[usize], trials: usize, seed: u64) -> SeriesTable {
    let xs: Vec<f64> = leaf_sizes.iter().map(|&s| s as f64).collect();
    let rows = sweep(&xs, trials, seed, |s, trial_seed| {
        let s = s as usize;
        let net = StaticNetwork::linear(&[10, 100, s], ParamMap::default(), trial_seed)
            .expect("valid topology");
        let leaf_members = net.groups()[2].members.clone();
        let sim = SimConfig::default()
            .with_seed(trial_seed)
            .with_channel(ChannelConfig::paper_default());
        let mut engine = Engine::new(sim, net.into_processes());
        let id = engine.process_mut(leaf_members[0]).publish("latency probe");

        let mut reached_half = f64::NAN;
        let mut reached_95 = f64::NAN;
        let mut reached_all = f64::NAN;
        for round in 0..96u64 {
            engine.step_round();
            let got = leaf_members
                .iter()
                .filter(|&&p| engine.process(p).has_delivered(id))
                .count();
            let frac = got as f64 / leaf_members.len() as f64;
            if reached_half.is_nan() && frac >= 0.5 {
                reached_half = round as f64;
            }
            if reached_95.is_nan() && frac >= 0.95 {
                reached_95 = round as f64;
            }
            if reached_all.is_nan() && got == leaf_members.len() {
                reached_all = round as f64;
                break;
            }
        }
        // Unreached thresholds (possible for 100% under channel loss)
        // count as the cap — they pull the mean up honestly.
        vec![
            if reached_half.is_nan() {
                96.0
            } else {
                reached_half
            },
            if reached_95.is_nan() {
                96.0
            } else {
                reached_95
            },
            if reached_all.is_nan() {
                96.0
            } else {
                reached_all
            },
        ]
    });
    let mut table = SeriesTable::new(
        "Dynamics propagation latency",
        "leaf group size S",
        vec![
            "rounds to 50%".into(),
            "rounds to 95%".into(),
            "rounds to 100% (capped 96)".into(),
        ],
    );
    for (x, summaries) in rows {
        table.push_row(x, summaries);
    }
    table
}

/// Delivery under sustained churn: the dynamic stack runs with per-round
/// crash/recovery at a fixed stationary aliveness of 75%, sweeping the
/// *churn intensity* (how fast processes cycle). Faster churn stresses
/// the maintenance task harder.
#[must_use]
pub fn run_churn(crash_rates: &[f64], trials: usize, seed: u64) -> SeriesTable {
    let xs: Vec<f64> = crash_rates.to_vec();
    let rows = sweep(&xs, trials, seed, |crash, trial_seed| {
        // recover = 3·crash → stationary aliveness 0.75 at any intensity.
        let recover = (crash * 3.0).min(1.0);
        let params = TopicParams {
            maintenance_period: 5,
            ping_timeout: 2,
            g: 15.0,
            a: 3.0,
            ..TopicParams::paper_default()
        };
        let net = DynamicNetwork::linear(&[8, 40], ParamMap::uniform(params), 3, 4, trial_seed)
            .expect("valid dynamic topology");
        let groups = net.groups().to_vec();
        let sim = SimConfig::default()
            .with_seed(trial_seed)
            .with_failures(FailureModel::Churn {
                crash_probability: crash,
                recover_probability: recover,
            });
        let mut engine = Engine::new(sim, net.into_processes());
        engine.run_rounds(60); // bootstrap + reach churn stationarity

        // Publish 5 events from alive leaves, spaced out.
        let mut ids = Vec::new();
        for i in 0..5 {
            let publisher = groups[1]
                .members
                .iter()
                .copied()
                .cycle()
                .skip(i * 7)
                .find(|&p| engine.status(p).is_alive());
            if let Some(p) = publisher {
                ids.push(engine.process_mut(p).publish(format!("churn {i}")));
            }
            engine.run_rounds(10);
        }
        engine.run_rounds(30);

        // Delivery among currently-alive leaf members, averaged over events.
        let alive_leaves: Vec<ProcessId> = groups[1]
            .members
            .iter()
            .copied()
            .filter(|&p| engine.status(p).is_alive())
            .collect();
        let mut leaf_frac = 0.0;
        let mut root_frac = 0.0;
        let alive_roots: Vec<ProcessId> = groups[0]
            .members
            .iter()
            .copied()
            .filter(|&p| engine.status(p).is_alive())
            .collect();
        for &id in &ids {
            if !alive_leaves.is_empty() {
                leaf_frac += alive_leaves
                    .iter()
                    .filter(|&&p| engine.process(p).has_delivered(id))
                    .count() as f64
                    / (alive_leaves.len() * ids.len()) as f64;
            }
            if !alive_roots.is_empty() {
                root_frac += alive_roots
                    .iter()
                    .filter(|&&p| engine.process(p).has_delivered(id))
                    .count() as f64
                    / (alive_roots.len() * ids.len()) as f64;
            }
        }
        vec![leaf_frac, root_frac]
    });
    let mut table = SeriesTable::new(
        "Dynamics sustained churn",
        "per-round crash probability",
        vec![
            "leaf delivery (alive members)".into(),
            "root delivery (alive members)".into(),
        ],
    );
    for (x, summaries) in rows {
        table.push_row(x, summaries);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_slowly_with_size() {
        let t = run_latency(&[50, 400], 3, 31);
        assert_eq!(t.rows.len(), 2);
        let small = t.rows[0].values[0].mean;
        let large = t.rows[1].values[0].mean;
        // log-ish growth: 8× the population must cost far less than 8×
        // the rounds.
        assert!(large <= small * 3.0, "50%-latency {small} → {large}");
        // Thresholds are ordered.
        for row in &t.rows {
            assert!(row.values[0].mean <= row.values[1].mean);
            assert!(row.values[1].mean <= row.values[2].mean);
        }
    }

    #[test]
    fn gentle_churn_tolerated() {
        let t = run_churn(&[0.002, 0.05], 3, 32);
        assert_eq!(t.rows.len(), 2);
        let gentle = &t.rows[0];
        assert!(
            gentle.values[0].mean > 0.6,
            "gentle churn leaf delivery {}",
            gentle.values[0].mean
        );
        // All values are probabilities.
        for row in &t.rows {
            for v in &row.values {
                assert!((0.0..=1.0 + 1e-9).contains(&v.mean));
            }
        }
    }
}
