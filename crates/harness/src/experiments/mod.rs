//! One module per figure/table of the paper's evaluation, plus the
//! ablations DESIGN.md calls out. Every module exposes a `run` function
//! returning renderable tables; the `bin/` targets are thin wrappers.

pub mod ablations;
pub mod dynamics;
pub mod figures;
pub mod live;
pub mod mc;
pub mod parasites;
pub mod scaling;
pub mod tables;
pub mod trace;

/// Shared sweep axis of Figs. 8–11: the fraction of alive processes,
/// 0.0 to 1.0 in steps of 0.05 (the paper's x-axis).
#[must_use]
pub fn alive_fractions() -> Vec<f64> {
    (0..=20).map(|i| f64::from(i) * 0.05).collect()
}

/// Effort preset for experiment binaries: `quick` for smoke runs and CI,
/// `paper` for full-scale reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Scaled-down topology, few trials — seconds.
    Quick,
    /// The paper's 1110-process topology, many trials — minutes.
    Paper,
}

impl Effort {
    /// Parses process arguments: `--quick` selects [`Effort::Quick`];
    /// default is [`Effort::Paper`].
    #[must_use]
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Effort::Quick
        } else {
            Effort::Paper
        }
    }

    /// Trials per sweep point.
    #[must_use]
    pub fn trials(self) -> usize {
        match self {
            Effort::Quick => 5,
            Effort::Paper => 20,
        }
    }

    /// The scenario preset.
    #[must_use]
    pub fn scenario(self) -> crate::scenario::ScenarioConfig {
        match self {
            Effort::Quick => crate::scenario::ScenarioConfig::small(),
            Effort::Paper => crate::scenario::ScenarioConfig::paper_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_axis_matches_paper() {
        let xs = alive_fractions();
        assert_eq!(xs.len(), 21);
        assert_eq!(xs[0], 0.0);
        assert!((xs[20] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn effort_presets() {
        assert!(Effort::Paper.trials() > Effort::Quick.trials());
        assert_eq!(Effort::Quick.scenario().group_sizes, vec![5, 20, 100]);
        assert_eq!(Effort::Paper.scenario().group_sizes, vec![10, 100, 1000]);
    }
}
