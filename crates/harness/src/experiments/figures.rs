//! Figures 8–11 of the paper: per-group message counts, inter-group
//! message counts, and delivery reliability, swept over the fraction of
//! alive processes.
//!
//! The four figures share one underlying sweep; they differ only in the
//! failure model (stillborn vs per-observer) and in which metrics are
//! extracted. [`FigureKind`] selects the figure.

use crate::report::SeriesTable;
use crate::runner::sweep;
use crate::scenario::{run_scenario_metrics, FailureKind, ScenarioConfig};

/// Which of the paper's four evaluation figures to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureKind {
    /// Fig. 8 — events sent within each group vs alive fraction
    /// (stillborn failures).
    Fig08GroupMessages,
    /// Fig. 9 — events crossing group boundaries vs alive fraction
    /// (stillborn failures).
    Fig09Intergroup,
    /// Fig. 10 — fraction of processes receiving the event, per group
    /// (stillborn failures).
    Fig10ReliabilityStillborn,
    /// Fig. 11 — same as Fig. 10 under per-observer ("weakly consistent")
    /// failures.
    Fig11ReliabilityDynamic,
}

impl FigureKind {
    /// The figure's title, as used in report files.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            FigureKind::Fig08GroupMessages => "Fig 08 events sent in each group",
            FigureKind::Fig09Intergroup => "Fig 09 intergroup events",
            FigureKind::Fig10ReliabilityStillborn => "Fig 10 reliability stillborn",
            FigureKind::Fig11ReliabilityDynamic => "Fig 11 reliability dynamic",
        }
    }

    /// The failure model this figure uses.
    #[must_use]
    pub fn failure(self) -> FailureKind {
        match self {
            FigureKind::Fig11ReliabilityDynamic => FailureKind::PerObserver,
            _ => FailureKind::Stillborn,
        }
    }
}

/// Regenerates one of Figs. 8–11: sweeps `alive_fractions` with `trials`
/// seeded runs per point over `base` (whose failure kind is overridden by
/// the figure's).
#[must_use]
pub fn run_figure(
    kind: FigureKind,
    base: &ScenarioConfig,
    alive_fractions: &[f64],
    trials: usize,
    seed: u64,
) -> SeriesTable {
    let levels = base.group_sizes.len();
    let rows = sweep(alive_fractions, trials, seed, |alive, trial_seed| {
        let config = base.clone().with_failure(kind.failure(), alive);
        run_scenario_metrics(&config, trial_seed)
    });

    // Metric layout (see ScenarioOutcome::into_metrics):
    // [0..levels)                intra per level (top-down)
    // [levels..2·levels-1)       inter_in per boundary
    // [2·levels-1..3·levels-1)   delivered fraction per level
    let (columns, indices): (Vec<String>, Vec<usize>) = match kind {
        FigureKind::Fig08GroupMessages => (
            // The paper plots bottom-up: T2 dominates the figure.
            (0..levels).rev().map(|l| format!("group T{l}")).collect(),
            (0..levels).rev().collect(),
        ),
        FigureKind::Fig09Intergroup => (
            (1..levels)
                .rev()
                .map(|l| format!("T{l} to T{}", l - 1))
                .collect(),
            // inter_in[i] (metric index levels + i) counts arrivals at
            // level i from level i+1; boundary "Tl→T(l-1)" is index l-1.
            (1..levels).rev().map(|l| levels + (l - 1)).collect(),
        ),
        FigureKind::Fig10ReliabilityStillborn | FigureKind::Fig11ReliabilityDynamic => (
            (0..levels).rev().map(|l| format!("group T{l}")).collect(),
            (0..levels).rev().map(|l| 2 * levels - 1 + l).collect(),
        ),
    };

    let mut table = SeriesTable::new(kind.title(), "alive fraction", columns);
    for (x, summaries) in rows {
        let values = indices.iter().map(|&i| summaries[i]).collect();
        table.push_row(x, values);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: FigureKind) -> SeriesTable {
        run_figure(kind, &ScenarioConfig::small(), &[0.4, 1.0], 3, 7)
    }

    #[test]
    fn fig08_shape() {
        let t = quick(FigureKind::Fig08GroupMessages);
        assert_eq!(t.columns, vec!["group T2", "group T1", "group T0"]);
        assert_eq!(t.rows.len(), 2);
        // At full aliveness the leaf group (100 members) sends far more
        // than the root group (5 members).
        let full = &t.rows[1];
        assert!(full.values[0].mean > full.values[2].mean);
        // More failures → fewer messages.
        assert!(t.rows[0].values[0].mean < full.values[0].mean);
    }

    #[test]
    fn fig09_boundaries() {
        let t = quick(FigureKind::Fig09Intergroup);
        assert_eq!(t.columns, vec!["T2 to T1", "T1 to T0"]);
        // At full aliveness at least one event crosses each boundary on
        // average (the paper's claim).
        let full = &t.rows[1];
        assert!(
            full.values[0].mean >= 1.0,
            "T2→T1 = {}",
            full.values[0].mean
        );
    }

    #[test]
    fn fig10_reliability_bounds() {
        let t = quick(FigureKind::Fig10ReliabilityStillborn);
        for row in &t.rows {
            for v in &row.values {
                assert!((0.0..=1.0).contains(&v.mean));
            }
        }
        // Full aliveness: leaf group reliability near 1.
        assert!(t.rows[1].values[0].mean > 0.9);
    }

    #[test]
    fn fig11_beats_fig10_under_failures() {
        let f10 = quick(FigureKind::Fig10ReliabilityStillborn);
        let f11 = quick(FigureKind::Fig11ReliabilityDynamic);
        // At 40% aliveness the per-observer model keeps reliability
        // markedly higher (the paper's headline Fig. 11 observation);
        // compare the leaf group column.
        assert!(
            f11.rows[0].values[0].mean >= f10.rows[0].values[0].mean,
            "dynamic {} < stillborn {}",
            f11.rows[0].values[0].mean,
            f10.rows[0].values[0].mean
        );
    }
}
