//! First-divergence diagnosis between two flight-recorder streams — the
//! observability counterpart of the live-vs-sim reliability sweeps.
//!
//! Both substrates record the same compact `TraceEvent` stream (one
//! event per send / delivery / drop / lifecycle transition, mirroring
//! the envelope-ledger counters). After [canonical
//! ordering](da_simnet::canonicalize) — which erases the live runtime's
//! legitimate within-tick interleaving — a same-seed pair over
//! *deterministic* faults (reliable channels with a fixed latency;
//! scripted or churn process failures, whose draws are `(pid, tick)`
//! hashes shared by both substrates) must be **bit-identical**. When two
//! streams differ, [`first_divergence`]
//! pinpoints the earliest canonical event where they part ways — the
//! exact message (edge, tick, verdict) one substrate saw and the other
//! did not — which is a far sharper diagnostic than two disagreeing
//! counter totals.
//!
//! [`run_trace_diff`] packages the check: a same-seed sim/live pair
//! that must not diverge, and a deliberately lossy-vs-lossless sim pair
//! that must diverge at its first dropped envelope, proving the
//! diagnosis reports real divergences rather than vacuously passing.

use crate::report::KeyedTable;
use crate::stats::Summary;
use da_runtime::{Runtime, RuntimeConfig};
use da_simnet::{
    first_divergence, Ctx, Engine, FaultConfig, ProcessId, Protocol, SimConfig, TraceConfig,
    TraceDivergence, TraceEvent, TraceLog, TraceVerdict, WireSize,
};
use damulticast::{Exec, ExecProtocol};

/// Rounds during which the probe keeps sending; the run's horizon leaves
/// enough tail for every in-flight envelope to land (no
/// `dropped_shutdown` noise in the stream).
const PROBE_SEND_ROUNDS: u64 = 6;

/// Virtual-time horizon of every trace-diff trial.
const PROBE_TICKS: u64 = 16;

/// A deterministic ring-relay probe that runs unchanged on both
/// substrates: each alive process sends one token to the next pid in
/// the first `PROBE_SEND_ROUNDS` (6) rounds. No RNG draws and no
/// order-sensitive state, so its trace stream depends only on the fault
/// config and the seed — the workload under which the substrates'
/// canonical streams must coincide exactly.
#[derive(Debug, Clone)]
pub struct TraceProbe {
    population: u32,
    delivered: u64,
}

impl TraceProbe {
    /// A probe for a `population`-process ring.
    #[must_use]
    pub fn new(population: u32) -> Self {
        TraceProbe {
            population,
            delivered: 0,
        }
    }
}

/// The probe's fixed-size token.
#[derive(Debug, Clone)]
pub struct ProbeToken;

impl WireSize for ProbeToken {
    fn wire_size(&self) -> usize {
        4
    }
}

impl ExecProtocol for TraceProbe {
    type Msg = ProbeToken;

    fn on_message<X: Exec<Msg = ProbeToken>>(
        &mut self,
        _from: ProcessId,
        _msg: ProbeToken,
        _ctx: &mut X,
    ) {
        self.delivered += 1;
    }

    fn on_round<X: Exec<Msg = ProbeToken>>(&mut self, round: u64, ctx: &mut X) {
        if round < PROBE_SEND_ROUNDS {
            let next = ProcessId((ctx.me().0 + 1) % self.population);
            ctx.send(next, ProbeToken);
        }
    }
}

impl Protocol for TraceProbe {
    type Msg = ProbeToken;

    fn on_message(&mut self, from: ProcessId, msg: ProbeToken, ctx: &mut Ctx<'_, ProbeToken>) {
        ExecProtocol::on_message(self, from, msg, ctx);
    }

    fn on_round(&mut self, round: u64, ctx: &mut Ctx<'_, ProbeToken>) {
        ExecProtocol::on_round(self, round, ctx);
    }
}

/// Runs the probe on the simulator under `faults` and returns its trace.
#[must_use]
pub fn sim_probe_trace(population: u32, faults: &FaultConfig, seed: u64) -> TraceLog {
    let config = SimConfig::default()
        .with_seed(seed)
        .with_faults(faults.clone())
        .with_trace(TraceConfig::full());
    let mut engine = Engine::new(
        config,
        (0..population)
            .map(|_| TraceProbe::new(population))
            .collect(),
    );
    engine.run_rounds(PROBE_TICKS);
    engine.trace_log().expect("tracing was enabled")
}

/// Runs the probe on the live runtime under `faults` and returns its
/// merged trace.
#[must_use]
pub fn live_probe_trace(
    population: u32,
    faults: &FaultConfig,
    seed: u64,
    workers: usize,
    max_lag: u64,
) -> TraceLog {
    let config = RuntimeConfig::default()
        .with_seed(seed)
        .with_workers(workers)
        .with_max_lag(max_lag)
        .with_faults(faults.clone())
        .with_trace(TraceConfig::full());
    let mut rt = Runtime::spawn(
        config,
        (0..population)
            .map(|_| TraceProbe::new(population))
            .collect(),
    );
    rt.run_ticks(PROBE_TICKS);
    let out = rt.shutdown();
    out.trace.expect("tracing was enabled")
}

/// The outcome of diffing two canonicalised trace streams.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// Events in the left stream.
    pub left_events: usize,
    /// Events in the right stream.
    pub right_events: usize,
    /// The first canonical event where the streams part ways — `None`
    /// when they are bit-identical.
    pub divergence: Option<TraceDivergence>,
}

impl TraceDiff {
    /// True when the streams are bit-identical after canonical ordering.
    #[must_use]
    pub fn streams_match(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Canonically orders both logs' event streams and reports their first
/// divergence.
#[must_use]
pub fn diff_traces(left: &TraceLog, right: &TraceLog) -> TraceDiff {
    let left_events = left.canonical_events();
    let right_events = right.canonical_events();
    TraceDiff {
        left_events: left_events.len(),
        right_events: right_events.len(),
        divergence: first_divergence(&left_events, &right_events),
    }
}

/// One line of context for a parity-test failure message: where two
/// same-seed streams first diverge, or confirmation that they do not.
/// Proptest shrinkers call this to turn "delivered sets differ" into
/// "the first divergent envelope is `t3 p0→p7 dropped_channel [12B]`".
#[must_use]
pub fn describe_divergence(left: &TraceLog, right: &TraceLog) -> String {
    match diff_traces(left, right).divergence {
        None => "trace streams are identical after canonical ordering".to_owned(),
        Some(d) => format!("trace {d}"),
    }
}

/// Runs the full trace-diff check and tabulates it.
///
/// Row `same_seed_sim_vs_live`: the probe under `faults` (which must be
/// deterministic — fixed-latency reliable channels; process failures
/// are fine) on both substrates from one seed. The canonical streams
/// must be bit-identical.
///
/// Row `lossless_vs_lossy_sim`: the same workload on the simulator,
/// lossless vs 30%-loss channels. The streams must diverge, and the
/// first divergent event must be the lossy run's earliest drop (or the
/// extra envelope a dropped token's absence suppressed) — evidence the
/// diagnosis fires on real differences.
///
/// Columns: events on each side, and the first divergence index
/// (`-1` when the streams match).
///
/// # Panics
///
/// Panics when the same-seed pair diverges or the lossy pair does not —
/// each a violation of the cross-substrate tracing contract.
#[must_use]
pub fn run_trace_diff(
    population: u32,
    faults: &FaultConfig,
    seed: u64,
    workers: usize,
    max_lag: u64,
) -> KeyedTable {
    let mut table = KeyedTable::new(
        "Flight recorder trace diff, live vs simulated",
        "pair",
        vec![
            "events_left".into(),
            "events_right".into(),
            "first_divergence".into(),
        ],
    );

    let sim = sim_probe_trace(population, faults, seed);
    let live = live_probe_trace(population, faults, seed, workers, max_lag);
    let diff = diff_traces(&sim, &live);
    assert!(
        diff.streams_match(),
        "same-seed sim/live streams diverged: {}",
        describe_divergence(&sim, &live)
    );
    push_diff_row(&mut table, "same_seed_sim_vs_live", &diff);

    let lossy_faults = faults
        .clone()
        .with_channel(faults.channel().with_success_probability(0.7));
    let lossy = sim_probe_trace(population, &lossy_faults, seed);
    let diff = diff_traces(&sim, &lossy);
    let divergence = diff
        .divergence
        .as_ref()
        .expect("a 30%-loss run must diverge from the lossless one");
    // In canonical order the streams agree up to the first envelope the
    // lossy channel treated differently, so at least one side of the
    // divergence must carry a drop verdict or a now-missing event.
    let involves_loss = [&divergence.left, &divergence.right]
        .into_iter()
        .flatten()
        .any(|e| e.verdict == TraceVerdict::DroppedChannel)
        || divergence.left.is_none()
        || divergence.right.is_none()
        || divergence.left.as_ref().map(TraceEvent::sort_key)
            != divergence.right.as_ref().map(TraceEvent::sort_key);
    assert!(
        involves_loss,
        "the lossless/lossy divergence must surface the channel's work: {divergence}"
    );
    push_diff_row(&mut table, "lossless_vs_lossy_sim", &diff);
    table
}

fn push_diff_row(table: &mut KeyedTable, key: &str, diff: &TraceDiff) {
    table.push_row(
        key,
        vec![
            Summary::exact(diff.left_events as f64),
            Summary::exact(diff.right_events as f64),
            Summary::exact(diff.divergence.as_ref().map_or(-1.0, |d| d.index as f64)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::{ChannelConfig, FailureModel, Fate, Latency};

    fn deterministic_faults() -> FaultConfig {
        FaultConfig::new().with_channel(ChannelConfig::reliable().with_latency(Latency::Fixed(1)))
    }

    #[test]
    fn same_seed_streams_are_bit_identical_across_substrates() {
        for (workers, max_lag) in [(1usize, 1u64), (3, 1), (4, 4)] {
            let sim = sim_probe_trace(12, &deterministic_faults(), 42);
            let live = live_probe_trace(12, &deterministic_faults(), 42, workers, max_lag);
            let diff = diff_traces(&sim, &live);
            assert!(
                diff.streams_match(),
                "workers={workers} lag={max_lag}: {}",
                describe_divergence(&sim, &live)
            );
            assert!(diff.left_events > 0, "the probe produced traffic");
            assert_eq!(diff.left_events, diff.right_events);
        }
    }

    #[test]
    fn scripted_crashes_stay_fate_matched_in_the_stream() {
        let faults = deterministic_faults().with_failures(FailureModel::Schedule(vec![
            Fate {
                round: 2,
                pid: ProcessId(3),
                crash: true,
            },
            Fate {
                round: 5,
                pid: ProcessId(3),
                crash: false,
            },
        ]));
        let sim = sim_probe_trace(10, &faults, 7);
        let live = live_probe_trace(10, &faults, 7, 3, 1);
        assert!(
            diff_traces(&sim, &live).streams_match(),
            "{}",
            describe_divergence(&sim, &live)
        );
        assert_eq!(sim.count(TraceVerdict::Crashed), 1);
        assert_eq!(sim.count(TraceVerdict::Recovered), 1);
        assert!(sim.count(TraceVerdict::DroppedCrashed) > 0);
    }

    #[test]
    fn churn_draws_are_shared_too() {
        let faults = deterministic_faults().with_failures(FailureModel::Churn {
            crash_probability: 0.1,
            recover_probability: 0.4,
        });
        let sim = sim_probe_trace(12, &faults, 99);
        let live = live_probe_trace(12, &faults, 99, 4, 1);
        assert!(
            diff_traces(&sim, &live).streams_match(),
            "{}",
            describe_divergence(&sim, &live)
        );
        assert!(sim.count(TraceVerdict::Crashed) > 0, "the run saw churn");
    }

    #[test]
    fn trace_diff_table_reports_match_and_divergence() {
        let table = run_trace_diff(12, &deterministic_faults(), 0xD1FF, 3, 1);
        assert_eq!(table.rows.len(), 2);
        let (key, values) = &table.rows[0];
        assert_eq!(key, "same_seed_sim_vs_live");
        assert_eq!(values[2].mean, -1.0, "no divergence on the matched pair");
        let (key, values) = &table.rows[1];
        assert_eq!(key, "lossless_vs_lossy_sim");
        assert!(values[2].mean >= 0.0, "the lossy pair must diverge");
    }

    #[test]
    fn describe_divergence_names_the_event() {
        let sim = sim_probe_trace(8, &deterministic_faults(), 5);
        let lossy = sim_probe_trace(
            8,
            &deterministic_faults()
                .with_channel(ChannelConfig::reliable().with_success_probability(0.5)),
            5,
        );
        let text = describe_divergence(&sim, &lossy);
        assert!(
            text.contains("first divergence"),
            "diagnostic names the divergence: {text}"
        );
        assert_eq!(
            describe_divergence(&sim, &sim),
            "trace streams are identical after canonical ordering"
        );
    }
}
