//! Bounded model checking of the daMulticast protocol itself — the
//! exhaustive counterpart of the statistical reliability sweeps.
//!
//! Figs. 8–11 *sample* executions; [`da_simnet::mc`] *walks* them. This
//! module instantiates the explorer for small single-group
//! dissemination scenarios (3–8 static-mode processes, one publication
//! from process 0) and pins the paper's safety claims as [`Invariant`]s
//! checked in **every reachable state**:
//!
//! * [`NoParasite`] — zero parasite receptions (the paper's headline
//!   claim, Sec. I);
//! * [`NoDuplicateDelivery`] — the Fig. 5 de-dup check holds: no
//!   process delivers the same event twice;
//! * [`SuperTableWithinCapacity`] — the supertable never exceeds its
//!   `z`-bound and never lists its owner (Sec. VI-C memory claim);
//! * [`EnvelopeLedger`] — exact message accounting: every send is
//!   delivered, dropped for a named reason, or still in flight;
//! * [`FullDelivery`] (quiescent states of fault-free explorations
//!   only) — once the system settles, every process has delivered the
//!   publication.
//!
//! A violation comes back as a [`Counterexample`] whose scripted drops
//! and crash fates replay as an ordinary `FaultConfig` on either
//! substrate; `tests/mc_regressions.rs` commits found counterexamples
//! as deterministic regression tests. The [`Mutation::SkipDedup`]
//! variant exists so the checker can demonstrate it actually finds
//! bugs: the mutant must yield a counterexample at the same bounds
//! where the shipped protocol verifies exhaustively.
//!
//! # Cost
//!
//! The walk is exponential: 3 processes with full ordering and one
//! drop explore in well under a second; 5 processes need
//! [`da_simnet::mc::OrderingMode::PerDestination`] and a state cap to stay in CI
//! budgets. See the module docs of [`da_simnet::mc`] for the knobs.

use crate::report::KeyedTable;
use crate::stats::Summary;
use da_simnet::mc::{Counterexample, Explorer, Invariant, McConfig, McReport};
use da_simnet::{Engine, ProcessId, SimConfig};
use damulticast::{DaProcess, EventId, Mutation, ParamMap, StaticNetwork};

/// Seed of the scenario builders (tables are static; the seed only
/// shuffles initial view order).
const MC_SEED: u64 = 0xDA_4C;

/// The event process 0 publishes before round 0 in every scenario.
#[must_use]
pub fn published_event() -> EventId {
    EventId {
        publisher: ProcessId(0),
        sequence: 0,
    }
}

/// The choice-free base configuration every exploration starts from.
#[must_use]
pub fn base_config() -> SimConfig {
    // `SimConfig::default()` is already choice-free: reliable channel,
    // fixed latency 1, no failure model. The explorer validates this.
    SimConfig::default().with_seed(MC_SEED)
}

/// The process vector of the single-group scenario: `population`
/// static-mode processes in one root group, each with `mutation`
/// installed. Exposed so counterexample replays can run the identical
/// population on the live runtime (`tests/mc_regressions.rs`).
///
/// # Panics
///
/// Panics when `population` is zero (the network builder rejects it).
#[must_use]
pub fn single_group_processes(population: usize, mutation: Mutation) -> Vec<DaProcess> {
    StaticNetwork::linear(&[population], ParamMap::default(), MC_SEED)
        .expect("a single positive group size is valid")
        .into_processes()
        .into_iter()
        .map(|p| p.with_mutation(mutation))
        .collect()
}

/// An engine factory for a single root-group of `population`
/// static-mode processes where process 0 publishes one event before
/// the first round. `mutation` installs a deliberate defect on every
/// process ([`Mutation::None`] for the shipped protocol).
pub fn single_group(
    population: usize,
    mutation: Mutation,
) -> impl Fn(SimConfig) -> Engine<DaProcess> {
    move |config| {
        let mut engine = Engine::new(config, single_group_processes(population, mutation));
        engine.process_mut(ProcessId(0)).publish("mc-probe");
        engine
    }
}

/// Zero parasite receptions anywhere, ever (Sec. I claim 4).
pub struct NoParasite;

impl Invariant<DaProcess> for NoParasite {
    fn name(&self) -> &str {
        "no-parasite"
    }

    fn check(&self, engine: &Engine<DaProcess>) -> Result<(), String> {
        for (pid, p) in engine.processes() {
            if p.parasite_count() > 0 {
                return Err(format!(
                    "{pid} received {} parasite event(s)",
                    p.parasite_count()
                ));
            }
        }
        Ok(())
    }
}

/// No process delivers the same event id twice (the Fig. 5 "done only
/// the first time" de-dup check).
pub struct NoDuplicateDelivery;

impl Invariant<DaProcess> for NoDuplicateDelivery {
    fn name(&self) -> &str {
        "no-duplicate-delivery"
    }

    fn check(&self, engine: &Engine<DaProcess>) -> Result<(), String> {
        for (pid, p) in engine.processes() {
            let mut ids: Vec<EventId> = p.delivered().iter().map(|e| e.id()).collect();
            let total = ids.len();
            ids.sort_unstable_by_key(|id| (id.publisher.0, id.sequence));
            ids.dedup();
            if ids.len() != total {
                return Err(format!(
                    "{pid} delivered {} event(s) but only {} distinct id(s)",
                    total,
                    ids.len()
                ));
            }
        }
        Ok(())
    }
}

/// The supertable stays within its configured capacity and never lists
/// its own process (Sec. VI-C: constant `z_Ti` entries).
pub struct SuperTableWithinCapacity;

impl Invariant<DaProcess> for SuperTableWithinCapacity {
    fn name(&self) -> &str {
        "supertable-capacity"
    }

    fn check(&self, engine: &Engine<DaProcess>) -> Result<(), String> {
        for (pid, p) in engine.processes() {
            let table = p.super_table();
            if table.len() > table.capacity() {
                return Err(format!(
                    "{pid} supertable holds {} entries, capacity {}",
                    table.len(),
                    table.capacity()
                ));
            }
            if table.entries().iter().any(|e| e.pid == pid) {
                return Err(format!("{pid} lists itself in its supertable"));
            }
        }
        Ok(())
    }
}

/// Exact envelope accounting: every send the engine ever accepted is
/// delivered, dropped for a named reason, or still in flight. A
/// violation means the substrate lost track of a message.
pub struct EnvelopeLedger;

impl Invariant<DaProcess> for EnvelopeLedger {
    fn name(&self) -> &str {
        "envelope-ledger"
    }

    fn check(&self, engine: &Engine<DaProcess>) -> Result<(), String> {
        let c = engine.counters();
        let sent = c.get("sim.sent");
        let accounted = c.get("sim.delivered")
            + c.get("sim.dropped_channel")
            + c.get("sim.dropped_partitioned")
            + c.get("sim.dropped_dead")
            + c.get("sim.dropped_observed_failed")
            + engine.in_flight() as u64;
        if sent != accounted {
            return Err(format!(
                "{sent} sends but {accounted} accounted (delivered + dropped + in flight)"
            ));
        }
        Ok(())
    }
}

/// At quiescence every process has delivered the publication. Only
/// sound for fault-free explorations (no drop/crash budget): a severed
/// or crashed process legitimately misses events — the paper's
/// reliability under faults is *statistical* (Figs. 10–11), not a
/// safety property.
pub struct FullDelivery;

impl Invariant<DaProcess> for FullDelivery {
    fn name(&self) -> &str {
        "full-delivery"
    }

    fn check(&self, _engine: &Engine<DaProcess>) -> Result<(), String> {
        Ok(())
    }

    fn check_quiescent(&self, engine: &Engine<DaProcess>) -> Result<(), String> {
        let id = published_event();
        for (pid, p) in engine.processes() {
            if !p.has_delivered(id) {
                return Err(format!("{pid} never delivered {id:?} by quiescence"));
            }
        }
        Ok(())
    }
}

/// The safety invariant set for one exploration. [`FullDelivery`] is
/// included only when the exploration injects no faults (see its
/// docs).
#[must_use]
pub fn dissemination_explorer(config: McConfig) -> Explorer<DaProcess> {
    let fault_free = config.drop_budget == 0 && config.crash_budget == 0;
    let explorer = Explorer::new(config)
        .with_invariant(NoParasite)
        .with_invariant(NoDuplicateDelivery)
        .with_invariant(SuperTableWithinCapacity)
        .with_invariant(EnvelopeLedger);
    if fault_free {
        explorer.with_invariant(FullDelivery)
    } else {
        explorer
    }
}

/// Explores the single-group dissemination scenario and returns the
/// report: all interleavings (per `config.ordering`), all drop choices
/// and crash points within the budgets.
#[must_use]
pub fn verify_dissemination(population: usize, config: McConfig, mutation: Mutation) -> McReport {
    dissemination_explorer(config).explore(&base_config(), single_group(population, mutation))
}

/// One row of the mc table: scenario name plus the report it produced.
fn push_report_row(table: &mut KeyedTable, key: &str, report: &McReport) {
    table.push_row(
        key,
        vec![
            Summary::exact(report.stats.states as f64),
            Summary::exact(report.stats.transitions as f64),
            Summary::exact(report.stats.max_round as f64),
            Summary::exact(report.stats.dedup_hits as f64),
            Summary::exact(if report.verified() { 1.0 } else { 0.0 }),
            Summary::exact(if report.violation.is_some() { 1.0 } else { 0.0 }),
        ],
    );
}

/// Runs the standard verification suite and tabulates it:
///
/// * `exhaustive_3proc` — 3 processes, full ordering, one drop and one
///   crash point: every interleaving × drop choice × crash point must
///   verify (the ISSUE's acceptance scenario);
/// * `bounded_5proc` — 5 processes under per-destination partial-order
///   reduction with a state cap: a search, not a proof, but still zero
///   violations;
/// * `mutant_3proc` — the [`Mutation::SkipDedup`] variant at the same
///   bounds as `exhaustive_3proc` must yield a replayable
///   counterexample.
///
/// # Panics
///
/// Panics when the shipped protocol fails to verify or the mutant
/// fails to produce a counterexample — both break the checker's
/// contract.
#[must_use]
pub fn run_mc_suite(max_states_5proc: usize) -> KeyedTable {
    let mut table = KeyedTable::new(
        "Bounded model checking: dissemination safety",
        "scenario",
        vec![
            "states".into(),
            "transitions".into(),
            "max_round".into(),
            "dedup_hits".into(),
            "verified".into(),
            "violation".into(),
        ],
    );

    let exhaustive = verify_dissemination(
        3,
        McConfig {
            max_rounds: 6,
            drop_budget: 1,
            crash_budget: 1,
            ..McConfig::default()
        },
        Mutation::None,
    );
    assert!(
        exhaustive.verified(),
        "3-process dissemination must verify exhaustively: {:?}",
        exhaustive.violation.as_ref().map(Counterexample::summary)
    );
    push_report_row(&mut table, "exhaustive_3proc", &exhaustive);

    let bounded = verify_dissemination(
        5,
        McConfig {
            max_rounds: 5,
            ordering: da_simnet::mc::OrderingMode::PerDestination,
            max_states: max_states_5proc,
            ..McConfig::default()
        },
        Mutation::None,
    );
    assert!(
        bounded.violation.is_none(),
        "5-process bounded search must stay clean: {:?}",
        bounded.violation.as_ref().map(Counterexample::summary)
    );
    push_report_row(&mut table, "bounded_5proc", &bounded);

    let mutant = verify_dissemination(
        3,
        McConfig {
            max_rounds: 6,
            drop_budget: 1,
            crash_budget: 1,
            ..McConfig::default()
        },
        Mutation::SkipDedup,
    );
    assert!(
        mutant.violation.is_some(),
        "the SkipDedup mutant must be caught within the same bounds"
    );
    push_report_row(&mut table, "mutant_3proc", &mutant);

    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::mc::OrderingMode;
    use da_simnet::{FailureModel, FaultConfig};

    /// The ISSUE's acceptance scenario: 3-process dissemination, all
    /// interleavings × per-envelope drop choices × one crash point,
    /// zero violations, exhaustive.
    #[test]
    fn three_process_dissemination_verifies_exhaustively() {
        let report = verify_dissemination(
            3,
            McConfig {
                max_rounds: 6,
                drop_budget: 1,
                crash_budget: 1,
                ..McConfig::default()
            },
            Mutation::None,
        );
        assert!(
            report.verified(),
            "violation: {:?}",
            report.violation.as_ref().map(Counterexample::summary)
        );
        // The protocol reconverges fast, so dedup merges most branches:
        // distinct states stay small while transitions count the real
        // branching (interleavings × drops × crash points).
        assert!(report.stats.transitions > 100, "the walk actually branched");
        assert!(report.stats.dedup_hits > 0);
        assert!(report.stats.quiescent_leaves > 0);
    }

    #[test]
    fn fault_free_exploration_proves_full_delivery() {
        let report = verify_dissemination(3, McConfig::default(), Mutation::None);
        assert!(report.verified());
    }

    /// Satellite 4, harness side: the broken protocol variant yields a
    /// counterexample within the depth bound where the shipped
    /// protocol passes exhaustively — and the counterexample replays
    /// as a scripted FaultConfig.
    #[test]
    fn skip_dedup_mutant_is_caught_and_replayable() {
        let config = McConfig {
            max_rounds: 6,
            ordering: OrderingMode::Fixed,
            ..McConfig::default()
        };
        let clean = verify_dissemination(3, config, Mutation::None);
        assert!(clean.verified(), "shipped protocol passes at these bounds");

        let mutant = verify_dissemination(3, config, Mutation::SkipDedup);
        let ce = mutant.violation.expect("mutant caught at the same bounds");
        assert_eq!(ce.invariant, "no-duplicate-delivery");
        assert!(ce.fifo_replayable, "gossip echo does not need reordering");
        let faults = ce.to_fault_config(&FaultConfig::new());
        assert!(matches!(faults.failure, FailureModel::Schedule(_)));
    }

    #[test]
    fn five_process_bounded_search_stays_clean() {
        let report = verify_dissemination(
            5,
            McConfig {
                max_rounds: 4,
                ordering: OrderingMode::PerDestination,
                max_states: 20_000,
                ..McConfig::default()
            },
            Mutation::None,
        );
        assert!(report.violation.is_none());
    }
}
