//! The comparison tables of Sec. VI-E: message complexity, memory
//! complexity, and the reliability-tuning equivalences, for daMulticast
//! and the three baselines — measured against the analytical model.

use crate::report::{KeyedTable, SeriesTable};
use crate::runner::run_trials;
use crate::scenario::{run_scenario, FailureKind, ScenarioConfig};
use crate::stats::Summary;
use da_analysis::{complexity, memory, tuning};
use da_baselines::{
    build_broadcast_network, build_hierarchical_network, build_multicast_network, InterestMap,
};
use da_membership::FanoutRule;
use da_simnet::{Engine, ProcessId, SimConfig};

/// Levels of the comparison topology, bottom-up, as analysis inputs.
fn analysis_chain(group_sizes: &[usize], c: f64) -> Vec<complexity::GroupLevel> {
    group_sizes
        .iter()
        .rev()
        .map(|&s| complexity::GroupLevel {
            s,
            c,
            g: 5.0,
            a: 1.0,
            z: 3,
            p_succ: 1.0,
        })
        .collect()
}

/// Regenerates the Sec. VI-E.1/VI-E.2 comparison: measured and analytic
/// message counts plus measured and analytic per-process memory, for the
/// four algorithms on the same topology.
///
/// Channels are reliable and the `ln(S) + c` fanout of the analysis is
/// used, so measured counts are directly comparable to the closed forms.
#[must_use]
pub fn run_complexity_table(group_sizes: &[usize], trials: usize, seed: u64) -> KeyedTable {
    let c = 5.0;
    let b = 3.0;
    let fanout = FanoutRule::LnPlusC { c };
    let n: usize = group_sizes.iter().sum();
    let n_groups = (n as f64).sqrt().ceil() as usize;
    let interests = InterestMap::linear(group_sizes);
    let leaf_publisher = ProcessId::from_index(n - 1);
    let chain = analysis_chain(group_sizes, c);

    let mut table = KeyedTable::new(
        "Table complexity comparison",
        "algorithm",
        vec![
            "messages (measured)".into(),
            "messages (analytic)".into(),
            "bandwidth bytes (measured)".into(),
            "memory entries/process (measured)".into(),
            "memory entries/process (analytic)".into(),
        ],
    );

    // --- daMulticast -------------------------------------------------
    let da_config = ScenarioConfig {
        group_sizes: group_sizes.to_vec(),
        p_succ: 1.0,
        failure: FailureKind::None,
        alive_fraction: 1.0,
        ..ScenarioConfig::paper_default()
    }
    .with_fanout(fanout);
    let da = run_trials(trials, seed, |s| {
        let out = run_scenario(&da_config, s);
        // Bandwidth: re-run the same scenario on a raw engine to read the
        // byte counter (the scenario runner reports message counts only).
        let net = damulticast::StaticNetwork::linear(
            group_sizes,
            damulticast::ParamMap::uniform(da_config.params),
            s,
        )
        .expect("valid topology");
        let publisher = net.groups().last().expect("levels").members[0];
        let mut engine = Engine::new(SimConfig::default().with_seed(s), net.into_processes());
        engine.process_mut(publisher).publish("bench");
        engine.run_until_quiescent(64);
        let bytes = engine.counters().get("sim.bytes_sent") as f64;
        vec![out.total_event_messages, bytes]
    });
    // Memory: a leaf subscriber's ln(S)+c topic table plus z supertable
    // entries; measured from a freshly built network.
    let da_mem = {
        let net = damulticast::StaticNetwork::linear(
            group_sizes,
            damulticast::ParamMap::uniform(
                damulticast::TopicParams::paper_default().with_fanout(fanout),
            ),
            seed,
        )
        .expect("valid topology");
        let procs = net.into_processes();
        let total: usize = procs
            .iter()
            .map(damulticast::DaProcess::memory_entries)
            .sum();
        total as f64 / procs.len() as f64
    };
    let leaf_s = *group_sizes.last().expect("non-empty");
    table.push_row(
        "daMulticast",
        vec![
            da[0],
            Summary::exact(complexity::damulticast_messages(&chain)),
            da[1],
            Summary::exact(da_mem),
            Summary::exact(memory::damulticast_memory(leaf_s, c, 3)),
        ],
    );

    // --- gossip broadcast --------------------------------------------
    let bc = run_trials(trials, seed, |s| {
        let procs =
            build_broadcast_network(&interests, b, fanout, s).expect("population non-empty");
        let mem: usize = procs.iter().map(|p| p.memory_entries()).sum();
        let mem = mem as f64 / procs.len() as f64;
        let mut engine = Engine::new(SimConfig::default().with_seed(s), procs);
        engine.process_mut(leaf_publisher).publish("bench");
        engine.run_until_quiescent(64);
        vec![
            engine.counters().get("bc.sent") as f64,
            engine.counters().get("sim.bytes_sent") as f64,
            mem,
        ]
    });
    table.push_row(
        "gossip broadcast",
        vec![
            bc[0],
            Summary::exact(complexity::broadcast_messages(n, c)),
            bc[1],
            bc[2],
            Summary::exact(memory::broadcast_memory(n, c)),
        ],
    );

    // --- gossip multicast ----------------------------------------------
    let mc = run_trials(trials, seed, |s| {
        let procs =
            build_multicast_network(&interests, b, fanout, s).expect("population non-empty");
        let mem: usize = procs.iter().map(|p| p.memory_entries()).sum();
        let mem = mem as f64 / procs.len() as f64;
        let mut engine = Engine::new(SimConfig::default().with_seed(s), procs);
        engine.process_mut(leaf_publisher).publish("bench");
        engine.run_until_quiescent(64);
        vec![
            engine.counters().get("mc.sent") as f64,
            engine.counters().get("sim.bytes_sent") as f64,
            mem,
        ]
    });
    let mc_mem_analytic = {
        // The chain-average: leaf members hold 1 table, root members t.
        let levels: Vec<(usize, f64)> = group_sizes.iter().map(|&s| (s, c)).collect();
        memory::multicast_memory(&levels)
    };
    table.push_row(
        "gossip multicast",
        vec![
            mc[0],
            Summary::exact(complexity::multicast_messages(&chain)),
            mc[1],
            mc[2],
            Summary::exact(mc_mem_analytic),
        ],
    );

    // --- hierarchical broadcast ----------------------------------------
    let hc = run_trials(trials, seed, |s| {
        let procs = build_hierarchical_network(&interests, n_groups, b, fanout, fanout, s)
            .expect("valid partition");
        let mem: usize = procs.iter().map(|p| p.memory_entries()).sum();
        let mem = mem as f64 / procs.len() as f64;
        let mut engine = Engine::new(SimConfig::default().with_seed(s), procs);
        engine.process_mut(leaf_publisher).publish("bench");
        engine.run_until_quiescent(64);
        vec![
            (engine.counters().get("hc.sent_intra") + engine.counters().get("hc.sent_inter"))
                as f64,
            engine.counters().get("sim.bytes_sent") as f64,
            mem,
        ]
    });
    let m = n / n_groups;
    table.push_row(
        "hierarchical broadcast",
        vec![
            hc[0],
            Summary::exact(complexity::hierarchical_messages(n_groups, m, c, c)),
            hc[1],
            hc[2],
            Summary::exact(memory::hierarchical_memory(n_groups, m, c, c)),
        ],
    );

    table
}

/// Regenerates the Sec. VI-E.3 tuning table: for a grid of inter-group
/// propagation probabilities `pit`, the valid `c` ranges against each
/// baseline, the matching `c1` at a reference `c`, and the supertable-size
/// bounds (Appendix eqs. 19, 25, 30).
#[must_use]
pub fn run_tuning_table(t: usize, n: usize, s_t: usize, n_groups: usize) -> SeriesTable {
    let c_ref = 1.0;
    let mut table = SeriesTable::new(
        "Table tuning equivalences",
        "pit",
        vec![
            "c max vs multicast".into(),
            format!("c1 vs multicast at c={c_ref}"),
            "z bound vs multicast".into(),
            "c max vs broadcast".into(),
            format!("c1 vs broadcast at c={c_ref}"),
            "z bound vs broadcast".into(),
            "c min vs hierarchical".into(),
            "c max vs hierarchical".into(),
            "z bound vs hierarchical".into(),
        ],
    );
    for &pit in &[0.90, 0.95, 0.99, 0.995, 0.999] {
        let mc_range = tuning::multicast_c_range(pit);
        let bc_range = tuning::broadcast_c_range(t, pit);
        let hc_range = tuning::hierarchical_c_range(t, n_groups, pit);
        let row = vec![
            Summary::exact(mc_range.hi),
            Summary::exact(tuning::c1_vs_multicast(c_ref, pit).unwrap_or(f64::NAN)),
            Summary::exact(tuning::z_bound_vs_multicast(t, s_t, c_ref, pit)),
            Summary::exact(bc_range.hi),
            Summary::exact(tuning::c1_vs_broadcast(c_ref, t, pit).unwrap_or(f64::NAN)),
            Summary::exact(tuning::z_bound_vs_broadcast(n, s_t, t, c_ref, pit)),
            Summary::exact(hc_range.lo),
            Summary::exact(hc_range.hi),
            Summary::exact(tuning::z_bound_vs_hierarchical(n_groups, t, c_ref, pit)),
        ];
        table.push_row(pit, row);
    }
    table
}

/// Regenerates the measured side of the Sec. VI-E.3 reliability
/// comparison: the four algorithms on one topology under stillborn
/// failures, reporting the fraction of *alive interested* processes that
/// deliver a leaf publication.
///
/// The paper's analytical ordering — multicast ≥ broadcast ≥ daMulticast
/// ≥ hierarchical in the general case, with daMulticast tunable into the
/// pack — should be visible at the failure levels where the inter-group
/// links are stressed.
#[must_use]
pub fn run_reliability_table(
    group_sizes: &[usize],
    alive_fractions: &[f64],
    trials: usize,
    seed: u64,
) -> SeriesTable {
    let b = 3.0;
    let fanout = FanoutRule::LnPlusC { c: 5.0 };
    let n: usize = group_sizes.iter().sum();
    let n_groups = (n as f64).sqrt().ceil() as usize;
    let interests = InterestMap::linear(group_sizes);

    let mut table = SeriesTable::new(
        "Table reliability comparison",
        "alive fraction",
        vec![
            "daMulticast".into(),
            "gossip broadcast".into(),
            "gossip multicast".into(),
            "hierarchical broadcast".into(),
        ],
    );

    for &alive in alive_fractions {
        // daMulticast through the scenario runner.
        let da_config = ScenarioConfig {
            group_sizes: group_sizes.to_vec(),
            p_succ: 1.0,
            ..ScenarioConfig::paper_default()
        }
        .with_fanout(fanout)
        .with_failure(FailureKind::Stillborn, alive);
        let da = run_trials(trials, seed, |s| {
            let out = run_scenario(&da_config, s);
            // Mean over levels of the survivors' delivery fraction.
            let mean = out.delivered_alive_fraction.iter().sum::<f64>()
                / out.delivered_alive_fraction.len() as f64;
            vec![mean]
        })[0];

        // Baselines: publish at the first alive leaf; measure the fraction
        // of alive interested processes that delivered.
        let baseline = |which: &str, s: u64| -> f64 {
            let sim = SimConfig::default().with_seed(s).with_failures(
                da_simnet::FailureModel::Stillborn {
                    alive_fraction: alive,
                },
            );
            macro_rules! run_with {
                ($procs:expr, $delivered:expr) => {{
                    let mut engine = Engine::new(sim, $procs);
                    let publisher = (0..n)
                        .rev()
                        .map(ProcessId::from_index)
                        .find(|&p| engine.status(p).is_alive());
                    let Some(publisher) = publisher else {
                        return 0.0;
                    };
                    let id = engine.process_mut(publisher).publish("rel");
                    engine.run_until_quiescent(96);
                    let audience: Vec<ProcessId> = (0..n)
                        .map(ProcessId::from_index)
                        .filter(|&p| engine.status(p).is_alive())
                        .collect();
                    let got = audience
                        .iter()
                        .filter(|&&p| $delivered(&engine, p, id))
                        .count();
                    got as f64 / audience.len().max(1) as f64
                }};
            }
            match which {
                "bc" => {
                    let procs = build_broadcast_network(&interests, b, fanout, s).unwrap();
                    run_with!(procs, |e: &Engine<da_baselines::BroadcastProcess>,
                                      p: ProcessId,
                                      id| e
                        .process(p)
                        .log()
                        .has_delivered(id))
                }
                "mc" => {
                    let procs = build_multicast_network(&interests, b, fanout, s).unwrap();
                    run_with!(procs, |e: &Engine<da_baselines::MulticastProcess>,
                                      p: ProcessId,
                                      id| e
                        .process(p)
                        .log()
                        .has_delivered(id))
                }
                _ => {
                    let procs =
                        build_hierarchical_network(&interests, n_groups, b, fanout, fanout, s)
                            .unwrap();
                    run_with!(procs, |e: &Engine<da_baselines::HierarchicalProcess>,
                                      p: ProcessId,
                                      id| e
                        .process(p)
                        .log()
                        .has_delivered(id))
                }
            }
        };
        let bc = run_trials(trials, seed, |s| vec![baseline("bc", s)])[0];
        let mc = run_trials(trials, seed, |s| vec![baseline("mc", s)])[0];
        let hc = run_trials(trials, seed, |s| vec![baseline("hc", s)])[0];

        table.push_row(alive, vec![da, bc, mc, hc]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_table_small_scale() {
        let t = run_complexity_table(&[3, 10, 40], 3, 5);
        assert_eq!(t.rows.len(), 4);
        let da_measured = t.rows[0].1[0].mean;
        let bc_measured = t.rows[1].1[0].mean;
        assert!(
            bc_measured > da_measured,
            "broadcast ({bc_measured}) must out-message daMulticast ({da_measured})"
        );
        // Measured counts land within 3× of the closed forms (the
        // analysis counts one send per infected process; gossip's
        // duplicate receipts add a constant factor).
        for (name, values) in &t.rows {
            let measured = values[0].mean;
            let analytic = values[1].mean;
            assert!(
                measured < analytic * 3.0 + 100.0,
                "{name}: measured {measured} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn memory_ordering_matches_paper() {
        let t = run_complexity_table(&[3, 10, 40], 2, 8);
        let mem = |i: usize| t.rows[i].1[3].mean;
        // daMulticast's measured memory stays below gossip multicast's.
        assert!(
            mem(0) < mem(2),
            "daMulticast {} should beat multicast {}",
            mem(0),
            mem(2)
        );
    }

    #[test]
    fn tuning_table_has_all_rows() {
        let t = run_tuning_table(3, 1110, 1000, 33);
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            // z bound vs multicast must admit the paper's z = 3 at high pit.
            if row.x >= 0.99 {
                assert!(row.values[2].mean > 3.0);
            }
        }
    }

    #[test]
    fn reliability_table_orders_algorithms() {
        let t = run_reliability_table(&[3, 10, 40], &[1.0, 0.6], 4, 21);
        assert_eq!(t.rows.len(), 2);
        // At full aliveness all four algorithms blanket the survivors.
        let full = &t.rows[0];
        for v in &full.values {
            assert!(v.mean > 0.9, "full-aliveness reliability {}", v.mean);
        }
        // Under failures every value is still a probability.
        for v in &t.rows[1].values {
            assert!((0.0..=1.0).contains(&v.mean));
        }
    }
}
