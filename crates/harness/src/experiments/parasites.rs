//! The parasite-message claim (Sec. I and VI-E of the paper): daMulticast
//! never delivers an event to a process that did not subscribe to its
//! topic; interest-oblivious baselines cannot avoid it.
//!
//! The worst case for the baselines is an event published on the *root*
//! topic of the paper's topology: only the 10 root subscribers want it,
//! yet broadcast and hierarchical broadcast push it through all 1110
//! processes.

use crate::report::KeyedTable;
use crate::runner::run_trials;
use crate::scenario::{run_scenario, FailureKind, ScenarioConfig};
use da_baselines::{
    build_broadcast_network, build_hierarchical_network, build_multicast_network, InterestMap,
};
use da_membership::FanoutRule;
use da_simnet::{Engine, ProcessId, SimConfig};

/// Runs the four algorithms with one root-topic publication each and
/// tabulates deliveries, parasites, and event traffic.
#[must_use]
pub fn run_parasite_table(group_sizes: &[usize], trials: usize, seed: u64) -> KeyedTable {
    let b = 3.0;
    let fanout = FanoutRule::LnPlusC { c: 5.0 };
    let n: usize = group_sizes.iter().sum();
    let n_groups = (n as f64).sqrt().ceil() as usize;
    let interests = InterestMap::linear(group_sizes);
    let root_publisher = ProcessId(0);

    let mut table = KeyedTable::new(
        "Table parasite messages",
        "algorithm",
        vec![
            "deliveries".into(),
            "parasite receptions".into(),
            "event messages sent".into(),
        ],
    );

    // daMulticast: publish in the root group.
    let da_config = ScenarioConfig {
        group_sizes: group_sizes.to_vec(),
        publish_level: 0,
        p_succ: 1.0,
        failure: FailureKind::None,
        alive_fraction: 1.0,
        ..ScenarioConfig::paper_default()
    }
    .with_fanout(fanout);
    let da = run_trials(trials, seed, |s| {
        let out = run_scenario(&da_config, s);
        let delivered_root = out.delivered_fraction[0] * group_sizes[0] as f64;
        vec![delivered_root, out.parasites, out.total_event_messages]
    });
    table.push_row("daMulticast", da);

    let bc = run_trials(trials, seed, |s| {
        let procs =
            build_broadcast_network(&interests, b, fanout, s).expect("population non-empty");
        let mut engine = Engine::new(SimConfig::default().with_seed(s), procs);
        engine.process_mut(root_publisher).publish("root news");
        engine.run_until_quiescent(64);
        vec![
            engine.counters().get("bc.delivered") as f64,
            engine.counters().get("bc.parasite") as f64,
            engine.counters().get("bc.sent") as f64,
        ]
    });
    table.push_row("gossip broadcast", bc);

    let mc = run_trials(trials, seed, |s| {
        let procs =
            build_multicast_network(&interests, b, fanout, s).expect("population non-empty");
        let mut engine = Engine::new(SimConfig::default().with_seed(s), procs);
        engine.process_mut(root_publisher).publish("root news");
        engine.run_until_quiescent(64);
        vec![
            engine.counters().get("mc.delivered") as f64,
            engine.counters().get("mc.parasite") as f64,
            engine.counters().get("mc.sent") as f64,
        ]
    });
    table.push_row("gossip multicast", mc);

    let hc = run_trials(trials, seed, |s| {
        let procs = build_hierarchical_network(&interests, n_groups, b, fanout, fanout, s)
            .expect("valid partition");
        let mut engine = Engine::new(SimConfig::default().with_seed(s), procs);
        engine.process_mut(root_publisher).publish("root news");
        engine.run_until_quiescent(64);
        vec![
            engine.counters().get("hc.delivered") as f64,
            engine.counters().get("hc.parasite") as f64,
            (engine.counters().get("hc.sent_intra") + engine.counters().get("hc.sent_inter"))
                as f64,
        ]
    });
    table.push_row("hierarchical broadcast", hc);

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parasite_freedom_separates_the_algorithms() {
        let t = run_parasite_table(&[4, 10, 40], 3, 9);
        let parasites = |i: usize| t.rows[i].1[1].mean;
        assert_eq!(parasites(0), 0.0, "daMulticast");
        assert!(parasites(1) > 10.0, "broadcast breeds parasites");
        assert_eq!(parasites(2), 0.0, "multicast groups match interests");
        assert!(parasites(3) > 10.0, "hierarchical breeds parasites");
    }

    #[test]
    fn interest_scoped_algorithms_send_less() {
        let t = run_parasite_table(&[4, 10, 40], 3, 10);
        let sent = |i: usize| t.rows[i].1[2].mean;
        assert!(
            sent(0) < sent(1),
            "daMulticast {} vs broadcast {}",
            sent(0),
            sent(1)
        );
        assert!(
            sent(2) < sent(1),
            "multicast beats broadcast on root events"
        );
    }
}
