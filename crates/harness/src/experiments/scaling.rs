//! The `O(S·ln S)` scalability claim (Sec. VI-B): total event messages per
//! publication grow as `S·ln(S)` in the size of the biggest group.

use crate::report::SeriesTable;
use crate::runner::sweep;
use crate::scenario::{run_scenario, FailureKind, ScenarioConfig};
use da_membership::FanoutRule;

/// Sweeps the leaf-group size and records total event messages plus the
/// normalised ratio `messages / (S·ln S)` — flat-or-falling confirms the
/// complexity class.
#[must_use]
pub fn run_scaling(leaf_sizes: &[usize], trials: usize, seed: u64) -> SeriesTable {
    let xs: Vec<f64> = leaf_sizes.iter().map(|&s| s as f64).collect();
    let rows = sweep(&xs, trials, seed, |s, trial_seed| {
        let s = s as usize;
        let config = ScenarioConfig {
            group_sizes: vec![10, 100, s],
            p_succ: 1.0,
            failure: FailureKind::None,
            alive_fraction: 1.0,
            ..ScenarioConfig::paper_default()
        }
        .with_fanout(FanoutRule::LnPlusC { c: 5.0 });
        let out = run_scenario(&config, trial_seed);
        let norm = s as f64 * (s as f64).ln();
        vec![out.total_event_messages, out.total_event_messages / norm]
    });
    let mut table = SeriesTable::new(
        "Fig scaling message complexity",
        "leaf group size S",
        vec!["total event messages".into(), "messages / (S ln S)".into()],
    );
    for (x, summaries) in rows {
        table.push_row(x, summaries);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_grow_but_ratio_stays_bounded() {
        let t = run_scaling(&[150, 300, 600], 2, 3);
        assert_eq!(t.rows.len(), 3);
        let first = &t.rows[0];
        let last = &t.rows[2];
        assert!(
            last.values[0].mean > first.values[0].mean,
            "absolute count grows with S"
        );
        // The normalised ratio must not grow: O(S·lnS) means the ratio is
        // asymptotically constant (it *falls* while the +c term amortises).
        assert!(
            last.values[1].mean <= first.values[1].mean * 1.15,
            "ratio grew: {} → {}",
            first.values[1].mean,
            last.values[1].mean
        );
    }
}
