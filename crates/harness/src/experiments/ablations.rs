//! Ablations beyond the paper's figures, probing the design knobs that
//! Sec. V-B exposes ("the three parameters g, a and z let the application
//! choose between the overall reliability of the algorithm and the total
//! number of events sent between the groups"), plus the fanout-rule
//! reading discussed in DESIGN.md and the maintenance cadence of Fig. 6.

use crate::report::{KeyedTable, SeriesTable};
use crate::runner::{run_trials, sweep};
use crate::scenario::{run_scenario, ScenarioConfig};
use da_membership::FanoutRule;
use da_simnet::{Engine, FailureModel, Fate, ProcessId, SimConfig};
use damulticast::{DynamicNetwork, ParamMap, TopicParams};

/// Sweeps the link-election weight `g`: inter-group traffic rises linearly
/// while root-delivery reliability saturates — the message/reliability
/// trade-off.
#[must_use]
pub fn ablation_ga(base: &ScenarioConfig, gs: &[f64], trials: usize, seed: u64) -> SeriesTable {
    let xs: Vec<f64> = gs.to_vec();
    let rows = sweep(&xs, trials, seed, |g, trial_seed| {
        let mut config = base.clone();
        config.params.g = g;
        let out = run_scenario(&config, trial_seed);
        let inter_total: f64 = out.inter_in.iter().sum();
        vec![
            inter_total,
            *out.delivered_fraction.first().expect("root level"),
            out.total_event_messages,
        ]
    });
    let mut table = SeriesTable::new(
        "Ablation g election weight",
        "g",
        vec![
            "inter-group arrivals".into(),
            "root delivery fraction".into(),
            "total event messages".into(),
        ],
    );
    for (x, summaries) in rows {
        table.push_row(x, summaries);
    }
    table
}

/// Sweeps the supertable size `z` (with `a = 1` fixed, so `p_a = 1/z` and
/// the *expected* spray per elected process stays one message): larger
/// tables spread the same expected load over more distinct links,
/// improving tolerance to individual dead contacts.
#[must_use]
pub fn ablation_z(base: &ScenarioConfig, zs: &[usize], trials: usize, seed: u64) -> SeriesTable {
    let xs: Vec<f64> = zs.iter().map(|&z| z as f64).collect();
    let rows = sweep(&xs, trials, seed, |z, trial_seed| {
        let mut config = base.clone();
        config.params.z = z as usize;
        config.params.tau = config.params.tau.min(z as usize);
        let out = run_scenario(&config, trial_seed);
        let inter_total: f64 = out.inter_in.iter().sum();
        vec![
            inter_total,
            *out.delivered_fraction.first().expect("root level"),
        ]
    });
    let mut table = SeriesTable::new(
        "Ablation z supertable size",
        "z",
        vec![
            "inter-group arrivals".into(),
            "root delivery fraction".into(),
        ],
    );
    for (x, summaries) in rows {
        table.push_row(x, summaries);
    }
    table
}

/// Compares the three fanout readings (`ln(S)+c` from the analysis,
/// `log10(S)+c` matching the paper's plotted magnitudes, and a fixed
/// fanout): intra-group message cost vs leaf/root delivery.
#[must_use]
pub fn ablation_fanout(base: &ScenarioConfig, trials: usize, seed: u64) -> KeyedTable {
    let rules: [(&str, FanoutRule); 3] = [
        ("ln(S)+c", FanoutRule::LnPlusC { c: 5.0 }),
        ("log10(S)+c", FanoutRule::Log10PlusC { c: 5.0 }),
        ("fixed 8", FanoutRule::Fixed(8)),
    ];
    let mut table = KeyedTable::new(
        "Ablation fanout rule",
        "fanout rule",
        vec![
            "leaf intra messages".into(),
            "leaf delivery fraction".into(),
            "root delivery fraction".into(),
        ],
    );
    for (name, rule) in rules {
        let config = base.clone().with_fanout(rule);
        let summaries = run_trials(trials, seed, |trial_seed| {
            let out = run_scenario(&config, trial_seed);
            vec![
                *out.intra.last().expect("leaf level"),
                *out.delivered_fraction.last().expect("leaf level"),
                *out.delivered_fraction.first().expect("root level"),
            ]
        });
        table.push_row(name, summaries);
    }
    table
}

/// Probes the maintenance cadence of Fig. 6 on a *dynamic* network under
/// churn: half the root group crashes mid-run; after the maintenance task
/// has had time to react, a leaf event is published and we measure whether
/// it still climbs to the surviving roots, plus how many supertable
/// entries still point at dead processes.
#[must_use]
pub fn ablation_maintenance(periods: &[u64], trials: usize, seed: u64) -> SeriesTable {
    let root_size = 6_usize;
    let leaf_size = 30_usize;
    let crash_round = 20_u64;
    let publish_round = 90_u64;
    let xs: Vec<f64> = periods.iter().map(|&p| p as f64).collect();

    let rows = sweep(&xs, trials, seed, |period, trial_seed| {
        let params = TopicParams {
            maintenance_period: period as u64,
            // Boost the election/spray weights: at this scale the paper's
            // g = 5 under-powers single-event runs (see DESIGN.md).
            g: 15.0,
            a: 3.0,
            ..TopicParams::paper_default()
        };
        let net = DynamicNetwork::linear(
            &[root_size, leaf_size],
            ParamMap::uniform(params),
            3,
            4,
            trial_seed,
        )
        .expect("valid dynamic topology");
        let crashed: Vec<ProcessId> = (0..root_size / 2).map(ProcessId::from_index).collect();
        let fates = crashed
            .iter()
            .map(|&pid| Fate {
                round: crash_round,
                pid,
                crash: true,
            })
            .collect();
        let sim = SimConfig::default()
            .with_seed(trial_seed)
            .with_failures(FailureModel::Schedule(fates));
        let mut engine = Engine::new(sim, net.into_processes());
        engine.run_rounds(publish_round);

        // Supertable health: fraction of leaf supertable entries pointing
        // at live processes.
        let mut live_entries = 0_usize;
        let mut total_entries = 0_usize;
        for i in root_size..root_size + leaf_size {
            let table = engine.process(ProcessId::from_index(i)).super_table();
            total_entries += table.len();
            live_entries += table
                .entries()
                .iter()
                .filter(|e| engine.status(e.pid).is_alive())
                .count();
        }
        let health = if total_entries == 0 {
            0.0
        } else {
            live_entries as f64 / total_entries as f64
        };

        let publisher = ProcessId::from_index(root_size + leaf_size / 2);
        let id = engine.process_mut(publisher).publish("after churn");
        engine.run_rounds(40);
        let live_roots: Vec<ProcessId> = (0..root_size)
            .map(ProcessId::from_index)
            .filter(|&p| engine.status(p).is_alive())
            .collect();
        let delivered = live_roots
            .iter()
            .filter(|&&p| engine.process(p).has_delivered(id))
            .count();
        let root_delivery = delivered as f64 / live_roots.len() as f64;
        vec![health, root_delivery]
    });

    let mut table = SeriesTable::new(
        "Ablation maintenance period",
        "maintenance period (rounds)",
        vec![
            "supertable live fraction".into(),
            "root delivery after churn".into(),
        ],
    );
    for (x, summaries) in rows {
        table.push_row(x, summaries);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FailureKind;

    fn base() -> ScenarioConfig {
        ScenarioConfig {
            p_succ: 0.85,
            failure: FailureKind::Stillborn,
            alive_fraction: 1.0,
            ..ScenarioConfig::small()
        }
    }

    #[test]
    fn g_buys_inter_group_traffic() {
        let t = ablation_ga(&base(), &[1.0, 20.0], 4, 11);
        assert!(
            t.rows[1].values[0].mean > t.rows[0].values[0].mean,
            "g=20 must generate more inter-group arrivals than g=1"
        );
        // Reliability is monotone (weakly) in g.
        assert!(t.rows[1].values[1].mean >= t.rows[0].values[1].mean - 0.1);
    }

    #[test]
    fn z_table_within_bounds() {
        let t = ablation_z(&base(), &[1, 4], 4, 12);
        for row in &t.rows {
            assert!((0.0..=1.0).contains(&row.values[1].mean));
        }
    }

    #[test]
    fn fanout_rules_ranked_by_cost() {
        let t = ablation_fanout(&base(), 3, 13);
        let ln_cost = t.rows[0].1[0].mean;
        let log10_cost = t.rows[1].1[0].mean;
        // ln(100)+5 = 9 vs log10(100)+5 = 7 targets per infection.
        assert!(
            ln_cost > log10_cost,
            "ln rule ({ln_cost}) must cost more than log10 ({log10_cost})"
        );
    }

    #[test]
    fn maintenance_restores_links() {
        let t = ablation_maintenance(&[4, 40], 3, 14);
        let fast = &t.rows[0];
        let slow = &t.rows[1];
        // A fast maintenance cadence must leave supertables at least as
        // healthy as a glacial one.
        assert!(
            fast.values[0].mean >= slow.values[0].mean - 0.05,
            "fast {} vs slow {}",
            fast.values[0].mean,
            slow.values[0].mean
        );
    }
}
