//! Live-vs-sim delivery reliability: the same topology, parameters, and
//! workload executed on both substrates.
//!
//! The paper's evaluation is simulator-only; the live runtime
//! (`da-runtime`) must not change the protocol's observable behaviour.
//! Two experiments check that:
//!
//! * [`run_live_vs_sim`] publishes one event in the bottom group over
//!   perfect channels and compares, across seeded trials, the per-level
//!   delivered fraction, the parasite count, and the event-message
//!   volume between `da_simnet::Engine` and `da_runtime::Runtime`;
//! * [`run_reliability_sweep`] repeats the comparison under *lossy*
//!   channels, sweeping the per-link success probability — the paper's
//!   central axis — through the shared `da_core::channel` model that
//!   both substrates consume. Live and simulated delivery ratios must
//!   agree within noise ([`ratios_agree_within_3_sigma`]) at every
//!   swept probability.
//!
//! The live substrate is concurrent (per-trial numbers fluctuate with
//! thread interleaving), so all comparisons are statistical: matching
//! means within noise, and an identical hard zero for parasites.

use crate::report::{KeyedTable, SeriesTable};
use crate::stats::Summary;
use da_runtime::{Runtime, RuntimeConfig};
use da_simnet::{derive_seed, ChannelConfig, Engine, FailureModel, Latency, SimConfig};
use damulticast::{DaProcess, EventId, ParamMap, StaticNetwork};

/// Maximum virtual-time budget per trial (rounds or ticks).
const MAX_TIME: u64 = 64;

/// The success probabilities the reliability sweep covers: the perfect
/// corner, two mild-loss points around the paper's 0.85 operating
/// point, and a harsh 20%-loss channel.
#[must_use]
pub fn reliability_sweep_probabilities() -> Vec<f64> {
    vec![1.0, 0.95, 0.9, 0.8]
}

/// The per-tick crash probabilities the churn sweep covers: the
/// no-failure corner, gentle churn, and the harsh rate the acceptance
/// criterion names.
#[must_use]
pub fn churn_sweep_crash_rates() -> Vec<f64> {
    vec![0.0, 0.01, 0.05]
}

/// One seeded trial on one substrate: per-level delivered fraction, then
/// parasites, then event messages.
fn trial_metrics(
    group_sizes: &[usize],
    params: &ParamMap,
    channel: ChannelConfig,
    failure: &FailureModel,
    seed: u64,
    live: bool,
    live_max_lag: u64,
) -> Vec<f64> {
    let net = StaticNetwork::linear(group_sizes, params.clone(), seed)
        .expect("experiment topology must be valid");
    let groups = net.groups().to_vec();
    let publisher = groups.last().expect("at least one group").members[0];

    let (procs, counters) = if live {
        let config = RuntimeConfig::default()
            .with_seed(seed)
            .with_workers(2)
            .with_max_lag(live_max_lag)
            .with_channel(channel)
            .with_failures(failure.clone());
        let mut rt = Runtime::spawn(config, net.into_processes());
        rt.with_process_mut(publisher, |p| p.publish("live-vs-sim"));
        rt.run_until_quiescent(MAX_TIME);
        let out = rt.shutdown();
        (out.processes, out.counters)
    } else {
        let config = SimConfig::default()
            .with_seed(seed)
            .with_channel(channel)
            .with_failure(failure.clone());
        let mut engine: Engine<DaProcess> = Engine::new(config, net.into_processes());
        engine.process_mut(publisher).publish("live-vs-sim");
        engine.run_until_quiescent(MAX_TIME);
        let counters = engine.counters().clone();
        (engine.into_processes(), counters)
    };

    let id = EventId {
        publisher,
        sequence: 0,
    };
    let mut metrics: Vec<f64> = groups
        .iter()
        .map(|g| {
            let got = g
                .members
                .iter()
                .filter(|&&p| procs[p.index()].has_delivered(id))
                .count();
            got as f64 / g.members.len() as f64
        })
        .collect();
    metrics.push(counters.get("da.parasite") as f64);
    metrics.push((counters.sum_prefix("da.intra.") + counters.sum_prefix("da.inter_out.")) as f64);
    metrics
}

/// One seeded trial boiled down to the overall delivery ratio: the
/// fraction of the full audience (every process — the topology is a
/// linear inclusion chain, so all groups subscribe at or above the
/// publication topic) that delivered the published event.
fn delivery_ratio_trial(
    group_sizes: &[usize],
    params: &ParamMap,
    channel: ChannelConfig,
    failure: &FailureModel,
    seed: u64,
    live: bool,
    live_max_lag: u64,
) -> f64 {
    let per_level = trial_metrics(
        group_sizes,
        params,
        channel,
        failure,
        seed,
        live,
        live_max_lag,
    );
    let population: usize = group_sizes.iter().sum();
    let delivered: f64 = group_sizes
        .iter()
        .zip(&per_level)
        .map(|(&size, fraction)| fraction * size as f64)
        .sum();
    delivered / population as f64
}

/// Runs `trials` seeded publications on each substrate and tabulates
/// per-level delivered fractions, parasites, and event-message volume.
///
/// Trials run serially: the live runtime is itself a thread pool, and
/// nesting it under the trial fan-out would oversubscribe the host.
#[must_use]
pub fn run_live_vs_sim(
    group_sizes: &[usize],
    params: &ParamMap,
    trials: usize,
    base_seed: u64,
) -> KeyedTable {
    let levels = group_sizes.len();
    let mut columns: Vec<String> = (0..levels).map(|i| format!("delivered_t{i}")).collect();
    columns.push("parasites".into());
    columns.push("event_messages".into());
    let mut table = KeyedTable::new(
        "Live runtime vs simulator reliability",
        "substrate",
        columns,
    );

    for (key, live) in [("simulator", false), ("live runtime", true)] {
        let samples: Vec<Vec<f64>> = (0..trials)
            .map(|t| {
                trial_metrics(
                    group_sizes,
                    params,
                    ChannelConfig::reliable(),
                    &FailureModel::None,
                    derive_seed(base_seed, t as u64),
                    live,
                    1,
                )
            })
            .collect();
        let width = samples.first().map_or(0, Vec::len);
        let summaries: Vec<Summary> = (0..width)
            .map(|m| Summary::of(&samples.iter().map(|s| s[m]).collect::<Vec<f64>>()))
            .collect();
        table.push_row(key, summaries);
    }
    table
}

/// Sweeps the per-link success probability and tabulates the overall
/// delivery ratio on both substrates — the live counterpart of the
/// paper's reliability figures, with the x-axis driven through the
/// shared `da_core::channel` model.
///
/// `latency` and `live_max_lag` pin the channel's latency model and the
/// live scheduler's drift window: `(Latency::Fixed(1), 1)` reproduces
/// the PR 3 sweep exactly, while a latency floor above one tick with a
/// wider lag lets the barrier-free scheduler actually drift workers
/// apart during the sweep — the delivery ratios must agree either way.
///
/// Trials run serially for the same oversubscription reason as
/// [`run_live_vs_sim`].
#[must_use]
pub fn run_reliability_sweep(
    group_sizes: &[usize],
    params: &ParamMap,
    success_probabilities: &[f64],
    latency: Latency,
    live_max_lag: u64,
    trials: usize,
    base_seed: u64,
) -> SeriesTable {
    let mut table = SeriesTable::new(
        "Delivery ratio under lossy channels, live vs simulated",
        "success_probability",
        vec!["delivery_ratio_sim".into(), "delivery_ratio_live".into()],
    );
    for (row, &p) in success_probabilities.iter().enumerate() {
        let channel = ChannelConfig::reliable()
            .with_success_probability(p)
            .with_latency(latency);
        let mut summaries = Vec::with_capacity(2);
        for live in [false, true] {
            let samples: Vec<f64> = (0..trials)
                .map(|t| {
                    // A distinct seed stream per (probability, substrate,
                    // trial) point, so sweep points are independent.
                    let stream = (row as u64) * 2 + u64::from(live);
                    let seed = derive_seed(derive_seed(base_seed, stream), t as u64);
                    delivery_ratio_trial(
                        group_sizes,
                        params,
                        channel,
                        &FailureModel::None,
                        seed,
                        live,
                        live_max_lag,
                    )
                })
                .collect();
            summaries.push(Summary::of(&samples));
        }
        table.push_row(p, summaries);
    }
    table
}

/// Sweeps the per-tick churn crash probability and tabulates the
/// overall delivery ratio on both substrates — the dynamic-failure
/// counterpart of [`run_reliability_sweep`], with the x-axis driven
/// through the shared `da_core::failure` model that both substrates
/// consume.
///
/// Within one trial, sim and live share the **same seed**, hence the
/// same materialised `FailurePlan`: the crash/recovery schedule is
/// fate-matched across substrates, so the comparison isolates what the
/// substrates may legitimately differ on (thread interleaving), not the
/// luck of which processes churned. Channels stay perfect so churn is
/// the only fault axis.
///
/// Trials run serially for the same oversubscription reason as
/// [`run_live_vs_sim`].
#[must_use]
pub fn run_churn_sweep(
    group_sizes: &[usize],
    params: &ParamMap,
    crash_rates: &[f64],
    recover_probability: f64,
    trials: usize,
    base_seed: u64,
) -> SeriesTable {
    let mut table = SeriesTable::new(
        "Delivery ratio under continuous churn, live vs simulated",
        "crash_probability",
        vec!["delivery_ratio_sim".into(), "delivery_ratio_live".into()],
    );
    for (row, &crash) in crash_rates.iter().enumerate() {
        let failure = FailureModel::Churn {
            crash_probability: crash,
            recover_probability,
        };
        let mut summaries = Vec::with_capacity(2);
        for live in [false, true] {
            let samples: Vec<f64> = (0..trials)
                .map(|t| {
                    // Same (rate, trial) seed on both substrates: the
                    // FailurePlan — and with it every crash/recovery
                    // fate — is identical across the pair.
                    let seed = derive_seed(derive_seed(base_seed, row as u64), t as u64);
                    delivery_ratio_trial(
                        group_sizes,
                        params,
                        ChannelConfig::reliable(),
                        &failure,
                        seed,
                        live,
                        1,
                    )
                })
                .collect();
            summaries.push(Summary::of(&samples));
        }
        table.push_row(crash, summaries);
    }
    table
}

/// True when two per-substrate delivery-ratio summaries agree within
/// three standard errors of their difference of means.
///
/// `floor` guards the degenerate corner where both variances collapse
/// (e.g. every trial delivers the full audience at `p = 1.0`): the
/// tolerance never drops below it. Exposed so the acceptance test and
/// the `live_vs_sim` binary apply the identical criterion.
#[must_use]
pub fn ratios_agree_within_3_sigma(sim: &Summary, live: &Summary, floor: f64) -> bool {
    let se_diff = (sim.std_dev.powi(2) / sim.count.max(1) as f64
        + live.std_dev.powi(2) / live.count.max(1) as f64)
        .sqrt();
    (sim.mean - live.mean).abs() <= (3.0 * se_diff).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use damulticast::TopicParams;

    /// Pinned-high knobs (as in the e2e suites) so the assertions are
    /// not at the mercy of a thread interleaving.
    fn pinned() -> ParamMap {
        ParamMap::uniform(
            TopicParams::paper_default()
                .with_g(15.0)
                .with_a(3.0)
                .with_fanout(da_membership::FanoutRule::LnPlusC { c: 10.0 }),
        )
    }

    #[test]
    fn substrates_agree_on_reliability_and_parasites() {
        let t = run_live_vs_sim(&[4, 10, 40], &pinned(), 3, 0xC0FE);
        assert_eq!(t.rows.len(), 2);
        for (row, (name, values)) in t.rows.iter().enumerate() {
            // delivered_t0..t2 all ≈ 1 under pinned knobs.
            for (level, value) in values.iter().enumerate().take(3) {
                assert!(
                    value.mean > 0.95,
                    "row {row} ({name}) level {level}: {}",
                    value.mean
                );
            }
            assert_eq!(values[3].mean, 0.0, "{name}: parasites");
            assert!(values[4].mean > 0.0, "{name}: event traffic recorded");
        }
    }

    /// The PR 3 acceptance criterion, re-run on the barrier-free
    /// scheduler: live and simulated delivery ratios agree within 3σ at
    /// every swept success probability — both in the PR 3 configuration
    /// (one-tick latency, lag window 1) and with a two-tick latency
    /// floor plus a wide lag window, where workers genuinely drift.
    #[test]
    fn reliability_sweep_substrates_agree_within_3_sigma() {
        let probs = reliability_sweep_probabilities();
        let trials = 6;
        for (latency, live_max_lag) in [(Latency::Fixed(1), 1), (Latency::Fixed(2), 4)] {
            let table = run_reliability_sweep(
                &[4, 10, 40],
                &pinned(),
                &probs,
                latency,
                live_max_lag,
                trials,
                0x5EED,
            );
            assert_eq!(table.rows.len(), probs.len());
            for row in &table.rows {
                let (sim, live) = (&row.values[0], &row.values[1]);
                assert_eq!(sim.count, trials);
                assert_eq!(live.count, trials);
                // Pinned-high knobs keep gossip near-atomic even at p = 0.8.
                assert!(
                    sim.mean > 0.9 && live.mean > 0.9,
                    "p = {} ({latency:?}, lag {live_max_lag}): sim {} / live {} — degraded",
                    row.x,
                    sim.mean,
                    live.mean
                );
                // The 0.02 floor covers the zero-variance corner (p = 1.0
                // delivers everything in every trial on both substrates).
                assert!(
                    ratios_agree_within_3_sigma(sim, live, 0.02),
                    "p = {} ({latency:?}, lag {live_max_lag}): sim {} ± {} vs live {} ± {} \
                     disagree beyond 3σ",
                    row.x,
                    sim.mean,
                    sim.std_dev,
                    live.mean,
                    live.std_dev
                );
            }
        }
    }

    /// Tentpole acceptance: live and simulated delivery ratios agree
    /// within 3σ at every swept churn crash rate — the dynamic-failure
    /// analogue of the reliability criterion, over the shared
    /// `da_core::failure` plan (fate-matched pairs per trial).
    #[test]
    fn churn_sweep_substrates_agree_within_3_sigma() {
        let rates = churn_sweep_crash_rates();
        let trials = 6;
        let table = run_churn_sweep(&[4, 10, 40], &pinned(), &rates, 0.3, trials, 0xC4A0);
        assert_eq!(table.rows.len(), rates.len());
        for row in &table.rows {
            let (sim, live) = (&row.values[0], &row.values[1]);
            assert_eq!(sim.count, trials);
            assert_eq!(live.count, trials);
            // Churned processes legitimately miss events, but the
            // stationary aliveness (0.3 / (crash + 0.3)) stays ≥ 85%
            // across the swept rates, so the bulk still delivers.
            assert!(
                sim.mean > 0.6 && live.mean > 0.6,
                "crash = {}: sim {} / live {} — degraded",
                row.x,
                sim.mean,
                live.mean
            );
            if row.x == 0.0 {
                assert!(sim.mean > 0.999 && live.mean > 0.999, "no churn, no loss");
            }
            // The 0.02 floor covers the zero-variance no-churn corner.
            assert!(
                ratios_agree_within_3_sigma(sim, live, 0.02),
                "crash = {}: sim {} ± {} vs live {} ± {} disagree beyond 3σ",
                row.x,
                sim.mean,
                sim.std_dev,
                live.mean,
                live.std_dev
            );
        }
    }

    #[test]
    fn agreement_criterion_flags_real_gaps() {
        let tight = Summary::of(&[0.99, 1.0, 0.98, 1.0]);
        let close = Summary::of(&[0.98, 0.99, 1.0, 0.97]);
        assert!(ratios_agree_within_3_sigma(&tight, &close, 0.02));
        let far = Summary::of(&[0.5, 0.52, 0.49, 0.51]);
        assert!(!ratios_agree_within_3_sigma(&tight, &far, 0.02));
    }
}
